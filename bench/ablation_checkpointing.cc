// Ablation: checkpoint resume vs retraining from scratch (Section 3.2's
// "when training is iterative, ASHA can return an answer in time(R)").
// Promotions that resume only pay the resource increment; without
// checkpoints every promotion retrains from zero, inflating the effective
// budget by up to eta/(eta-1).
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 25;
  options.time_limit = 150;
  options.grid_points = 10;

  Banner("Ablation: checkpoint resume vs retrain-from-scratch (ASHA, "
         "Table-1 architecture task)",
         {"25 workers, 150 minutes, 5 trials; eta=4, r=R/256"});

  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"ASHA (resume)", AshaFactory(4, 256, /*resume=*/true)},
      {"ASHA (scratch)", AshaFactory(4, 256, /*resume=*/false)},
  };
  const auto results = RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::CifarArch(seed); }, methods,
      options, "minutes", "test error");

  std::cout << "\nJobs completed per run: resume "
            << FormatDouble(results[0].mean_jobs_completed, 0) << " vs scratch "
            << FormatDouble(results[1].mean_jobs_completed, 0)
            << " — resume converts retraining time into extra exploration.\n";
  return 0;
}
