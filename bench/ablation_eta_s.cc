// Ablation: the reduction factor eta and the minimum early-stopping rate s.
//
// Section 2 / Section 4.1 of the paper: "the appropriate choice of early
// stopping rate is problem dependent", but "aggressive early-stopping works
// well for a wide variety of tuning tasks" — the brackets with the most
// aggressive rates performed best, which is why ASHA defaults to s=0 and
// why Hyperband's conservative brackets mostly add overhead.
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 25;
  options.time_limit = 150;
  options.grid_points = 10;

  Banner("Ablation: eta and early-stopping rate s (ASHA on the Table-1 "
         "architecture task)",
         {"25 workers, 150 minutes, 5 trials; r = R/256"});

  std::vector<std::pair<std::string, SchedulerFactory>> methods;
  for (double eta : {2.0, 4.0}) {
    for (int s : {0, 1, 2}) {
      const auto label =
          "eta=" + FormatDouble(eta, 0) + ", s=" + std::to_string(s);
      methods.emplace_back(
          label, [eta, s](const SyntheticBenchmark& bench, std::uint64_t seed) {
            AshaOptions asha;
            asha.r = bench.R() / 256;
            asha.R = bench.R();
            asha.eta = eta;
            asha.s = s;
            asha.seed = seed;
            return std::make_unique<AshaScheduler>(
                MakeRandomSampler(bench.space()), asha);
          });
    }
  }

  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
              methods, options, "minutes", "test error");
  std::cout << "\nExpected: aggressive early stopping (s=0) reaches good "
               "configurations first;\nhigher s wastes budget training "
               "mediocre configurations longer.\n";
  return 0;
}
