// Extensions the paper's conclusion sketches, plus the remaining design
// toggles:
//   * ASHA + adaptive selection — plugging the BOHB-style TPE sampler into
//     ASHA's bottom rung ("combining ASHA with adaptive selection methods");
//   * infinite-horizon ASHA (Section 3.3) — promotions never capped at R;
//   * incumbent accounting policies (Appendix A.2) on synchronous SHA.
#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

SchedulerFactory AshaTpeFactory() {
  return [](const SyntheticBenchmark& bench, std::uint64_t seed) {
    AshaOptions asha;
    asha.r = bench.R() / 256;
    asha.R = bench.R();
    asha.eta = 4;
    asha.seed = seed;
    return std::unique_ptr<Scheduler>(
        MakeAshaTpe(bench.space(), asha, TpeOptions{}));
  };
}

SchedulerFactory InfiniteHorizonFactory() {
  return [](const SyntheticBenchmark& bench, std::uint64_t seed) {
    AshaOptions asha;
    asha.r = bench.R() / 256;
    asha.R = bench.R();  // ignored beyond rung sizing
    asha.eta = 4;
    asha.s = 0;
    asha.seed = seed;
    asha.infinite_horizon = true;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(bench.space()),
                                           asha);
  };
}

SchedulerFactory ShaWithPolicy(IncumbentPolicy policy) {
  return [policy](const SyntheticBenchmark& bench, std::uint64_t seed) {
    ShaOptions options;
    options.n = 256;
    options.r = bench.R() / 256;
    options.R = bench.R();
    options.eta = 4;
    options.seed = seed;
    options.incumbent_policy = policy;
    return std::make_unique<SyncShaScheduler>(
        MakeRandomSampler(bench.space()), options);
  };
}

}  // namespace

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 25;
  options.time_limit = 150;
  options.grid_points = 10;

  Banner("Extension: ASHA + adaptive selection (TPE sampler) vs ASHA vs "
         "BOHB",
         {"Table-1 architecture task; 25 workers, 150 minutes, 5 trials"});
  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
              {{"ASHA", AshaFactory(4, 256)},
               {"ASHA+TPE", AshaTpeFactory()},
               {"BOHB", BohbFactory(256, 4, 256)}},
              options, "minutes", "test error");

  Banner("Extension: infinite-horizon ASHA (Section 3.3)",
         {"promotions never capped at R; the top rung keeps growing",
          "incumbent judged at the resource actually reached"});
  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
              {{"ASHA (finite)", AshaFactory(4, 256)},
               {"ASHA (infinite horizon)", InfiniteHorizonFactory()}},
              options, "minutes", "test error");

  Banner("Ablation: incumbent accounting on synchronous SHA (Appendix A.2)",
         {"the same runs scored three ways; by-bracket only updates when a "
          "bracket completes"});
  RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::CifarConvnet(seed); },
      {{"SHA (intermediate)", ShaWithPolicy(IncumbentPolicy::kIntermediate)},
       {"SHA (by rung)", ShaWithPolicy(IncumbentPolicy::kByRung)},
       {"SHA (by bracket)", ShaWithPolicy(IncumbentPolicy::kByBracket)}},
      options, "minutes", "test error");

  return 0;
}
