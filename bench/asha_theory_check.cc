// Checks Section 3.2's analytic claims about ASHA latency in simulation:
//   * with eta^(log_eta R - s) machines, ASHA returns a fully trained
//     configuration in (sum_i eta^(i - log_eta R)) x time(R) <= 2 time(R)
//     when jobs retrain from scratch — 13/9 x time(R) for the toy bracket;
//   * with iterative training (checkpoint resume) it returns one in
//     time(R).
#include <iostream>

#include "common/table.h"
#include "core/asha.h"
#include "sim/driver.h"

using namespace hypertune;

namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

class UnitEnv final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    (void)resource;
    return config.GetDouble("x");
  }
  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    (void)config;
    return to - from;
  }
};

double FirstFullCompletion(bool resume, double r, double R, double eta,
                           int workers) {
  AshaOptions options;
  options.r = r;
  options.R = R;
  options.eta = eta;
  options.resume_from_checkpoint = resume;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  UnitEnv env;
  DriverOptions driver_options;
  driver_options.num_workers = workers;
  driver_options.time_limit = 100.0 * R;
  SimulationDriver driver(asha, env, driver_options);
  const auto result = driver.Run();
  for (const auto& completion : result.completions) {
    if (!completion.lost && completion.to_resource >= R) {
      return completion.end_time;
    }
  }
  return -1;
}

}  // namespace

int main() {
  std::cout << "==== Section 3.2 analytic latency checks (toy bracket: r=1, "
               "R=9, eta=3, 9 workers) ====\n\n";
  TextTable table({"setting", "predicted (x time(R))", "measured (x time(R))"});

  const double scratch = FirstFullCompletion(false, 1, 9, 3, 9) / 9.0;
  table.AddRow({"retrain from scratch", "13/9 = 1.444",
                FormatDouble(scratch, 3)});

  const double resumed = FirstFullCompletion(true, 1, 9, 3, 9) / 9.0;
  table.AddRow({"iterative (checkpoint resume)", "1.000",
                FormatDouble(resumed, 3)});

  // General bound: sum_{i=s}^{log_eta R} eta^{i - log_eta R} <= 2.
  const double bigger = FirstFullCompletion(false, 1, 256, 4, 256) / 256.0;
  table.AddRow({"r=1, R=256, eta=4, 256 workers (bound <= 2)", "<= 2.000",
                FormatDouble(bigger, 3)});

  std::cout << table.ToMarkdown() << "\n";

  const bool pass = std::abs(scratch - 13.0 / 9.0) < 1e-6 &&
                    std::abs(resumed - 1.0) < 1e-6 && bigger <= 2.0;
  std::cout << (pass ? "PASS: measured latencies match Section 3.2.\n"
                     : "FAIL: measured latencies deviate from Section 3.2!\n");
  return pass ? 0 : 1;
}
