// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/report.h"
#include "baselines/bohb.h"
#include "baselines/fabolas.h"
#include "baselines/pbt.h"
#include "baselines/vizier.h"
#include "common/table.h"
#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/hyperband.h"
#include "core/random_search.h"
#include "core/sha.h"
#include "surrogate/benchmarks.h"

namespace hypertune::bench {

/// Prints a figure banner plus context lines.
inline void Banner(const std::string& title,
                   const std::vector<std::string>& context) {
  std::cout << "\n==== " << title << " ====\n";
  for (const auto& line : context) std::cout << "  " << line << "\n";
  std::cout << "\n";
}

/// Runs each (name, factory) pair through RunExperiment and prints the
/// series + summary tables; returns the results for extra reporting.
inline std::vector<MethodResult> RunAndPrint(
    const BenchmarkFactory& make_benchmark,
    const std::vector<std::pair<std::string, SchedulerFactory>>& methods,
    const ExperimentOptions& options, const std::string& time_label,
    const std::string& metric_label, int precision = 4) {
  std::vector<MethodResult> results;
  for (const auto& [name, factory] : methods) {
    std::cerr << "  running " << name << " (" << options.num_trials
              << " trials)...\n";
    results.push_back(RunExperiment(name, make_benchmark, factory, options));
  }
  std::cout << SeriesTable(results, time_label, metric_label, precision)
                   .ToMarkdown()
            << "\n"
            << SummaryTable(results, metric_label, precision).ToMarkdown();
  return results;
}

// ---- paper-configured scheduler factories ------------------------------

/// ASHA with the paper's settings (eta, s=0, r=R/divisor).
inline SchedulerFactory AshaFactory(double eta, double r_divisor,
                                    bool resume = true) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    AshaOptions options;
    options.r = bench.R() / r_divisor;
    options.R = bench.R();
    options.eta = eta;
    options.seed = seed;
    options.resume_from_checkpoint = resume && bench.spec().resumable;
    return std::make_unique<AshaScheduler>(MakeRandomSampler(bench.space()),
                                           options);
  };
}

inline SchedulerFactory ShaFactory(std::size_t n, double eta,
                                   double r_divisor, bool resume = true) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    ShaOptions options;
    options.n = n;
    options.r = bench.R() / r_divisor;
    options.R = bench.R();
    options.eta = eta;
    options.seed = seed;
    options.resume_from_checkpoint = resume && bench.spec().resumable;
    // Synchronous SHA's recommendation updates when a rung settles — not on
    // every intermediate result (Section 3.3 / Appendix A.2's by-rung
    // accounting, the stronger of the two synchronous policies).
    options.incumbent_policy = IncumbentPolicy::kByRung;
    return std::make_unique<SyncShaScheduler>(
        MakeRandomSampler(bench.space()), options);
  };
}

inline SchedulerFactory HyperbandFactory(std::size_t n0, double eta,
                                         double r_divisor,
                                         IncumbentPolicy policy) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    HyperbandOptions options;
    options.n0 = n0;
    options.r = bench.R() / r_divisor;
    options.R = bench.R();
    options.eta = eta;
    options.seed = seed;
    options.incumbent_policy = policy;
    options.resume_from_checkpoint = bench.spec().resumable;
    return std::make_unique<HyperbandScheduler>(
        MakeRandomSampler(bench.space()), options);
  };
}

inline SchedulerFactory AsyncHyperbandFactory(std::size_t n0, double eta,
                                              double r_divisor) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    AsyncHyperbandOptions options;
    options.n0 = n0;
    options.r = bench.R() / r_divisor;
    options.R = bench.R();
    options.eta = eta;
    options.seed = seed;
    options.resume_from_checkpoint = bench.spec().resumable;
    return std::make_unique<AsyncHyperbandScheduler>(
        MakeRandomSampler(bench.space()), options);
  };
}

inline SchedulerFactory RandomFactory() {
  return [](const SyntheticBenchmark& bench, std::uint64_t seed) {
    RandomSearchOptions options;
    options.R = bench.R();
    options.seed = seed;
    return std::make_unique<RandomSearchScheduler>(
        MakeRandomSampler(bench.space()), options);
  };
}

inline SchedulerFactory BohbFactory(std::size_t n, double eta,
                                    double r_divisor) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    BohbOptions options;
    options.sha.n = n;
    options.sha.r = bench.R() / r_divisor;
    options.sha.R = bench.R();
    options.sha.eta = eta;
    options.sha.seed = seed;
    options.sha.resume_from_checkpoint = bench.spec().resumable;
    options.sha.incumbent_policy = IncumbentPolicy::kByRung;
    return std::unique_ptr<Scheduler>(MakeBohb(bench.space(), options));
  };
}

/// PBT per Appendix A.3: population 25, explore/exploit every
/// `step_divisor`-th of R, 2x-step sync window, frozen architecture params.
inline SchedulerFactory PbtFactory(
    std::size_t population, double step_divisor,
    std::function<bool(std::string_view)> frozen = nullptr) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    PbtOptions options;
    options.population_size = population;
    options.step_resource = bench.R() / step_divisor;
    options.max_resource = bench.R();
    options.sync_window = 2.0 * options.step_resource;
    options.seed = seed;
    options.random_guess_loss = bench.spec().random_guess_loss * 0.98;
    options.explore.frozen = frozen;
    return std::make_unique<PbtScheduler>(bench.space(), options);
  };
}

inline SchedulerFactory VizierFactory(double loss_cap = 1e18) {
  return [=](const SyntheticBenchmark& bench, std::uint64_t seed) {
    VizierOptions options;
    options.R = bench.R();
    options.seed = seed;
    options.loss_cap = loss_cap;
    return std::make_unique<VizierScheduler>(bench.space(), options);
  };
}

inline SchedulerFactory FabolasFactory() {
  return [](const SyntheticBenchmark& bench, std::uint64_t seed) {
    FabolasOptions options;
    options.R = bench.R();
    options.seed = seed;
    return std::make_unique<FabolasScheduler>(bench.space(), options);
  };
}

}  // namespace hypertune::bench
