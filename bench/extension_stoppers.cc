// Extension bench: alternative early-stopping rules and samplers around the
// successive-halving core —
//   * median stopping rule (Vizier's performance-curve option, paper
//     footnote 2),
//   * learning-curve extrapolation stopping (Domhan et al., related work),
//   * quasi-random (Halton) sampling for random search and for ASHA's
//     bottom rung.
#include <iostream>

#include "bench_util.h"
#include "registry/registry.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

SchedulerFactory Registered(const std::string& name) {
  return [name](const SyntheticBenchmark& bench, std::uint64_t seed) {
    TunerParams params;
    params.seed = seed;
    params.step_divisor = 30;
    return MakeTunerByName(name, bench, params);
  };
}

}  // namespace

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 25;
  options.time_limit = 150;
  options.grid_points = 10;

  Banner("Extension: early-stopping rules vs ASHA (cuda-convnet task, 25 "
         "workers, 150 min)",
         {"median_rule and lc_stop prune against cohort statistics / "
          "extrapolated curves;",
          "ASHA prunes by rank within rungs"});
  RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::CifarConvnet(seed); },
      {{"ASHA", Registered("asha")},
       {"MedianRule", Registered("median_rule")},
       {"LCStop", Registered("lc_stop")},
       {"Random", Registered("random")}},
      options, "minutes", "test error");

  Banner("Extension: quasi-random (Halton) sampling",
         {"same budgets; Halton spreads the bottom rung more evenly"});
  RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::CifarConvnet(seed); },
      {{"Random search", Registered("random")},
       {"Halton search", Registered("halton")},
       {"ASHA", Registered("asha")},
       {"ASHA+Halton", Registered("asha_halton")}},
      options, "minutes", "test error");

  return 0;
}
