// Regenerates Figure 1 of the paper: the SHA promotion scheme for
// n=9, r=1, R=9, eta=3 — per-rung configuration counts, resources, and
// total budgets for brackets s = 0, 1, 2.
#include <iostream>

#include "common/table.h"
#include "core/geometry.h"

using namespace hypertune;

int main() {
  std::cout << "==== Figure 1: SHA promotion scheme (n=9, r=1, R=9, eta=3) "
               "====\n\n";
  TextTable table({"bracket s", "rung i", "n_i", "r_i", "rung budget",
                   "bracket budget"});
  for (int s = 0; s <= SMax(1, 9, 3); ++s) {
    const auto geometry = BracketGeometry::Make(1, 9, 3, s);
    const auto sizes = geometry.RungSizes(9);
    const double bracket_budget = geometry.TotalBudget(9, /*resume=*/false);
    for (int i = 0; i < geometry.NumRungs(); ++i) {
      const auto n_i = sizes[static_cast<std::size_t>(i)];
      const double r_i = geometry.RungResource(i);
      table.AddRow({i == 0 ? std::to_string(s) : "",
                    std::to_string(i), std::to_string(n_i),
                    FormatDouble(r_i, 0),
                    FormatDouble(static_cast<double>(n_i) * r_i, 0),
                    i == 0 ? FormatDouble(bracket_budget, 0) : ""});
    }
  }
  std::cout << table.ToMarkdown()
            << "\nPaper check: bracket 0 allocates budget 9 to each of its "
               "three rungs;\nbracket 1 starts at r0=3; bracket 2 trains all "
               "9 configurations for R=9.\n";
  return 0;
}
