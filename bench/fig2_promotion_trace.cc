// Regenerates Figure 2: chronological job traces of synchronous SHA vs
// ASHA on bracket 0 of the toy example (r=1, R=9, eta=3, s=0), with the
// paper's performance ordering (configurations 1, 6, 8 promoted to rung 1;
// configuration 8 promoted to rung 2).
#include <iostream>
#include <map>
#include <vector>

#include "common/table.h"
#include "core/asha.h"
#include "core/sha.h"

using namespace hypertune;

namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

// Losses indexed by trial id (config k in the figure = trial k-1): matches
// the figure's color gradient — configs 1, 6, 8 are the top three, with 8
// the best overall.
const std::map<TrialId, double> kLosses{{0, 0.2}, {1, 0.6}, {2, 0.7},
                                        {3, 0.8}, {4, 0.9}, {5, 0.3},
                                        {6, 0.5}, {7, 0.1}, {8, 0.4}};

void Trace(const std::string& title, Scheduler& scheduler, int max_jobs) {
  TextTable table({"job #", "config", "rung", "budget (resource)"});
  for (int step = 0; step < max_jobs; ++step) {
    const auto job = scheduler.GetJob();
    if (!job) break;
    table.AddRow({std::to_string(step + 1),
                  std::to_string(job->trial_id + 1),
                  std::to_string(job->rung),
                  FormatDouble(job->to_resource, 0)});
    scheduler.ReportResult(*job, kLosses.at(job->trial_id));
  }
  std::cout << title << "\n" << table.ToMarkdown() << "\n";
}

}  // namespace

int main() {
  std::cout << "==== Figure 2: promotion schemes, SHA vs ASHA (bracket 0: "
               "r=1, R=9, eta=3) ====\n\n";

  ShaOptions sha_options;
  sha_options.n = 9;
  sha_options.r = 1;
  sha_options.R = 9;
  sha_options.eta = 3;
  sha_options.spawn_new_brackets = false;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), sha_options);
  Trace("Successive Halving (Synchronous) — full rungs before promotion:",
        sha, 13);

  AshaOptions asha_options;
  asha_options.r = 1;
  asha_options.R = 9;
  asha_options.eta = 3;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), asha_options);
  Trace("Successive Halving (Asynchronous) — promote whenever possible:",
        asha, 13);

  std::cout << "Paper check: both schemes promote configs 1, 6, 8 to rung 1 "
               "and config 8 to rung 2;\nASHA interleaves promotions with "
               "bottom-rung growth instead of waiting for rung barriers.\n";
  return 0;
}
