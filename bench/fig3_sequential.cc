// Regenerates Figure 3: sequential experiments (1 worker) on the two
// CIFAR-10 benchmarks — test error of the incumbent vs wall-clock minutes
// for SHA, Hyperband, Random, PBT, ASHA, asynchronous Hyperband, and BOHB,
// averaged over 10 trials.
//
// Paper settings (Appendix A.3): n=256, eta=4, s=0, r=R/256, R=30000 SGD
// iterations; Hyperband loops 5 brackets; PBT population 25 with
// explore/exploit every 1000 iterations.
#include <iostream>

#include "bench_util.h"
#include "searchspace/spaces.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  ExperimentOptions options;
  options.num_trials = 10;
  options.num_workers = 1;
  options.time_limit = 2500;  // minutes
  options.grid_points = 25;

  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"SHA", ShaFactory(256, 4, 256)},
      {"Hyperband",
       HyperbandFactory(256, 4, 256, IncumbentPolicy::kIntermediate)},
      {"Random", RandomFactory()},
      {"PBT", PbtFactory(25, 30)},
      {"ASHA", AshaFactory(4, 256)},
      {"Hyperband (async)", AsyncHyperbandFactory(256, 4, 256)},
      {"BOHB", BohbFactory(256, 4, 256)},
  };

  Banner("Figure 3 (left): CIFAR-10, small cuda-convnet model — sequential",
         {"1 worker, 2500 minutes, 10 trials; n=256, eta=4, s=0, r=R/256"});
  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarConvnet(seed); },
              methods, options, "minutes", "test error");

  // PBT freezes architecture parameters on this task (Appendix A.3).
  auto arch_methods = methods;
  arch_methods[3] = {"PBT", PbtFactory(25, 30, spaces::IsSmallCnnArchParam)};

  Banner("Figure 3 (right): CIFAR-10, small CNN architecture tuning task — "
         "sequential",
         {"1 worker, 2500 minutes, 10 trials; n=256, eta=4, s=0, r=R/256"});
  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
              arch_methods, options, "minutes", "test error");

  std::cout << "\nPaper check: all SHA variants and Hyperband beat PBT on "
               "benchmark 1 and beat Random\non both; asynchrony does not "
               "consequentially change ASHA vs SHA.\n";
  return 0;
}
