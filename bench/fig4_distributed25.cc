// Regenerates Figure 4: limited-scale distributed experiments — 25 workers
// for 150 minutes on the two CIFAR-10 benchmarks, ASHA vs PBT vs
// synchronous SHA vs BOHB, 5 trials. The paper's reference lines: the time
// to train the most expensive model for R (dotted black) and the point
// where 25 workers have done as much work as the sequential experiment
// (dotted blue).
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "searchspace/spaces.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

void ReferenceLines(SyntheticBenchmark& bench) {
  Rng rng(123);
  double max_time = 0;
  for (int i = 0; i < 500; ++i) {
    const auto config = bench.spec().space.Sample(rng);
    max_time = std::max(max_time, bench.Duration(config, 0, bench.R()));
  }
  std::cout << "  reference: time to train the most expensive model for R ~ "
            << FormatDouble(max_time, 1) << " min; mean time(R) ~ "
            << FormatDouble(bench.MeanTimeOfR(), 1) << " min\n";
}

}  // namespace

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 25;
  options.time_limit = 150;  // minutes
  options.grid_points = 15;

  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"ASHA", AshaFactory(4, 256)},
      {"PBT", PbtFactory(25, 30)},
      {"SHA", ShaFactory(256, 4, 256)},
      {"BOHB", BohbFactory(256, 4, 256)},
  };

  Banner("Figure 4 (left): CIFAR-10, small cuda-convnet model — 25 workers",
         {"25 workers, 150 minutes, 5 trials"});
  ReferenceLines(*benchmarks::CifarConvnet(1));
  RunAndPrint([](std::uint64_t seed) { return benchmarks::CifarConvnet(seed); },
              methods, options, "minutes", "test error");

  auto arch_methods = methods;
  arch_methods[1] = {"PBT", PbtFactory(25, 30, spaces::IsSmallCnnArchParam)};

  Banner("Figure 4 (right): CIFAR-10, small CNN architecture task — 25 "
         "workers",
         {"25 workers, 150 minutes, 5 trials; high training-time variance"});
  ReferenceLines(*benchmarks::CifarArch(1));
  const auto results = RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
      arch_methods, options, "minutes", "test error");

  std::cout << "\nPaper check: ASHA finds a good configuration ~1.5x faster "
               "than SHA/BOHB on benchmark 1\nand much faster on benchmark 2 "
               "(training-time variance makes synchronous rungs straggle).\n";
  (void)results;
  return 0;
}
