// Regenerates Figure 5: the large-scale benchmark — tuning an LSTM on PTB
// with 500 workers for 6 x time(R), comparing ASHA, asynchronous Hyperband
// (looping brackets s=0..3), and a Vizier-like GP-bandit service without
// early stopping. Paper settings: eta=4, r=R/64, s=0. The x-axis is in
// units of the average time to train one configuration for R.
//
// Paper checks: ASHA and async Hyperband find a good configuration in
// ~1 x time(R) and reach perplexity < 80 about 3x faster than Vizier;
// async Hyperband initially lags ASHA and catches up around 1.5 x time(R).
#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  const double time_r = benchmarks::PtbLstm(1)->MeanTimeOfR();

  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 500;
  options.time_limit = 6.0 * time_r;
  options.grid_points = 24;

  // Async Hyperband loops brackets s = 0..3 (r spans R/64 .. R) — n0 sized
  // so bracket budgets match a hypothetical n=256-ish SHA run.
  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"ASHA", AshaFactory(4, 64)},
      {"Hyperband (async)", AsyncHyperbandFactory(256, 4, 64)},
      {"Vizier", VizierFactory()},
  };

  Banner("Figure 5: LSTM on PTB — 500 workers, 6 x time(R)",
         {"eta=4, r=R/64, s=0; 5 trials; x-axis in units of time(R) = " +
          FormatDouble(time_r, 3)});
  auto results = RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::PtbLstm(seed); }, methods,
      options, "virtual time", "perplexity", 2);

  // Rescale the time axis into units of time(R) for the headline table.
  std::cout << "\nTime to reach perplexity 80 (in units of time(R)):\n";
  TextTable ttt({"method", "mean over reaching trials", "trials reaching",
                 "censored mean (never = horizon)"});
  for (const auto& method : results) {
    double total = 0;
    double censored_total = 0;
    int reached = 0;
    for (const auto& trajectory : method.trajectories) {
      const double t = trajectory.TimeToReach(80.0);
      if (!std::isnan(t)) {
        total += t;
        censored_total += t;
        ++reached;
      } else {
        censored_total += options.time_limit;  // still above 80 at the end
      }
    }
    const auto n = method.trajectories.size();
    ttt.AddRow({method.method,
                reached == 0 ? std::string("never")
                             : FormatDouble(total / reached / time_r, 2),
                std::to_string(reached) + "/" + std::to_string(n),
                FormatDouble(censored_total / static_cast<double>(n) / time_r,
                             2)});
  }
  std::cout << ttt.ToMarkdown();
  return 0;
}
