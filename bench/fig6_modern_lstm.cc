// Regenerates Figure 6: tuning the near state-of-the-art AWD-LSTM with
// DropConnect (Merity et al. 2018) on PTB — ASHA vs PBT with 16 workers
// (one p2.16xlarge in the paper), 5 trials. ASHA: eta=4, r=1 epoch,
// R=256 epochs, s=0. PBT: population 20, explore/exploit every 8 epochs.
//
// Paper check: PBT leads early; ASHA catches up and finds a better final
// configuration (non-overlapping min/max ranges at the end).
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  ExperimentOptions options;
  options.num_trials = 5;
  options.num_workers = 16;
  options.time_limit = 1400;  // minutes
  options.grid_points = 14;

  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"PBT", PbtFactory(20, 32)},      // 256 epochs / 8-epoch steps
      {"ASHA", AshaFactory(4, 256)},    // r = 1 epoch
  };

  Banner("Figure 6: AWD-LSTM with DropConnect on PTB — 16 workers",
         {"ASHA: eta=4, r=1 epoch, R=256 epochs; PBT: population 20, "
          "explore/exploit every 8 epochs",
          "5 trials, 1400 minutes"});
  const auto results = RunAndPrint(
      [](std::uint64_t seed) { return benchmarks::AwdLstm(seed); }, methods,
      options, "minutes", "validation perplexity", 2);

  // Report the end-of-run min/max overlap the paper highlights.
  const auto& pbt = results[0].series;
  const auto& asha = results[1].series;
  const auto last = pbt.times.size() - 1;
  std::cout << "\nFinal ranges: PBT [" << FormatMetric(pbt.min[last], 2)
            << ", " << FormatMetric(pbt.max[last], 2) << "], ASHA ["
            << FormatMetric(asha.min[last], 2) << ", "
            << FormatMetric(asha.max[last], 2) << "]\n";
  return 0;
}
