// Regenerates Figure 7 (Appendix A.1): the average number of configurations
// trained to the maximum resource R within 2000 time units, for ASHA vs
// synchronous SHA under combinations of straggler standard deviation and
// per-time-unit drop probability. Settings: eta=4, r=1, R=256, n=256;
// expected job time equals the allocated resource; 25 simulations per cell.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/driver.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

constexpr int kWorkers = 25;
constexpr double kHorizon = 2000;
constexpr int kSims = 25;

double MeanFullCompletions(bool asha, double straggler_std,
                           double drop_probability) {
  std::vector<double> counts;
  for (int sim = 0; sim < kSims; ++sim) {
    const auto seed = static_cast<std::uint64_t>(sim) * 101 + 7;
    auto bench = benchmarks::UnitTime(seed);
    std::unique_ptr<Scheduler> scheduler;
    if (asha) {
      scheduler = AshaFactory(4, 256)(*bench, seed);
    } else {
      scheduler = ShaFactory(256, 4, 256)(*bench, seed);
    }
    DriverOptions options;
    options.num_workers = kWorkers;
    options.time_limit = kHorizon;
    options.hazards.straggler_std = straggler_std;
    options.hazards.drop_probability = drop_probability;
    options.seed = seed ^ 0xf00d;
    SimulationDriver driver(*scheduler, *bench, options);
    const auto result = driver.Run();
    double full = 0;
    for (const auto& completion : result.completions) {
      full += !completion.lost && completion.to_resource >= 256.0;
    }
    counts.push_back(full);
  }
  return Mean(counts);
}

}  // namespace

int main() {
  Banner("Figure 7: configurations trained to R within 2000 time units",
         {"eta=4, r=1, R=256, n=256; 25 workers; 25 simulations per cell",
          "rows: straggler std; columns: drop probability"});

  const std::vector<double> stds{0.10, 0.24, 0.56, 1.33};
  const std::vector<double> drops{0.0, 0.0025, 0.005, 0.0075, 0.01};

  for (const char* method : {"ASHA", "SHA"}) {
    const bool asha = std::string(method) == "ASHA";
    std::vector<std::string> header{"std \\ drop p"};
    for (double p : drops) header.push_back(FormatDouble(p, 4));
    TextTable table(header);
    for (double std_dev : stds) {
      std::vector<std::string> row{FormatDouble(std_dev, 2)};
      for (double p : drops) {
        row.push_back(FormatDouble(MeanFullCompletions(asha, std_dev, p), 1));
      }
      table.AddRow(std::move(row));
      std::cerr << "  " << method << " std=" << std_dev << " done\n";
    }
    std::cout << method << ":\n" << table.ToMarkdown() << "\n";
  }

  std::cout << "Paper check: ASHA trains more configurations to completion "
               "than synchronous SHA,\nwith the gap widening as straggler "
               "variance and drop rates grow.\n";
  return 0;
}
