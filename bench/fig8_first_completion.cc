// Regenerates Figure 8 (Appendix A.1): the average time until the first
// configuration is trained for the maximum resource R, for ASHA vs
// synchronous SHA across straggler standard deviations and drop
// probabilities. Settings match Figure 7 (eta=4, r=1, R=256, n=256),
// with the 2000-unit horizon as the "never finished" cap.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/driver.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

constexpr int kWorkers = 25;
constexpr double kHorizon = 2000;
constexpr int kSims = 25;

double MeanFirstCompletion(bool asha, double straggler_std,
                           double drop_probability) {
  std::vector<double> times;
  for (int sim = 0; sim < kSims; ++sim) {
    const auto seed = static_cast<std::uint64_t>(sim) * 137 + 11;
    auto bench = benchmarks::UnitTime(seed);
    std::unique_ptr<Scheduler> scheduler;
    if (asha) {
      scheduler = AshaFactory(4, 256)(*bench, seed);
    } else {
      scheduler = ShaFactory(256, 4, 256)(*bench, seed);
    }
    DriverOptions options;
    options.num_workers = kWorkers;
    options.time_limit = kHorizon;
    options.hazards.straggler_std = straggler_std;
    options.hazards.drop_probability = drop_probability;
    options.seed = seed ^ 0xbeef;
    SimulationDriver driver(*scheduler, *bench, options);
    const auto result = driver.Run();
    double first = kHorizon;  // cap when never finished
    for (const auto& completion : result.completions) {
      if (!completion.lost && completion.to_resource >= 256.0) {
        first = completion.end_time;
        break;
      }
    }
    times.push_back(first);
  }
  return Mean(times);
}

}  // namespace

int main() {
  Banner("Figure 8: time until the first configuration trained for R",
         {"eta=4, r=1, R=256, n=256; 25 workers; 25 simulations per cell",
          "rows: straggler std; columns: drop probability; capped at 2000"});

  const std::vector<double> stds{0.0, 0.33, 0.67, 1.0, 1.33, 1.67};
  const std::vector<double> drops{0.0, 0.001, 0.002, 0.003};

  for (const char* method : {"ASHA", "SHA"}) {
    const bool asha = std::string(method) == "ASHA";
    std::vector<std::string> header{"std \\ drop p"};
    for (double p : drops) header.push_back(FormatDouble(p, 3));
    TextTable table(header);
    for (double std_dev : stds) {
      std::vector<std::string> row{FormatDouble(std_dev, 2)};
      for (double p : drops) {
        row.push_back(FormatDouble(MeanFirstCompletion(asha, std_dev, p), 0));
      }
      table.AddRow(std::move(row));
      std::cerr << "  " << method << " std=" << std_dev << " done\n";
    }
    std::cout << method << ":\n" << table.ToMarkdown() << "\n";
  }

  std::cout << "Paper check: ASHA's first completion time stays nearly flat "
               "while synchronous SHA's\ngrows sharply with straggler "
               "variance and drop probability.\n";
  return 0;
}
