// Regenerates Figure 9 (Appendix A.2): the sequential comparison with
// Fabolas on four tasks — SVM on vehicle, SVM on MNIST, CIFAR-10
// cuda-convnet, and the SVHN small-CNN task — for Hyperband with by-rung
// incumbent accounting, Hyperband with by-bracket accounting, a
// Fabolas-like multi-fidelity GP, and random search. eta=4 for Hyperband
// (Appendix A.2); 1 worker; 10 trials.
//
// Paper check: Hyperband (by rung) is competitive with Fabolas and usually
// finds a better configuration with lower variance; most of Hyperband's
// progress comes from its most aggressive bracket.
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

namespace {

void RunTask(const std::string& title, const std::string& benchmark_name,
             double horizon_minutes, int n0, double r_divisor) {
  ExperimentOptions options;
  options.num_trials = 10;
  options.num_workers = 1;
  options.time_limit = horizon_minutes;
  options.grid_points = 16;

  const std::vector<std::pair<std::string, SchedulerFactory>> methods{
      {"Hyperband (by rung)",
       HyperbandFactory(static_cast<std::size_t>(n0), 4, r_divisor,
                        IncumbentPolicy::kByRung)},
      {"Hyperband (by bracket)",
       HyperbandFactory(static_cast<std::size_t>(n0), 4, r_divisor,
                        IncumbentPolicy::kByBracket)},
      {"Fabolas", FabolasFactory()},
      {"Random", RandomFactory()},
  };

  Banner(title, {"1 worker, " + FormatDouble(horizon_minutes, 0) +
                     " minutes, 10 trials, eta=4"});
  RunAndPrint(
      [benchmark_name](std::uint64_t seed) {
        return benchmarks::ByName(benchmark_name, seed);
      },
      methods, options, "minutes", "test error");
}

}  // namespace

int main() {
  RunTask("Figure 9a: SVM on vehicle", "svm_vehicle", 800, 64, 64);
  RunTask("Figure 9b: SVM on MNIST", "svm_mnist", 800, 64, 64);
  RunTask("Figure 9c: CIFAR-10, small cuda-convnet model", "cifar_convnet",
          2500, 256, 256);
  RunTask("Figure 9d: SVHN, small CNN architecture task", "svhn_cnn", 2500,
          256, 256);
  return 0;
}
