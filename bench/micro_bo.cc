// Microbenchmarks (google-benchmark) of the BO substrate hot paths: full GP
// fits, the rank-1 append path, batched vs scalar prediction, and parallel
// EI scoring — the operations that decide how much tuner overhead the GP
// baselines add per completed job. BM_FitPerObservation is the pre-optimization
// baseline semantics (a from-scratch refit for every new observation);
// BM_AppendRefit is the incremental path that replaces it.
#include <benchmark/benchmark.h>

#include <vector>

#include "bo/acquisition.h"
#include "bo/gp.h"
#include "common/rng.h"

namespace hypertune {
namespace {

constexpr std::size_t kDim = 5;

struct Data {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

Data MakeData(std::size_t n, std::uint64_t seed = 4) {
  Rng rng(seed);
  Data data;
  data.x.assign(n, std::vector<double>(kDim));
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : data.x[i]) v = rng.Uniform();
    data.y[i] = rng.Uniform();
  }
  return data;
}

std::vector<std::vector<double>> MakeCandidates(std::size_t m) {
  Rng rng(7);
  std::vector<std::vector<double>> candidates(m, std::vector<double>(kDim));
  for (auto& c : candidates) {
    for (auto& v : c) v = rng.Uniform();
  }
  return candidates;
}

/// One full from-scratch fit at n points.
void BM_FitFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data data = MakeData(n);
  for (auto _ : state) {
    GaussianProcess gp;
    gp.Fit(data.x, data.y);
    benchmark::DoNotOptimize(gp.LogMarginalLikelihood());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FitFull)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// Pre-optimization semantics of the sequential tuning loop: every new
/// observation triggers a from-scratch refit at size n.
void BM_FitPerObservation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data data = MakeData(n);
  for (auto _ : state) {
    GaussianProcess gp;  // fresh instance: no incremental path available
    gp.Fit(data.x, data.y);
    benchmark::DoNotOptimize(gp.LogMarginalLikelihood());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FitPerObservation)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/// The incremental path: one rank-1 append (with grid re-selection and
/// restandardization) per new observation at size ~n.
void BM_AppendRefit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr int kAppends = 8;
  const Data data = MakeData(n + kAppends);
  Data prefix;
  prefix.x.assign(data.x.begin(), data.x.end() - kAppends);
  prefix.y.assign(data.y.begin(), data.y.end() - kAppends);
  for (auto _ : state) {
    state.PauseTiming();
    GaussianProcess gp;
    gp.Fit(prefix.x, prefix.y);
    state.ResumeTiming();
    for (std::size_t k = 0; k < kAppends; ++k) {
      gp.Append(data.x[n + k], data.y[n + k]);
    }
  }
  state.SetItemsProcessed(state.iterations() * kAppends);
}
BENCHMARK(BM_AppendRefit)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/// 128 scalar Predict calls at n training points.
void BM_PredictScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data data = MakeData(n);
  GaussianProcess gp;
  gp.Fit(data.x, data.y);
  const auto candidates = MakeCandidates(128);
  for (auto _ : state) {
    double acc = 0;
    for (const auto& c : candidates) acc += gp.Predict(c).mean;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PredictScalar)->Arg(64)->Arg(256)->Arg(512);

/// One PredictBatch over the same 128 candidates.
void BM_PredictBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Data data = MakeData(n);
  GaussianProcess gp;
  gp.Fit(data.x, data.y);
  const auto candidates = MakeCandidates(128);
  for (auto _ : state) {
    const auto predictions = gp.PredictBatch(candidates);
    benchmark::DoNotOptimize(predictions.front().mean);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PredictBatch)->Arg(64)->Arg(256)->Arg(512);

/// EI scoring of 512 candidates, single- and multi-threaded. The scores are
/// bit-identical across thread counts; only the wall-clock changes.
void BM_EiScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Data data = MakeData(n);
  GaussianProcess gp;
  gp.Fit(data.x, data.y);
  const auto candidates = MakeCandidates(512);
  for (auto _ : state) {
    const auto scores = ScoreEiBatch(gp, candidates, 0.3, threads);
    benchmark::DoNotOptimize(scores[ArgMaxScore(scores)]);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EiScore)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
