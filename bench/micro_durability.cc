// Microbenchmarks (google-benchmark) of the durability layer: what does it
// cost to make every scheduler decision crash-safe?
//
// The WAL sits on the request-serving hot path — one framed append per
// grant/report/renew/expire — so its per-record cost bounds server
// throughput under durability. These benches price the append across sync
// policies (the knob deployments actually turn), journal read-back
// (recovery), full snapshot round-trips, and the end-to-end overhead of
// DurableServer::HandleMessage over the plain server. Curated numbers live
// in BENCH_durability.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/asha.h"
#include "durability/durable_server.h"
#include "durability/wal.h"
#include "core/sampler.h"
#include "service/server.h"

namespace hypertune {
namespace {

std::filesystem::path ScratchDir() {
  auto dir = std::filesystem::temp_directory_path() / "ht_micro_durability";
  std::filesystem::create_directories(dir);
  return dir;
}

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

AshaScheduler MakeAsha(std::uint64_t max_trials) {
  AshaOptions options;
  options.r = 1;
  options.R = 27;
  options.eta = 3;
  options.max_trials = max_trials;
  options.seed = 7;
  return AshaScheduler(MakeRandomSampler(UnitSpace()), options);
}

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

// Drive request/report cycles against anything with HandleMessage; used to
// compare the plain server with the durable wrapper on identical traffic.
template <typename ServerLike>
void DriveCycles(ServerLike& server, std::size_t cycles, double& now) {
  for (std::size_t i = 0; i < cycles; ++i) {
    now += 0.25;
    const Json reply = server.HandleMessage(RequestJob(0), now);
    if (reply.at("type").AsString() != "job") continue;
    now += 0.25;
    server.HandleMessage(
        Report(0, reply.at("job_id").AsInt(),
               0.1 + 0.001 * static_cast<double>(reply.at("job_id").AsInt())),
        now);
  }
}

// One framed journal append (length + CRC-32 + payload) per iteration,
// across sync policies. kNone measures pure framing+write cost; kEveryN is
// the default deployment setting; kAlways adds an fsync per record and is
// the durability ceiling.
void BM_JournalAppend(benchmark::State& state) {
  const auto policy = static_cast<SyncPolicy>(state.range(0));
  const auto payload_size = static_cast<std::size_t>(state.range(1));
  const std::string payload(payload_size, 'x');
  const auto path = ScratchDir() / "append.log";
  WalWriteOptions options;
  options.sync = policy;
  options.sync_every = 64;
  {
    JournalWriter writer = JournalWriter::Create(path.string(), options);
    for (auto _ : state) {
      writer.Append(payload);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_size + 8));
  std::filesystem::remove(path);
}
BENCHMARK(BM_JournalAppend)
    ->ArgsProduct({{static_cast<long>(SyncPolicy::kNone),
                    static_cast<long>(SyncPolicy::kEveryN),
                    static_cast<long>(SyncPolicy::kAlways)},
                   {128}})
    ->ArgNames({"sync", "bytes"});

// Recovery-side cost: read and CRC-validate a journal of N frames. This is
// the fixed price of every restart before replay begins.
void BM_JournalRead(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  const std::string payload(128, 'x');
  const auto path = ScratchDir() / "read.log";
  {
    WalWriteOptions options;
    options.sync = SyncPolicy::kNone;
    JournalWriter writer = JournalWriter::Create(path.string(), options);
    for (std::size_t i = 0; i < frames; ++i) writer.Append(payload);
  }
  for (auto _ : state) {
    JournalReadResult result = ReadJournal(path.string());
    benchmark::DoNotOptimize(result.payloads.size());
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_JournalRead)->Arg(256)->Arg(4096);

// Full server snapshot serialize + parse + restore with T resolved trials:
// the compaction cost paid once every snapshot_every journal records.
void BM_SnapshotRoundTrip(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  AshaScheduler asha = MakeAsha(trials);
  ServerOptions options;
  options.lease_timeout = 1e9;
  TuningServer server(asha, options);
  double now = 0.0;
  DriveCycles(server, trials * 2, now);

  for (auto _ : state) {
    const std::string blob = server.Snapshot().Dump();
    // Restore demands a freshly constructed server, exactly like a real
    // recovery — construction is part of the restart cost being measured.
    AshaScheduler target = MakeAsha(trials);
    TuningServer restored(target, options);
    restored.Restore(Json::Parse(blob));
    benchmark::DoNotOptimize(blob.size());
  }
}
BENCHMARK(BM_SnapshotRoundTrip)->Arg(64)->Arg(512);

// End-to-end durability overhead: a request_job+report cycle through the
// plain server vs through DurableServer (one journal append per grant and
// per report). Snapshots are disabled here so the gap is purely the
// journaling cost on the serving path; snapshot/compaction cost scales
// with state size and is priced by BM_SnapshotRoundTrip instead.
void BM_ServeCyclePlain(benchmark::State& state) {
  AshaScheduler asha = MakeAsha(1u << 30);
  ServerOptions options;
  options.lease_timeout = 1e9;
  TuningServer server(asha, options);
  double now = 0.0;
  for (auto _ : state) {
    DriveCycles(server, 1, now);
  }
}
BENCHMARK(BM_ServeCyclePlain);

void BM_ServeCycleDurable(benchmark::State& state) {
  const auto policy = static_cast<SyncPolicy>(state.range(0));
  const auto dir = ScratchDir() / "serve";
  std::filesystem::remove_all(dir);
  AshaScheduler asha = MakeAsha(1u << 30);
  ServerOptions options;
  options.lease_timeout = 1e9;
  DurabilityOptions durability;
  durability.dir = dir.string();
  durability.sync = policy;
  durability.sync_every = 64;
  durability.snapshot_every = static_cast<std::size_t>(1) << 40;
  DurableServer server(asha, options, durability);
  double now = 0.0;
  for (auto _ : state) {
    DriveCycles(server, 1, now);
  }
}
BENCHMARK(BM_ServeCycleDurable)
    ->Arg(static_cast<long>(SyncPolicy::kNone))
    ->Arg(static_cast<long>(SyncPolicy::kEveryN))
    ->Arg(static_cast<long>(SyncPolicy::kAlways))
    ->ArgName("sync");

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
