// Microbenchmarks (google-benchmark) of the scheduler hot paths: the
// get_job / report cycle at large rung sizes, rung promotion queries, the
// TPE sampler, and GP fitting — the operations that bound how many workers
// one tuner process can feed.
#include <benchmark/benchmark.h>

#include "bo/gp.h"
#include "bo/tpe.h"
#include "core/asha.h"
#include "core/rung.h"
#include "core/sha.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

void BM_AshaGetJobReportCycle(benchmark::State& state) {
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  // Pre-fill the bottom rung to the requested size.
  const auto prefill = static_cast<int>(state.range(0));
  Rng rng(1);
  for (int i = 0; i < prefill; ++i) {
    const auto job = *asha.GetJob();
    asha.ReportResult(job, rng.Uniform());
  }
  for (auto _ : state) {
    const auto job = *asha.GetJob();
    asha.ReportResult(job, rng.Uniform());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AshaGetJobReportCycle)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SyncShaGetJobReportCycle(benchmark::State& state) {
  ShaOptions options;
  options.n = 256;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  options.spawn_new_brackets = true;
  SyncShaScheduler sha(MakeRandomSampler(UnitSpace()), options);
  Rng rng(1);
  for (auto _ : state) {
    const auto job = *sha.GetJob();
    sha.ReportResult(job, rng.Uniform());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyncShaGetJobReportCycle);

void BM_RungRecordAndQuery(benchmark::State& state) {
  Rng rng(2);
  Rung rung;
  TrialId next = 0;
  for (auto _ : state) {
    rung.Record(next++, rng.Uniform());
    benchmark::DoNotOptimize(rung.FirstPromotable(4.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RungRecordAndQuery);

void BM_TpeSample(benchmark::State& state) {
  SearchSpace space;
  space.Add("a", Domain::Continuous(0, 1))
      .Add("b", Domain::Continuous(0, 1))
      .Add("c", Domain::Continuous(0, 1));
  TpeOptions options;
  options.random_fraction = 0.0;
  TpeSampler tpe(space, options);
  Rng rng(3);
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    tpe.Observe(space.Sample(rng), 1.0, rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpe.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TpeSample)->Arg(64)->Arg(512);

void BM_GpFit(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> x(n, std::vector<double>(5));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : x[i]) v = rng.Uniform();
    y[i] = rng.Uniform();
  }
  for (auto _ : state) {
    GaussianProcess gp;
    gp.Fit(x, y);
    benchmark::DoNotOptimize(gp.Predict(x[0]));
  }
}
BENCHMARK(BM_GpFit)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
