// Microbenchmarks (google-benchmark) of the request-serving hot path: how
// fast can one TuningServer / ThreadPoolExecutor feed a large worker fleet?
//
// The paper's 500-worker regime (Figure 5) only works while get_job/report
// stay far cheaper than a training job; these benches measure exactly that
// dispatch cost — HandleMessage with many concurrent leases, batched vs
// single-job leasing, and executor jobs/sec at rising thread counts.
// Curated before/after numbers live in BENCH_service.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/asha.h"
#include "core/random_search.h"
#include "runtime/executor.h"
#include "service/server.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Heartbeat(std::uint64_t worker, std::int64_t job_id) {
  Json message = JsonObject{};
  message.Set("type", Json("heartbeat"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

// HandleMessage cost with L active leases: the server fields a heartbeat
// per message while every other lease stays live. Before the deadline heap
// this was O(L) per message (full lease rescan in Tick); with the heap the
// scan disappears and only due entries are touched.
void BM_HandleMessageActiveLeases(benchmark::State& state) {
  const auto leases = static_cast<std::uint64_t>(state.range(0));
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  std::vector<std::int64_t> job_ids;
  job_ids.reserve(leases);
  for (std::uint64_t w = 0; w < leases; ++w) {
    const Json reply = server.HandleMessage(RequestJob(w), 0);
    job_ids.push_back(reply.at("job_id").AsInt());
  }
  const Json heartbeat = Heartbeat(0, job_ids[0]);
  double now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.HandleMessage(heartbeat, now));
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandleMessageActiveLeases)->Arg(10)->Arg(500)->Arg(5000);

// Full lease cycle (request + report) with L background leases held open.
void BM_LeaseCycleActiveLeases(benchmark::State& state) {
  const auto leases = static_cast<std::uint64_t>(state.range(0));
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  for (std::uint64_t w = 1; w <= leases; ++w) {
    (void)server.HandleMessage(RequestJob(w), 0);
  }
  double now = 1;
  for (auto _ : state) {
    const Json reply = server.HandleMessage(RequestJob(0), now);
    (void)server.HandleMessage(Report(0, reply.at("job_id").AsInt(), 0.5),
                               now + 1e-7);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaseCycleActiveLeases)->Arg(10)->Arg(500)->Arg(5000);

// Batched vs single-job leasing: per-job protocol cost of leasing B jobs
// through one request_jobs message (reports stay per-job in both shapes;
// B = 1 is the single-job request_job baseline).
void BM_BatchedLeaseAndReport(benchmark::State& state) {
  const auto batch = state.range(0);
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  Json request = JsonObject{};
  if (batch == 1) {
    request = RequestJob(0);
  } else {
    request.Set("type", Json("request_jobs"));
    request.Set("worker", Json(std::int64_t{0}));
    request.Set("count", Json(static_cast<std::int64_t>(batch)));
  }
  double now = 0;
  std::vector<std::int64_t> job_ids;
  for (auto _ : state) {
    const Json reply = server.HandleMessage(request, now);
    job_ids.clear();
    if (batch == 1) {
      job_ids.push_back(reply.at("job_id").AsInt());
    } else {
      for (const auto& entry : reply.at("jobs").AsArray()) {
        job_ids.push_back(entry.at("job_id").AsInt());
      }
    }
    for (const std::int64_t job_id : job_ids) {
      (void)server.HandleMessage(Report(0, job_id, 0.5), now);
    }
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedLeaseAndReport)->Arg(1)->Arg(16)->Arg(64);

// Executor scaling: jobs/sec through the GetJob -> train -> Report cycle
// with a near-trivial training function, so the dispatch path (mutex +
// scheduler calls) dominates. Real threads; expect contention to flatten
// the curve long before the thread count does.
void BM_ExecutorJobsPerSec(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int prefetch = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RandomSearchOptions options;
    options.R = 10;
    RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
    ThreadPoolExecutor executor(
        scheduler,
        [](const Job& job) { return job.config.GetDouble("x"); },
        {.num_workers = threads, .max_jobs = 20000, .prefetch = prefetch});
    const auto result = executor.Run();
    benchmark::DoNotOptimize(result.jobs_completed);
    state.SetIterationTime(result.elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ExecutorJobsPerSec)
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({4, 16})
    ->Args({16, 16})
    ->Args({32, 16})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
