// Microbenchmarks (google-benchmark) of the request-serving hot path: how
// fast can one TuningServer / ThreadPoolExecutor feed a large worker fleet?
//
// The paper's 500-worker regime (Figure 5) only works while get_job/report
// stay far cheaper than a training job; these benches measure exactly that
// dispatch cost — HandleMessage with many concurrent leases, batched vs
// single-job leasing, and executor jobs/sec at rising thread counts.
// Curated before/after numbers live in BENCH_service.json.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/asha.h"
#include "core/random_search.h"
#include "net/codec.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "runtime/executor.h"
#include "service/server.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

Json RequestJob(std::uint64_t worker) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  return message;
}

Json Heartbeat(std::uint64_t worker, std::int64_t job_id) {
  Json message = JsonObject{};
  message.Set("type", Json("heartbeat"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  return message;
}

Json Report(std::uint64_t worker, std::int64_t job_id, double loss) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(loss));
  return message;
}

// HandleMessage cost with L active leases: the server fields a heartbeat
// per message while every other lease stays live. Before the deadline heap
// this was O(L) per message (full lease rescan in Tick); with the heap the
// scan disappears and only due entries are touched.
void BM_HandleMessageActiveLeases(benchmark::State& state) {
  const auto leases = static_cast<std::uint64_t>(state.range(0));
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  std::vector<std::int64_t> job_ids;
  job_ids.reserve(leases);
  for (std::uint64_t w = 0; w < leases; ++w) {
    const Json reply = server.HandleMessage(RequestJob(w), 0);
    job_ids.push_back(reply.at("job_id").AsInt());
  }
  const Json heartbeat = Heartbeat(0, job_ids[0]);
  double now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.HandleMessage(heartbeat, now));
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandleMessageActiveLeases)->Arg(10)->Arg(500)->Arg(5000);

// Full lease cycle (request + report) with L background leases held open.
void BM_LeaseCycleActiveLeases(benchmark::State& state) {
  const auto leases = static_cast<std::uint64_t>(state.range(0));
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  for (std::uint64_t w = 1; w <= leases; ++w) {
    (void)server.HandleMessage(RequestJob(w), 0);
  }
  double now = 1;
  for (auto _ : state) {
    const Json reply = server.HandleMessage(RequestJob(0), now);
    (void)server.HandleMessage(Report(0, reply.at("job_id").AsInt(), 0.5),
                               now + 1e-7);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaseCycleActiveLeases)->Arg(10)->Arg(500)->Arg(5000);

// Batched vs single-job leasing: per-job protocol cost of leasing B jobs
// through one request_jobs message (reports stay per-job in both shapes;
// B = 1 is the single-job request_job baseline).
void BM_BatchedLeaseAndReport(benchmark::State& state) {
  const auto batch = state.range(0);
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(UnitSpace()), options);
  TuningServer server(asha, {.lease_timeout = 1e12});
  Json request = JsonObject{};
  if (batch == 1) {
    request = RequestJob(0);
  } else {
    request.Set("type", Json("request_jobs"));
    request.Set("worker", Json(std::int64_t{0}));
    request.Set("count", Json(static_cast<std::int64_t>(batch)));
  }
  double now = 0;
  std::vector<std::int64_t> job_ids;
  for (auto _ : state) {
    const Json reply = server.HandleMessage(request, now);
    job_ids.clear();
    if (batch == 1) {
      job_ids.push_back(reply.at("job_id").AsInt());
    } else {
      for (const auto& entry : reply.at("jobs").AsArray()) {
        job_ids.push_back(entry.at("job_id").AsInt());
      }
    }
    for (const std::int64_t job_id : job_ids) {
      (void)server.HandleMessage(Report(0, job_id, 0.5), now);
    }
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchedLeaseAndReport)->Arg(1)->Arg(16)->Arg(64);

// Executor scaling: jobs/sec through the GetJob -> train -> Report cycle
// with a near-trivial training function, so the dispatch path (mutex +
// scheduler calls) dominates. Real threads; expect contention to flatten
// the curve long before the thread count does.
void BM_ExecutorJobsPerSec(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int prefetch = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RandomSearchOptions options;
    options.R = 10;
    RandomSearchScheduler scheduler(MakeRandomSampler(UnitSpace()), options);
    ThreadPoolExecutor executor(
        scheduler,
        [](const Job& job) { return job.config.GetDouble("x"); },
        {.num_workers = threads, .max_jobs = 20000, .prefetch = prefetch});
    const auto result = executor.Run();
    benchmark::DoNotOptimize(result.jobs_completed);
    state.SetIterationTime(result.elapsed_seconds);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_ExecutorJobsPerSec)
    ->Args({4, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({4, 16})
    ->Args({16, 16})
    ->Args({32, 16})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Wire-protocol benches (DESIGN.md §8). The acceptance bar for the network
// transport is >= 100k binary protocol messages/sec per core through the
// full encode + socket + decode + HandleMessage loopback path; the codec
// rows isolate the serialization share of that budget.

AshaScheduler MakeBenchScheduler() {
  AshaOptions options;
  options.r = 1;
  options.R = 256;
  options.eta = 4;
  return AshaScheduler(MakeRandomSampler(UnitSpace()), options);
}

// Pure codec cost, no sockets: frame one protocol message, re-frame the
// bytes, decode back to Json. Arg 0 benches the report (the worker->server
// hot path), arg 1 the job grant (server->worker; carries the config).
void BM_WireCodecRoundTrip(benchmark::State& state) {
  AshaScheduler asha = MakeBenchScheduler();
  TuningServer server(asha, {.lease_timeout = 1e12});
  const Json grant = server.HandleMessage(RequestJob(0), 0);
  const Json message =
      state.range(0) == 0 ? Report(0, grant.at("job_id").AsInt(), 0.5) : grant;
  double now = 1;
  for (auto _ : state) {
    FrameDecoder decoder;
    decoder.Feed(EncodeMessage(message, now));
    benchmark::DoNotOptimize(DecodeMessage(*decoder.Next()).message);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireCodecRoundTrip)->Arg(0)->Arg(1);

// Same round trip through the JSON-lines debug envelope — the price of the
// human-readable transport relative to the packed frames above.
void BM_JsonLineCodecRoundTrip(benchmark::State& state) {
  AshaScheduler asha = MakeBenchScheduler();
  TuningServer server(asha, {.lease_timeout = 1e12});
  const Json grant = server.HandleMessage(RequestJob(0), 0);
  const Json message =
      state.range(0) == 0 ? Report(0, grant.at("job_id").AsInt(), 0.5) : grant;
  double now = 1;
  for (auto _ : state) {
    const std::string line = EncodeJsonLine(message, now);
    benchmark::DoNotOptimize(
        DecodeJsonLine(std::string_view(line.data(), line.size() - 1)).message);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonLineCodecRoundTrip)->Arg(0)->Arg(1);

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  (void)::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SendAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const auto sent = ::send(fd, bytes.data(), bytes.size(), 0);
    if (sent <= 0) return;
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
}

std::string RecvSome(int fd) {
  char buffer[16384];
  const auto got = ::recv(fd, buffer, sizeof(buffer), 0);
  return got > 0 ? std::string(buffer, static_cast<std::size_t>(got))
                 : std::string();
}

// Strict request-reply over a real loopback socket through NetWorkerClient:
// one heartbeat per iteration, so each item pays encode + write + poll wake
// + HandleMessage + reply + decode plus a full socket round trip. Arg 0 is
// the binary transport, arg 1 JSON lines.
void BM_LoopbackRoundTrip(benchmark::State& state) {
  AshaScheduler asha = MakeBenchScheduler();
  TuningServer server(asha, {.lease_timeout = 1e12});
  NetServerOptions net_options;
  net_options.clock = NetClock::kMessage;
  net_options.tick_interval = 3600;
  NetServer net(server, net_options);
  net.Start();
  NetClientOptions client_options;
  client_options.transport =
      state.range(0) == 0 ? WireTransport::kBinary : WireTransport::kJson;
  NetWorkerClient client("127.0.0.1", net.port(), client_options);
  const auto grant = client.Send(RequestJob(0), 0);
  const Json heartbeat = Heartbeat(0, grant->at("job_id").AsInt());
  double now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Send(heartbeat, now));
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
  net.Stop();
}
BENCHMARK(BM_LoopbackRoundTrip)->Arg(0)->Arg(1);

// Pipelined throughput — the acceptance row: W binary heartbeat frames per
// write, replies decoded as they stream back. Amortizes the per-wakeup
// syscall cost the strict round trip above pays per message; items/sec is
// end-to-end messages/sec (encode + socket + server decode + HandleMessage
// + reply encode + client decode).
void BM_LoopbackPipelinedBinary(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  AshaScheduler asha = MakeBenchScheduler();
  TuningServer server(asha, {.lease_timeout = 1e12});
  NetServerOptions net_options;
  net_options.clock = NetClock::kMessage;
  net_options.tick_interval = 3600;
  NetServer net(server, net_options);
  net.Start();
  const int fd = ConnectLoopback(net.port());
  FrameDecoder decoder;
  SendAll(fd, EncodeMessage(RequestJob(0), 0));
  std::optional<WireFrame> first;
  while (!(first = decoder.Next())) decoder.Feed(RecvSome(fd));
  const Json heartbeat =
      Heartbeat(0, DecodeMessage(*first).message.at("job_id").AsInt());
  double now = 1;
  for (auto _ : state) {
    std::string batch;
    for (std::size_t i = 0; i < window; ++i) {
      batch += EncodeMessage(heartbeat, now);
      now += 1e-6;
    }
    SendAll(fd, batch);
    std::size_t got = 0;
    while (got < window) {
      decoder.Feed(RecvSome(fd));
      while (auto frame = decoder.Next()) {
        benchmark::DoNotOptimize(DecodeMessage(*frame).message);
        ++got;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(
                                                   state.range(0)));
  ::close(fd);
  net.Stop();
}
BENCHMARK(BM_LoopbackPipelinedBinary)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
