// Microbenchmarks of the simulation engine fast path (ISSUE: zero-cost-
// benchmark regime): a tabular environment answers Loss/Duration by table
// lookup, a trivial sweep scheduler hands out one job per call, and the
// driver's event loop — queue ops, worker bookkeeping, lifecycle guards —
// is all that remains. Results are recorded in BENCH_sim.json.
//
//   BM_SimJobThroughput/<workers>/<engine>   engine: 0 heap, 1 calendar
//   BM_SimJobThroughputTraced/<workers>      calendar + batched telemetry
//   BM_TableLookup                           raw Loss+Duration lookups
#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>

#include "sim/driver.h"
#include "surrogate/table.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

constexpr std::uint32_t kRows = 1024;
constexpr std::size_t kLadder = 8;

// In-memory tabular benchmark: geometric ladder 1..128, per-row cost drawn
// deterministically so completion times spread (the calendar queue's happy
// regime without being tuned for it).
TableData MakeTable() {
  TableData data;
  data.rows = kRows;
  data.resumable = true;
  data.fidelities.resize(kLadder);
  for (std::size_t i = 0; i < kLadder; ++i) {
    data.fidelities[i] = static_cast<double>(std::uint64_t{1} << i);
  }
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (std::uint32_t row = 0; row < kRows; ++row) {
    h = h * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull;
    const double cost =
        0.5 + static_cast<double>(h >> 40) / static_cast<double>(1 << 24);
    for (std::size_t i = 0; i < kLadder; ++i) {
      data.losses.push_back(1.0 / (1.0 + data.fidelities[i]) +
                            static_cast<double>(row % 17) * 1e-3);
      data.cum_times.push_back(cost * data.fidelities[i]);
    }
  }
  return data;
}

// Hands out jobs cycling over table rows and ladder rungs; tallies reports.
// Never finishes on its own — the driver's max_completed_jobs bounds runs.
class SweepScheduler final : public Scheduler {
 public:
  SweepScheduler(std::uint32_t rows, const double* fidelities,
                 std::size_t ladder)
      : rows_(rows), fidelities_(fidelities), ladder_(ladder) {}

  std::optional<Job> GetJob() override {
    std::optional<Job> job(std::in_place);
    job->trial_id = static_cast<TrialId>(handed_);
    job->rung = static_cast<int>(rung_cursor_);
    job->from_resource = 0;
    job->to_resource = fidelities_[rung_cursor_];
    job->config.Set("row", static_cast<std::int64_t>(row_cursor_));
    ++handed_;
    // Wrap-around cursors: a 64-bit modulo per job would dominate the
    // scheduler's cost and pollute the engine measurement.
    if (++rung_cursor_ == ladder_) rung_cursor_ = 0;
    if (++row_cursor_ == rows_) row_cursor_ = 0;
    return job;
  }
  void ReportResult(const Job& job, double loss) override {
    (void)job;
    loss_sum_ += loss;
    ++reported_;
  }
  void ReportLost(const Job& job) override { (void)job; }
  bool Finished() const override { return false; }
  std::optional<Recommendation> Current() const override {
    return std::nullopt;
  }
  const TrialBank& trials() const override { return bank_; }
  std::string name() const override { return "sweep"; }

  double loss_sum() const { return loss_sum_; }

 private:
  std::uint32_t rows_;
  const double* fidelities_;
  std::size_t ladder_;
  std::uint64_t handed_ = 0;
  std::size_t rung_cursor_ = 0;
  std::uint32_t row_cursor_ = 0;
  std::uint64_t reported_ = 0;
  double loss_sum_ = 0;
  TrialBank bank_;
};

void RunThroughput(benchmark::State& state, SimEngine engine,
                   bool traced) {
  const TableData table = MakeTable();
  constexpr std::size_t kJobsPerRun = 1 << 18;
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TabularBenchmark environment{TableData(table)};
    SweepScheduler scheduler(kRows, table.fidelities.data(), kLadder);
    auto telemetry = traced ? Telemetry::ForSimulation() : nullptr;
    DriverOptions options;
    options.num_workers = workers;
    options.max_completed_jobs = kJobsPerRun;
    options.telemetry = telemetry.get();
    options.event_queue = engine;
    options.record_runs = false;
    options.track_recommendations = false;
    SimulationDriver driver(scheduler, environment, options);
    const DriverResult result = driver.Run();
    benchmark::DoNotOptimize(scheduler.loss_sum());
    if (result.jobs_completed != kJobsPerRun) {
      state.SkipWithError("unexpected completion count");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobsPerRun));
}

void BM_SimJobThroughput(benchmark::State& state) {
  RunThroughput(state,
                state.range(1) == 0 ? SimEngine::kBinaryHeap
                                    : SimEngine::kCalendar,
                /*traced=*/false);
}
BENCHMARK(BM_SimJobThroughput)
    ->ArgsProduct({{16, 512, 4096}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_SimJobThroughputTraced(benchmark::State& state) {
  RunThroughput(state, SimEngine::kCalendar, /*traced=*/true);
}
BENCHMARK(BM_SimJobThroughputTraced)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_TableLookup(benchmark::State& state) {
  TabularBenchmark environment{MakeTable()};
  Configuration config;
  config.Set("row", std::int64_t{0});
  std::uint64_t i = 0;
  double sum = 0;
  for (auto _ : state) {
    config.Set("row", static_cast<std::int64_t>(i % kRows));
    const double to = static_cast<double>(std::uint64_t{1} << (i % kLadder));
    sum += environment.Loss(config, to);
    sum += environment.Duration(config, 0, to);
    ++i;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableLookup);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
