// Microbenchmarks (google-benchmark) of the multi-tenant routing layer:
// what does a lease message cost when the StudyManager hosts S studies
// instead of one?
//
// The multiplexing claim (DESIGN.md §11) is that routing is O(1) in the
// study count — a shard-hash lookup plus the single study's own work — so
// per-message cost must stay flat from 1 study to thousands. These benches
// sweep S = 1..10k at 1/4/16 shards through the full scoped
// grant+report+tick cycle, isolate Tick's O(due studies) contract with
// nothing due, and price the "*" fair-allocation scan (the one deliberate
// O(shards) path). Curated before/after numbers live in BENCH_studies.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "study/study_manager.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

Json RandomConfig(std::uint64_t seed) {
  Json config = JsonObject{};
  config.Set("kind", Json("random"));
  config.Set("seed", Json(static_cast<std::int64_t>(seed)));
  return config;
}

std::string StudyName(std::size_t i) { return "s" + std::to_string(i); }

Json ScopedRequest(std::uint64_t worker, const std::string& study) {
  Json message = JsonObject{};
  message.Set("type", Json("request_job"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("study", Json(study));
  return message;
}

Json ScopedReport(std::uint64_t worker, std::int64_t job_id,
                  const std::string& study) {
  Json message = JsonObject{};
  message.Set("type", Json("report"));
  message.Set("worker", Json(static_cast<std::int64_t>(worker)));
  message.Set("job_id", Json(job_id));
  message.Set("loss", Json(0.5));
  message.Set("study", Json(study));
  return message;
}

StudyManagerOptions BenchOptions(std::size_t shards) {
  StudyManagerOptions options;
  options.shards = shards;
  options.server = ServerOptions{.lease_timeout = 1e12};
  options.default_config = Json();  // all traffic scoped
  return options;
}

/// Loads `studies` tenants, each parked with one open lease so every
/// shard's deadline heap carries real entries (none ever due:
/// lease_timeout is effectively infinite).
void LoadStudies(StudyManager& manager, std::size_t studies) {
  for (std::size_t i = 0; i < studies; ++i) {
    (void)manager.CreateStudy(StudyName(i), RandomConfig(i + 1), 0.0);
    (void)manager.HandleMessage(ScopedRequest(/*worker=*/999, StudyName(i)),
                                0.0);
  }
}

// The headline sweep: a full scoped lease cycle (request_job + report +
// manager Tick) against a hot fleet of min(S, 8) studies while S tenants
// (each holding a live lease) are resident. This isolates what tenancy
// itself adds to a message — the routing lookup, the shard lock, the
// deadline-heap bookkeeping — which must be O(1) in S. Flat per-item time
// from S=1 to S=1000 at 16 shards is the acceptance bar; S=10k bounds the
// tail. (Cycling through ALL S tenants instead is measured separately
// below: that shape is bound by CPU cache capacity, not by the manager.)
void BM_StudyLeaseCycle(benchmark::State& state) {
  const auto studies = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  StudyManager manager(MakeStudySchedulerFactory(UnitSpace()),
                       BenchOptions(shards));
  LoadStudies(manager, studies);
  const std::size_t hot = std::min<std::size_t>(studies, 8);
  std::vector<std::string> names;
  names.reserve(hot);
  for (std::size_t i = 0; i < hot; ++i) names.push_back(StudyName(i));
  double now = 1;
  std::size_t next = 0;
  for (auto _ : state) {
    const std::string& study = names[next];
    next = (next + 1) % hot;
    const Json grant = manager.HandleMessage(ScopedRequest(0, study), now);
    (void)manager.HandleMessage(
        ScopedReport(0, grant.at("job_id").AsInt(), study), now + 1e-7);
    manager.Tick(now + 2e-7);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StudyLeaseCycle)
    ->Args({1, 1})
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({1000, 1})
    ->Args({1, 4})
    ->Args({10, 4})
    ->Args({100, 4})
    ->Args({1000, 4})
    ->Args({1, 16})
    ->Args({10, 16})
    ->Args({100, 16})
    ->Args({1000, 16})
    ->Args({10000, 16});

// Same cycle, but every message targets a different tenant round-robin, so
// each one drags a cold scheduler + server working set through the cache.
// This prices the worst-case traffic shape; the delta vs the hot-fleet
// rows above is cache capacity (any layout hosting S independent searches
// pays it), not manager overhead.
void BM_StudyLeaseCycleRotatingTenants(benchmark::State& state) {
  const auto studies = static_cast<std::size_t>(state.range(0));
  StudyManager manager(MakeStudySchedulerFactory(UnitSpace()),
                       BenchOptions(/*shards=*/16));
  LoadStudies(manager, studies);
  std::vector<std::string> names;
  names.reserve(studies);
  for (std::size_t i = 0; i < studies; ++i) names.push_back(StudyName(i));
  double now = 1;
  std::size_t next = 0;
  for (auto _ : state) {
    const std::string& study = names[next];
    next = (next + 1) % studies;
    const Json grant = manager.HandleMessage(ScopedRequest(0, study), now);
    (void)manager.HandleMessage(
        ScopedReport(0, grant.at("job_id").AsInt(), study), now + 1e-7);
    manager.Tick(now + 2e-7);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StudyLeaseCycleRotatingTenants)->Arg(1)->Arg(100)->Arg(1000);

// Tick with S studies holding live leases and none of them due: the lazy
// per-shard deadline heaps must make this O(shards), not O(studies) — the
// idle-expiry timer fires once a second in production and must not scale
// with tenancy.
void BM_StudyTickNothingDue(benchmark::State& state) {
  const auto studies = static_cast<std::size_t>(state.range(0));
  StudyManager manager(MakeStudySchedulerFactory(UnitSpace()),
                       BenchOptions(/*shards=*/16));
  LoadStudies(manager, studies);
  double now = 1;
  for (auto _ : state) {
    manager.Tick(now);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StudyTickNothingDue)->Arg(1)->Arg(100)->Arg(1000)->Arg(10000);

// "*" fair allocation: the one path that deliberately scans — it rotates
// across shards looking for a ready study. Prices the scan against the
// scoped fast path above (same cycle, wildcard routing).
void BM_StudyWildcardCycle(benchmark::State& state) {
  const auto studies = static_cast<std::size_t>(state.range(0));
  StudyManager manager(MakeStudySchedulerFactory(UnitSpace()),
                       BenchOptions(/*shards=*/16));
  LoadStudies(manager, studies);
  double now = 1;
  for (auto _ : state) {
    const Json grant = manager.HandleMessage(ScopedRequest(0, "*"), now);
    const std::string study = grant.at("study").AsString();
    (void)manager.HandleMessage(
        ScopedReport(0, grant.at("job_id").AsInt(), study), now + 1e-7);
    now += 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StudyWildcardCycle)->Arg(1)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
