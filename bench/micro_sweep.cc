// Microbenchmarks of the parallel sweep engine (src/sweep): whole-grid
// throughput at different thread counts, and the per-study cost of the
// reused SimContext against cold per-study allocation. Results are
// recorded in BENCH_sweep.json.
//
//   BM_SweepGrid/<threads>    full RunSweep of a fixed 32-cell grid;
//                             items/sec = cells per wall second
//   BM_StudyReusedContext     one asha study per iteration, one SimContext
//   BM_StudyColdContext       same study, fresh context every iteration
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "registry/registry.h"
#include "sim/driver.h"
#include "surrogate/table.h"
#include "sweep/engine.h"

namespace hypertune {
namespace {

constexpr std::uint32_t kRows = 1024;
constexpr std::size_t kLadder = 8;

// Same deterministic in-memory table as micro_sim: geometric ladder 1..128,
// per-row cost spread so completion times interleave.
TableData MakeTable(std::uint64_t salt) {
  TableData data;
  data.rows = kRows;
  data.resumable = true;
  data.fidelities.resize(kLadder);
  for (std::size_t i = 0; i < kLadder; ++i) {
    data.fidelities[i] = static_cast<double>(std::uint64_t{1} << i);
  }
  std::uint64_t h = 0x9E3779B97F4A7C15ull ^ salt;
  for (std::uint32_t row = 0; row < kRows; ++row) {
    h = h * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull;
    const double cost =
        0.5 + static_cast<double>(h >> 40) / static_cast<double>(1 << 24);
    for (std::size_t i = 0; i < kLadder; ++i) {
      data.losses.push_back(1.0 / (1.0 + data.fidelities[i]) +
                            static_cast<double>((row ^ h) % 17) * 1e-3);
      data.cum_times.push_back(cost * data.fidelities[i]);
    }
  }
  return data;
}

SweepSpec GridSpec(TabularBenchmark* a, TabularBenchmark* b) {
  SweepSpec spec;
  spec.benchmarks = {{"a", a}, {"b", b}};
  spec.schedulers = {"asha", "random"};
  spec.seeds = {1, 2, 3, 4};
  spec.fleets = {4, 16};
  spec.params.n = 64;
  spec.params.r_divisor = 128;
  spec.max_jobs = 4096;
  return spec;
}

void BM_SweepGrid(benchmark::State& state) {
  auto a = std::make_unique<TabularBenchmark>(MakeTable(1));
  auto b = std::make_unique<TabularBenchmark>(MakeTable(2));
  const SweepSpec spec = GridSpec(a.get(), b.get());
  SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  std::uint64_t jobs = 0;
  std::size_t cells = 0;
  for (auto _ : state) {
    SweepThroughput throughput;
    const auto results = RunSweep(spec, options, &throughput);
    benchmark::DoNotOptimize(results.data());
    jobs += throughput.jobs;
    cells += throughput.cells;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepGrid)->Arg(1)->Arg(2)->Arg(4)->Arg(16)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// One full asha study per iteration; the two variants differ only in
// whether the SimContext (event queue, payload slab, idle bitmap) is
// carried across iterations or rebuilt from scratch.
void RunStudy(TabularBenchmark& table, SimContext* context,
              std::size_t max_jobs, std::uint64_t& jobs) {
  TunerParams params;
  params.n = 64;
  params.r_divisor = 128;
  auto scheduler = MakeTuner("asha",
                             {.space = &table.space(),
                              .R = table.max_resource(),
                              .resumable = table.resumable(),
                              .random_guess_loss = 1.0},
                             params);
  DriverOptions options;
  options.num_workers = 16;
  options.max_completed_jobs = max_jobs;
  options.record_runs = false;
  options.track_recommendations = false;
  SimulationDriver driver(*scheduler, table, options);
  const DriverResult result =
      context != nullptr ? driver.Run(*context) : driver.Run();
  jobs += result.jobs_completed;
}

void BM_StudyReusedContext(benchmark::State& state) {
  auto table = std::make_unique<TabularBenchmark>(MakeTable(1));
  SimContext context;
  std::uint64_t jobs = 0;
  const auto max_jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) RunStudy(*table, &context, max_jobs, jobs);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_StudyReusedContext)->Arg(256)->Arg(4096);

void BM_StudyColdContext(benchmark::State& state) {
  auto table = std::make_unique<TabularBenchmark>(MakeTable(1));
  std::uint64_t jobs = 0;
  const auto max_jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) RunStudy(*table, nullptr, max_jobs, jobs);
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_StudyColdContext)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
