// Microbenchmarks for the telemetry hot paths: the disabled-sink check that
// every instrumented site pays, atomic counter increments, histogram
// observations, and event recording. Keeps the "zero overhead when
// disabled" claim in DESIGN.md honest.
#include <benchmark/benchmark.h>

#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

// The disabled configuration: what every instrumented call site costs when
// no sink is attached (a pointer compare the optimizer can hoist).
void BM_DisabledSinkCheck(benchmark::State& state) {
  Telemetry* telemetry = nullptr;
  benchmark::DoNotOptimize(telemetry);
  std::int64_t emitted = 0;
  for (auto _ : state) {
    if (telemetry != nullptr) ++emitted;
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_DisabledSinkCheck);

void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("bench.hits");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("bench.lat", ExponentialBuckets(1e-4, 4, 12));
  double value = 0;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value > 1.0 ? 0.0 : value + 1e-3;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("bench.depth");
  double value = 0;
  for (auto _ : state) {
    gauge.Set(value);
    value += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_EventRecord(benchmark::State& state) {
  auto telemetry = Telemetry::ForSimulation();
  std::int64_t trial = 0;
  for (auto _ : state) {
    Json args = JsonObject{};
    args.Set("trial", Json(trial++));
    telemetry->Event("trial_sampled", "trial", std::move(args));
  }
  benchmark::DoNotOptimize(telemetry->tracer().size());
}
BENCHMARK(BM_EventRecord);

void BM_SpanRecord(benchmark::State& state) {
  auto telemetry = Telemetry::ForSimulation();
  double now = 0;
  for (auto _ : state) {
    telemetry->SpanAt(now, 1.0, "t0:r0", "worker", Json(), 0);
    now += 1.0;
  }
  benchmark::DoNotOptimize(telemetry->tracer().size());
}
BENCHMARK(BM_SpanRecord);

}  // namespace
}  // namespace hypertune

BENCHMARK_MAIN();
