// Worker-scaling sweep: "ASHA scales linearly with the number of workers in
// distributed settings" (paper abstract / Section 4.2). Measures the time
// for ASHA to reach a target test error on the Table-1 architecture task as
// the worker count grows, and reports the speedup relative to 1 worker.
#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace hypertune;
using namespace hypertune::bench;

int main() {
  constexpr double kTargetError = 0.215;
  const std::vector<int> worker_counts{1, 5, 25, 125};
  constexpr int kTrials = 5;

  Banner("Scaling: ASHA time-to-target vs worker count",
         {"Table-1 architecture task; target test error " +
              FormatDouble(kTargetError, 3),
          "mean over " + std::to_string(kTrials) + " trials"});

  TextTable table({"workers", "mean time to target (min)", "speedup vs 1",
                   "linear speedup would be"});
  double t1 = 0;
  for (int workers : worker_counts) {
    ExperimentOptions options;
    options.num_trials = kTrials;
    options.num_workers = workers;
    // Long horizon for the single worker; shorter as workers grow.
    options.time_limit = workers == 1 ? 3000 : 3000.0 / workers * 8;
    options.grid_points = 40;
    const auto result = RunExperiment(
        "ASHA",
        [](std::uint64_t seed) { return benchmarks::CifarArch(seed); },
        AshaFactory(4, 256), options);
    const double t = MeanTimeToReach(result.trajectories, kTargetError);
    if (workers == 1) t1 = t;
    table.AddRow({std::to_string(workers),
                  std::isnan(t) ? std::string("never") : FormatDouble(t, 1),
                  std::isnan(t) || std::isnan(t1)
                      ? std::string("-")
                      : FormatDouble(t1 / t, 1) + "x",
                  FormatDouble(static_cast<double>(workers), 0) + "x"});
    std::cerr << "  " << workers << " workers done\n";
  }
  std::cout << table.ToMarkdown()
            << "\nExpected: near-linear speedups while the search is "
               "worker-bound; sub-linear once\nthe task is easy enough that "
               "few configurations suffice (the paper's 10x on\nbenchmark 1 "
               "vs linear on benchmark 2).\n";
  return 0;
}
