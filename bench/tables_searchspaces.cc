// Regenerates Tables 1-3 of the paper (and the other search spaces used in
// the evaluation) from the in-code definitions.
#include <iostream>

#include "common/table.h"
#include "searchspace/spaces.h"

using namespace hypertune;

namespace {

std::string ScaleName(const Domain& domain) {
  if (domain.kind() == ParamKind::kChoice) {
    return domain.ordered() ? "choice (ordered)" : "choice";
  }
  const std::string base =
      domain.kind() == ParamKind::kInteger ? "discrete" : "continuous";
  return domain.scale() == Scale::kLog ? base + " log" : base;
}

std::string ValuesColumn(const Domain& domain) {
  if (domain.kind() == ParamKind::kChoice) {
    std::string out = "{";
    bool first = true;
    for (const auto& option : domain.options()) {
      if (!first) out += ", ";
      first = false;
      out += ToString(option);
    }
    return out + "}";
  }
  const int precision = domain.lo() < 0.01 ? 7 : 3;
  return "[" + FormatDouble(domain.lo(), precision) + ", " +
         FormatDouble(domain.hi(), precision) + "]";
}

void PrintSpace(const std::string& title, const SearchSpace& space) {
  std::cout << title << "\n";
  TextTable table({"hyperparameter", "type", "values"});
  for (std::size_t i = 0; i < space.NumParams(); ++i) {
    table.AddRow({space.name(i), ScaleName(space.domain(i)),
                  ValuesColumn(space.domain(i))});
  }
  std::cout << table.ToMarkdown() << "\n";
}

}  // namespace

int main() {
  std::cout << "==== Paper search-space tables ====\n\n";
  PrintSpace("Table 1: small CNN architecture tuning task",
             spaces::SmallCnnArchSpace());
  PrintSpace("Table 2: PTB LSTM task (500-worker experiment)",
             spaces::PtbLstmSpace());
  PrintSpace("Table 3: 16-GPU near state-of-the-art LSTM task",
             spaces::AwdLstmSpace());
  PrintSpace("cuda-convnet space (benchmark 1, Li et al. 2017)",
             spaces::CudaConvnetSpace());
  PrintSpace("SVM space (Fabolas comparison, Appendix A.2)",
             spaces::SvmSpace());
  return 0;
}
