file(REMOVE_RECURSE
  "CMakeFiles/ablation_eta_s.dir/ablation_eta_s.cc.o"
  "CMakeFiles/ablation_eta_s.dir/ablation_eta_s.cc.o.d"
  "ablation_eta_s"
  "ablation_eta_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eta_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
