# Empty dependencies file for ablation_eta_s.
# This may be replaced when dependencies are built.
