file(REMOVE_RECURSE
  "CMakeFiles/asha_theory_check.dir/asha_theory_check.cc.o"
  "CMakeFiles/asha_theory_check.dir/asha_theory_check.cc.o.d"
  "asha_theory_check"
  "asha_theory_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asha_theory_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
