# Empty compiler generated dependencies file for asha_theory_check.
# This may be replaced when dependencies are built.
