file(REMOVE_RECURSE
  "CMakeFiles/extension_stoppers.dir/extension_stoppers.cc.o"
  "CMakeFiles/extension_stoppers.dir/extension_stoppers.cc.o.d"
  "extension_stoppers"
  "extension_stoppers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_stoppers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
