# Empty compiler generated dependencies file for extension_stoppers.
# This may be replaced when dependencies are built.
