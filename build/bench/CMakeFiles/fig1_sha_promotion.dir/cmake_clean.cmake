file(REMOVE_RECURSE
  "CMakeFiles/fig1_sha_promotion.dir/fig1_sha_promotion.cc.o"
  "CMakeFiles/fig1_sha_promotion.dir/fig1_sha_promotion.cc.o.d"
  "fig1_sha_promotion"
  "fig1_sha_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sha_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
