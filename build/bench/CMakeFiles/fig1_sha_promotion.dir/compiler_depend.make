# Empty compiler generated dependencies file for fig1_sha_promotion.
# This may be replaced when dependencies are built.
