file(REMOVE_RECURSE
  "CMakeFiles/fig2_promotion_trace.dir/fig2_promotion_trace.cc.o"
  "CMakeFiles/fig2_promotion_trace.dir/fig2_promotion_trace.cc.o.d"
  "fig2_promotion_trace"
  "fig2_promotion_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_promotion_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
