# Empty compiler generated dependencies file for fig2_promotion_trace.
# This may be replaced when dependencies are built.
