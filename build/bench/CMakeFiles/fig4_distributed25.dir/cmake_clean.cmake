file(REMOVE_RECURSE
  "CMakeFiles/fig4_distributed25.dir/fig4_distributed25.cc.o"
  "CMakeFiles/fig4_distributed25.dir/fig4_distributed25.cc.o.d"
  "fig4_distributed25"
  "fig4_distributed25.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_distributed25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
