# Empty dependencies file for fig4_distributed25.
# This may be replaced when dependencies are built.
