file(REMOVE_RECURSE
  "CMakeFiles/fig5_largescale500.dir/fig5_largescale500.cc.o"
  "CMakeFiles/fig5_largescale500.dir/fig5_largescale500.cc.o.d"
  "fig5_largescale500"
  "fig5_largescale500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_largescale500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
