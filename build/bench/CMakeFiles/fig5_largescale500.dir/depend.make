# Empty dependencies file for fig5_largescale500.
# This may be replaced when dependencies are built.
