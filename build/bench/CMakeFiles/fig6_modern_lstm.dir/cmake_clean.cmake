file(REMOVE_RECURSE
  "CMakeFiles/fig6_modern_lstm.dir/fig6_modern_lstm.cc.o"
  "CMakeFiles/fig6_modern_lstm.dir/fig6_modern_lstm.cc.o.d"
  "fig6_modern_lstm"
  "fig6_modern_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_modern_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
