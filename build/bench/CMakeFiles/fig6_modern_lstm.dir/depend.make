# Empty dependencies file for fig6_modern_lstm.
# This may be replaced when dependencies are built.
