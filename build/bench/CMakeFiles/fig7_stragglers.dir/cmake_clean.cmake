file(REMOVE_RECURSE
  "CMakeFiles/fig7_stragglers.dir/fig7_stragglers.cc.o"
  "CMakeFiles/fig7_stragglers.dir/fig7_stragglers.cc.o.d"
  "fig7_stragglers"
  "fig7_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
