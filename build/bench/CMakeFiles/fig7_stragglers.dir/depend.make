# Empty dependencies file for fig7_stragglers.
# This may be replaced when dependencies are built.
