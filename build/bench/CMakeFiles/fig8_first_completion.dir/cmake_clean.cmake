file(REMOVE_RECURSE
  "CMakeFiles/fig8_first_completion.dir/fig8_first_completion.cc.o"
  "CMakeFiles/fig8_first_completion.dir/fig8_first_completion.cc.o.d"
  "fig8_first_completion"
  "fig8_first_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_first_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
