# Empty dependencies file for fig8_first_completion.
# This may be replaced when dependencies are built.
