file(REMOVE_RECURSE
  "CMakeFiles/fig9_fabolas.dir/fig9_fabolas.cc.o"
  "CMakeFiles/fig9_fabolas.dir/fig9_fabolas.cc.o.d"
  "fig9_fabolas"
  "fig9_fabolas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fabolas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
