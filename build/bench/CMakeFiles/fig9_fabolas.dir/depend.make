# Empty dependencies file for fig9_fabolas.
# This may be replaced when dependencies are built.
