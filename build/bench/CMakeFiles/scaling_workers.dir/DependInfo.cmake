
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scaling_workers.cc" "bench/CMakeFiles/scaling_workers.dir/scaling_workers.cc.o" "gcc" "bench/CMakeFiles/scaling_workers.dir/scaling_workers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/ht_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/ht_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/ht_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ht_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ht_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/ht_registry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
