# Empty dependencies file for scaling_workers.
# This may be replaced when dependencies are built.
