file(REMOVE_RECURSE
  "CMakeFiles/tables_searchspaces.dir/tables_searchspaces.cc.o"
  "CMakeFiles/tables_searchspaces.dir/tables_searchspaces.cc.o.d"
  "tables_searchspaces"
  "tables_searchspaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_searchspaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
