# Empty dependencies file for tables_searchspaces.
# This may be replaced when dependencies are built.
