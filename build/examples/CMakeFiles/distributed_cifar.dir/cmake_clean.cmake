file(REMOVE_RECURSE
  "CMakeFiles/distributed_cifar.dir/distributed_cifar.cpp.o"
  "CMakeFiles/distributed_cifar.dir/distributed_cifar.cpp.o.d"
  "distributed_cifar"
  "distributed_cifar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_cifar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
