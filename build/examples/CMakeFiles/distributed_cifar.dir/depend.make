# Empty dependencies file for distributed_cifar.
# This may be replaced when dependencies are built.
