file(REMOVE_RECURSE
  "CMakeFiles/large_scale_ptb.dir/large_scale_ptb.cpp.o"
  "CMakeFiles/large_scale_ptb.dir/large_scale_ptb.cpp.o.d"
  "large_scale_ptb"
  "large_scale_ptb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_scale_ptb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
