# Empty dependencies file for large_scale_ptb.
# This may be replaced when dependencies are built.
