file(REMOVE_RECURSE
  "CMakeFiles/tuning_service.dir/tuning_service.cpp.o"
  "CMakeFiles/tuning_service.dir/tuning_service.cpp.o.d"
  "tuning_service"
  "tuning_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
