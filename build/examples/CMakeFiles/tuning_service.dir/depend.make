# Empty dependencies file for tuning_service.
# This may be replaced when dependencies are built.
