# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("searchspace")
subdirs("core")
subdirs("bo")
subdirs("sim")
subdirs("runtime")
subdirs("service")
subdirs("surrogate")
subdirs("baselines")
subdirs("analysis")
subdirs("registry")
