
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregate.cc" "src/analysis/CMakeFiles/ht_analysis.dir/aggregate.cc.o" "gcc" "src/analysis/CMakeFiles/ht_analysis.dir/aggregate.cc.o.d"
  "/root/repo/src/analysis/experiment.cc" "src/analysis/CMakeFiles/ht_analysis.dir/experiment.cc.o" "gcc" "src/analysis/CMakeFiles/ht_analysis.dir/experiment.cc.o.d"
  "/root/repo/src/analysis/export.cc" "src/analysis/CMakeFiles/ht_analysis.dir/export.cc.o" "gcc" "src/analysis/CMakeFiles/ht_analysis.dir/export.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/ht_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/ht_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/trajectory.cc" "src/analysis/CMakeFiles/ht_analysis.dir/trajectory.cc.o" "gcc" "src/analysis/CMakeFiles/ht_analysis.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/ht_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/ht_searchspace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
