file(REMOVE_RECURSE
  "CMakeFiles/ht_analysis.dir/aggregate.cc.o"
  "CMakeFiles/ht_analysis.dir/aggregate.cc.o.d"
  "CMakeFiles/ht_analysis.dir/experiment.cc.o"
  "CMakeFiles/ht_analysis.dir/experiment.cc.o.d"
  "CMakeFiles/ht_analysis.dir/export.cc.o"
  "CMakeFiles/ht_analysis.dir/export.cc.o.d"
  "CMakeFiles/ht_analysis.dir/report.cc.o"
  "CMakeFiles/ht_analysis.dir/report.cc.o.d"
  "CMakeFiles/ht_analysis.dir/trajectory.cc.o"
  "CMakeFiles/ht_analysis.dir/trajectory.cc.o.d"
  "libht_analysis.a"
  "libht_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
