file(REMOVE_RECURSE
  "libht_analysis.a"
)
