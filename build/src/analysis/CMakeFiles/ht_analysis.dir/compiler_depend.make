# Empty compiler generated dependencies file for ht_analysis.
# This may be replaced when dependencies are built.
