
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bohb.cc" "src/baselines/CMakeFiles/ht_baselines.dir/bohb.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/bohb.cc.o.d"
  "/root/repo/src/baselines/fabolas.cc" "src/baselines/CMakeFiles/ht_baselines.dir/fabolas.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/fabolas.cc.o.d"
  "/root/repo/src/baselines/lc_stop.cc" "src/baselines/CMakeFiles/ht_baselines.dir/lc_stop.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/lc_stop.cc.o.d"
  "/root/repo/src/baselines/median_rule.cc" "src/baselines/CMakeFiles/ht_baselines.dir/median_rule.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/median_rule.cc.o.d"
  "/root/repo/src/baselines/pbt.cc" "src/baselines/CMakeFiles/ht_baselines.dir/pbt.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/pbt.cc.o.d"
  "/root/repo/src/baselines/vizier.cc" "src/baselines/CMakeFiles/ht_baselines.dir/vizier.cc.o" "gcc" "src/baselines/CMakeFiles/ht_baselines.dir/vizier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/ht_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/ht_bo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
