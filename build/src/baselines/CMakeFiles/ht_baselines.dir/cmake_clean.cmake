file(REMOVE_RECURSE
  "CMakeFiles/ht_baselines.dir/bohb.cc.o"
  "CMakeFiles/ht_baselines.dir/bohb.cc.o.d"
  "CMakeFiles/ht_baselines.dir/fabolas.cc.o"
  "CMakeFiles/ht_baselines.dir/fabolas.cc.o.d"
  "CMakeFiles/ht_baselines.dir/lc_stop.cc.o"
  "CMakeFiles/ht_baselines.dir/lc_stop.cc.o.d"
  "CMakeFiles/ht_baselines.dir/median_rule.cc.o"
  "CMakeFiles/ht_baselines.dir/median_rule.cc.o.d"
  "CMakeFiles/ht_baselines.dir/pbt.cc.o"
  "CMakeFiles/ht_baselines.dir/pbt.cc.o.d"
  "CMakeFiles/ht_baselines.dir/vizier.cc.o"
  "CMakeFiles/ht_baselines.dir/vizier.cc.o.d"
  "libht_baselines.a"
  "libht_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
