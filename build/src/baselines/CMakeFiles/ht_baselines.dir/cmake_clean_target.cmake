file(REMOVE_RECURSE
  "libht_baselines.a"
)
