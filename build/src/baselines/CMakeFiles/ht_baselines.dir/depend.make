# Empty dependencies file for ht_baselines.
# This may be replaced when dependencies are built.
