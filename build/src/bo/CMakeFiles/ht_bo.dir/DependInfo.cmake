
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/acquisition.cc" "src/bo/CMakeFiles/ht_bo.dir/acquisition.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/acquisition.cc.o.d"
  "/root/repo/src/bo/curve_fit.cc" "src/bo/CMakeFiles/ht_bo.dir/curve_fit.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/curve_fit.cc.o.d"
  "/root/repo/src/bo/gp.cc" "src/bo/CMakeFiles/ht_bo.dir/gp.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/gp.cc.o.d"
  "/root/repo/src/bo/kde.cc" "src/bo/CMakeFiles/ht_bo.dir/kde.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/kde.cc.o.d"
  "/root/repo/src/bo/kernel.cc" "src/bo/CMakeFiles/ht_bo.dir/kernel.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/kernel.cc.o.d"
  "/root/repo/src/bo/matrix.cc" "src/bo/CMakeFiles/ht_bo.dir/matrix.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/matrix.cc.o.d"
  "/root/repo/src/bo/tpe.cc" "src/bo/CMakeFiles/ht_bo.dir/tpe.cc.o" "gcc" "src/bo/CMakeFiles/ht_bo.dir/tpe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/ht_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
