file(REMOVE_RECURSE
  "CMakeFiles/ht_bo.dir/acquisition.cc.o"
  "CMakeFiles/ht_bo.dir/acquisition.cc.o.d"
  "CMakeFiles/ht_bo.dir/curve_fit.cc.o"
  "CMakeFiles/ht_bo.dir/curve_fit.cc.o.d"
  "CMakeFiles/ht_bo.dir/gp.cc.o"
  "CMakeFiles/ht_bo.dir/gp.cc.o.d"
  "CMakeFiles/ht_bo.dir/kde.cc.o"
  "CMakeFiles/ht_bo.dir/kde.cc.o.d"
  "CMakeFiles/ht_bo.dir/kernel.cc.o"
  "CMakeFiles/ht_bo.dir/kernel.cc.o.d"
  "CMakeFiles/ht_bo.dir/matrix.cc.o"
  "CMakeFiles/ht_bo.dir/matrix.cc.o.d"
  "CMakeFiles/ht_bo.dir/tpe.cc.o"
  "CMakeFiles/ht_bo.dir/tpe.cc.o.d"
  "libht_bo.a"
  "libht_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
