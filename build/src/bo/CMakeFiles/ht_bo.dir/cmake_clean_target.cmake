file(REMOVE_RECURSE
  "libht_bo.a"
)
