# Empty compiler generated dependencies file for ht_bo.
# This may be replaced when dependencies are built.
