file(REMOVE_RECURSE
  "libht_common.a"
)
