
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/asha.cc" "src/core/CMakeFiles/ht_core.dir/asha.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/asha.cc.o.d"
  "/root/repo/src/core/async_hyperband.cc" "src/core/CMakeFiles/ht_core.dir/async_hyperband.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/async_hyperband.cc.o.d"
  "/root/repo/src/core/geometry.cc" "src/core/CMakeFiles/ht_core.dir/geometry.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/geometry.cc.o.d"
  "/root/repo/src/core/grid_search.cc" "src/core/CMakeFiles/ht_core.dir/grid_search.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/grid_search.cc.o.d"
  "/root/repo/src/core/hyperband.cc" "src/core/CMakeFiles/ht_core.dir/hyperband.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/hyperband.cc.o.d"
  "/root/repo/src/core/incumbent.cc" "src/core/CMakeFiles/ht_core.dir/incumbent.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/incumbent.cc.o.d"
  "/root/repo/src/core/quasirandom.cc" "src/core/CMakeFiles/ht_core.dir/quasirandom.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/quasirandom.cc.o.d"
  "/root/repo/src/core/random_search.cc" "src/core/CMakeFiles/ht_core.dir/random_search.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/random_search.cc.o.d"
  "/root/repo/src/core/rung.cc" "src/core/CMakeFiles/ht_core.dir/rung.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/rung.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/core/CMakeFiles/ht_core.dir/sampler.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/sampler.cc.o.d"
  "/root/repo/src/core/sha.cc" "src/core/CMakeFiles/ht_core.dir/sha.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/sha.cc.o.d"
  "/root/repo/src/core/trial.cc" "src/core/CMakeFiles/ht_core.dir/trial.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/trial.cc.o.d"
  "/root/repo/src/core/trial_json.cc" "src/core/CMakeFiles/ht_core.dir/trial_json.cc.o" "gcc" "src/core/CMakeFiles/ht_core.dir/trial_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/ht_searchspace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
