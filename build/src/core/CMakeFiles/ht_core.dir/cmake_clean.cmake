file(REMOVE_RECURSE
  "CMakeFiles/ht_core.dir/asha.cc.o"
  "CMakeFiles/ht_core.dir/asha.cc.o.d"
  "CMakeFiles/ht_core.dir/async_hyperband.cc.o"
  "CMakeFiles/ht_core.dir/async_hyperband.cc.o.d"
  "CMakeFiles/ht_core.dir/geometry.cc.o"
  "CMakeFiles/ht_core.dir/geometry.cc.o.d"
  "CMakeFiles/ht_core.dir/grid_search.cc.o"
  "CMakeFiles/ht_core.dir/grid_search.cc.o.d"
  "CMakeFiles/ht_core.dir/hyperband.cc.o"
  "CMakeFiles/ht_core.dir/hyperband.cc.o.d"
  "CMakeFiles/ht_core.dir/incumbent.cc.o"
  "CMakeFiles/ht_core.dir/incumbent.cc.o.d"
  "CMakeFiles/ht_core.dir/quasirandom.cc.o"
  "CMakeFiles/ht_core.dir/quasirandom.cc.o.d"
  "CMakeFiles/ht_core.dir/random_search.cc.o"
  "CMakeFiles/ht_core.dir/random_search.cc.o.d"
  "CMakeFiles/ht_core.dir/rung.cc.o"
  "CMakeFiles/ht_core.dir/rung.cc.o.d"
  "CMakeFiles/ht_core.dir/sampler.cc.o"
  "CMakeFiles/ht_core.dir/sampler.cc.o.d"
  "CMakeFiles/ht_core.dir/sha.cc.o"
  "CMakeFiles/ht_core.dir/sha.cc.o.d"
  "CMakeFiles/ht_core.dir/trial.cc.o"
  "CMakeFiles/ht_core.dir/trial.cc.o.d"
  "CMakeFiles/ht_core.dir/trial_json.cc.o"
  "CMakeFiles/ht_core.dir/trial_json.cc.o.d"
  "libht_core.a"
  "libht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
