# Empty dependencies file for ht_core.
# This may be replaced when dependencies are built.
