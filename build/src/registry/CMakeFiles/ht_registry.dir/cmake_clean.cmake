file(REMOVE_RECURSE
  "CMakeFiles/ht_registry.dir/registry.cc.o"
  "CMakeFiles/ht_registry.dir/registry.cc.o.d"
  "libht_registry.a"
  "libht_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
