file(REMOVE_RECURSE
  "libht_registry.a"
)
