# Empty compiler generated dependencies file for ht_registry.
# This may be replaced when dependencies are built.
