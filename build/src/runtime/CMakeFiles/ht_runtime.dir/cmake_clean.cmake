file(REMOVE_RECURSE
  "CMakeFiles/ht_runtime.dir/executor.cc.o"
  "CMakeFiles/ht_runtime.dir/executor.cc.o.d"
  "libht_runtime.a"
  "libht_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
