
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/searchspace/config_json.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/config_json.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/config_json.cc.o.d"
  "/root/repo/src/searchspace/configuration.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/configuration.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/configuration.cc.o.d"
  "/root/repo/src/searchspace/domain.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/domain.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/domain.cc.o.d"
  "/root/repo/src/searchspace/perturb.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/perturb.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/perturb.cc.o.d"
  "/root/repo/src/searchspace/space.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/space.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/space.cc.o.d"
  "/root/repo/src/searchspace/spaces.cc" "src/searchspace/CMakeFiles/ht_searchspace.dir/spaces.cc.o" "gcc" "src/searchspace/CMakeFiles/ht_searchspace.dir/spaces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ht_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
