file(REMOVE_RECURSE
  "CMakeFiles/ht_searchspace.dir/config_json.cc.o"
  "CMakeFiles/ht_searchspace.dir/config_json.cc.o.d"
  "CMakeFiles/ht_searchspace.dir/configuration.cc.o"
  "CMakeFiles/ht_searchspace.dir/configuration.cc.o.d"
  "CMakeFiles/ht_searchspace.dir/domain.cc.o"
  "CMakeFiles/ht_searchspace.dir/domain.cc.o.d"
  "CMakeFiles/ht_searchspace.dir/perturb.cc.o"
  "CMakeFiles/ht_searchspace.dir/perturb.cc.o.d"
  "CMakeFiles/ht_searchspace.dir/space.cc.o"
  "CMakeFiles/ht_searchspace.dir/space.cc.o.d"
  "CMakeFiles/ht_searchspace.dir/spaces.cc.o"
  "CMakeFiles/ht_searchspace.dir/spaces.cc.o.d"
  "libht_searchspace.a"
  "libht_searchspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
