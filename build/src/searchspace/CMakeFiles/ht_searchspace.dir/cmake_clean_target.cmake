file(REMOVE_RECURSE
  "libht_searchspace.a"
)
