# Empty dependencies file for ht_searchspace.
# This may be replaced when dependencies are built.
