file(REMOVE_RECURSE
  "CMakeFiles/ht_service.dir/server.cc.o"
  "CMakeFiles/ht_service.dir/server.cc.o.d"
  "CMakeFiles/ht_service.dir/worker.cc.o"
  "CMakeFiles/ht_service.dir/worker.cc.o.d"
  "libht_service.a"
  "libht_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
