file(REMOVE_RECURSE
  "libht_service.a"
)
