# Empty dependencies file for ht_service.
# This may be replaced when dependencies are built.
