file(REMOVE_RECURSE
  "CMakeFiles/ht_sim.dir/driver.cc.o"
  "CMakeFiles/ht_sim.dir/driver.cc.o.d"
  "CMakeFiles/ht_sim.dir/hazards.cc.o"
  "CMakeFiles/ht_sim.dir/hazards.cc.o.d"
  "libht_sim.a"
  "libht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
