# Empty compiler generated dependencies file for ht_sim.
# This may be replaced when dependencies are built.
