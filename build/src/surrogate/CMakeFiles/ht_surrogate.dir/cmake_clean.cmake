file(REMOVE_RECURSE
  "CMakeFiles/ht_surrogate.dir/benchmark.cc.o"
  "CMakeFiles/ht_surrogate.dir/benchmark.cc.o.d"
  "CMakeFiles/ht_surrogate.dir/benchmarks.cc.o"
  "CMakeFiles/ht_surrogate.dir/benchmarks.cc.o.d"
  "libht_surrogate.a"
  "libht_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
