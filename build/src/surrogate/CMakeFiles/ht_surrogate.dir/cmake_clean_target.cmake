file(REMOVE_RECURSE
  "libht_surrogate.a"
)
