# Empty dependencies file for ht_surrogate.
# This may be replaced when dependencies are built.
