file(REMOVE_RECURSE
  "CMakeFiles/tests_analysis.dir/analysis_test.cc.o"
  "CMakeFiles/tests_analysis.dir/analysis_test.cc.o.d"
  "tests_analysis"
  "tests_analysis.pdb"
  "tests_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
