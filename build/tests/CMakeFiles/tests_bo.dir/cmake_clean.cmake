file(REMOVE_RECURSE
  "CMakeFiles/tests_bo.dir/bo_kde_tpe_test.cc.o"
  "CMakeFiles/tests_bo.dir/bo_kde_tpe_test.cc.o.d"
  "CMakeFiles/tests_bo.dir/bo_matrix_gp_test.cc.o"
  "CMakeFiles/tests_bo.dir/bo_matrix_gp_test.cc.o.d"
  "tests_bo"
  "tests_bo.pdb"
  "tests_bo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
