# Empty dependencies file for tests_bo.
# This may be replaced when dependencies are built.
