file(REMOVE_RECURSE
  "CMakeFiles/tests_edge_cases.dir/edge_cases_test.cc.o"
  "CMakeFiles/tests_edge_cases.dir/edge_cases_test.cc.o.d"
  "tests_edge_cases"
  "tests_edge_cases.pdb"
  "tests_edge_cases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
