# Empty compiler generated dependencies file for tests_edge_cases.
# This may be replaced when dependencies are built.
