file(REMOVE_RECURSE
  "CMakeFiles/tests_extensions.dir/extensions_test.cc.o"
  "CMakeFiles/tests_extensions.dir/extensions_test.cc.o.d"
  "tests_extensions"
  "tests_extensions.pdb"
  "tests_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
