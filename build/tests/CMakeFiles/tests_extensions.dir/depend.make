# Empty dependencies file for tests_extensions.
# This may be replaced when dependencies are built.
