file(REMOVE_RECURSE
  "CMakeFiles/tests_grid_median.dir/grid_median_test.cc.o"
  "CMakeFiles/tests_grid_median.dir/grid_median_test.cc.o.d"
  "tests_grid_median"
  "tests_grid_median.pdb"
  "tests_grid_median[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_grid_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
