# Empty dependencies file for tests_grid_median.
# This may be replaced when dependencies are built.
