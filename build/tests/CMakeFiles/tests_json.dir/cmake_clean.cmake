file(REMOVE_RECURSE
  "CMakeFiles/tests_json.dir/export_test.cc.o"
  "CMakeFiles/tests_json.dir/export_test.cc.o.d"
  "CMakeFiles/tests_json.dir/json_test.cc.o"
  "CMakeFiles/tests_json.dir/json_test.cc.o.d"
  "CMakeFiles/tests_json.dir/snapshot_test.cc.o"
  "CMakeFiles/tests_json.dir/snapshot_test.cc.o.d"
  "tests_json"
  "tests_json.pdb"
  "tests_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
