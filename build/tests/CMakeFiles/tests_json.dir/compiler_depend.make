# Empty compiler generated dependencies file for tests_json.
# This may be replaced when dependencies are built.
