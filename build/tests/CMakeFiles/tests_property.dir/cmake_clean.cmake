file(REMOVE_RECURSE
  "CMakeFiles/tests_property.dir/property_test.cc.o"
  "CMakeFiles/tests_property.dir/property_test.cc.o.d"
  "tests_property"
  "tests_property.pdb"
  "tests_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
