file(REMOVE_RECURSE
  "CMakeFiles/tests_registry.dir/registry_test.cc.o"
  "CMakeFiles/tests_registry.dir/registry_test.cc.o.d"
  "tests_registry"
  "tests_registry.pdb"
  "tests_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
