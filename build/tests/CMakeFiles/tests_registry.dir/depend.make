# Empty dependencies file for tests_registry.
# This may be replaced when dependencies are built.
