file(REMOVE_RECURSE
  "CMakeFiles/tests_rung_differential.dir/rung_differential_test.cc.o"
  "CMakeFiles/tests_rung_differential.dir/rung_differential_test.cc.o.d"
  "tests_rung_differential"
  "tests_rung_differential.pdb"
  "tests_rung_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_rung_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
