# Empty dependencies file for tests_rung_differential.
# This may be replaced when dependencies are built.
