file(REMOVE_RECURSE
  "CMakeFiles/tests_runtime.dir/runtime_executor_test.cc.o"
  "CMakeFiles/tests_runtime.dir/runtime_executor_test.cc.o.d"
  "tests_runtime"
  "tests_runtime.pdb"
  "tests_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
