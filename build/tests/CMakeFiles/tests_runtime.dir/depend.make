# Empty dependencies file for tests_runtime.
# This may be replaced when dependencies are built.
