file(REMOVE_RECURSE
  "CMakeFiles/tests_searchspace.dir/searchspace_domain_test.cc.o"
  "CMakeFiles/tests_searchspace.dir/searchspace_domain_test.cc.o.d"
  "CMakeFiles/tests_searchspace.dir/searchspace_space_test.cc.o"
  "CMakeFiles/tests_searchspace.dir/searchspace_space_test.cc.o.d"
  "tests_searchspace"
  "tests_searchspace.pdb"
  "tests_searchspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
