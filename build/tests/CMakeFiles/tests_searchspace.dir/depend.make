# Empty dependencies file for tests_searchspace.
# This may be replaced when dependencies are built.
