file(REMOVE_RECURSE
  "CMakeFiles/tests_service.dir/service_test.cc.o"
  "CMakeFiles/tests_service.dir/service_test.cc.o.d"
  "tests_service"
  "tests_service.pdb"
  "tests_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
