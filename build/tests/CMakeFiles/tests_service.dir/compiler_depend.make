# Empty compiler generated dependencies file for tests_service.
# This may be replaced when dependencies are built.
