file(REMOVE_RECURSE
  "CMakeFiles/tests_surrogate.dir/surrogate_test.cc.o"
  "CMakeFiles/tests_surrogate.dir/surrogate_test.cc.o.d"
  "tests_surrogate"
  "tests_surrogate.pdb"
  "tests_surrogate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
