# Empty compiler generated dependencies file for tests_surrogate.
# This may be replaced when dependencies are built.
