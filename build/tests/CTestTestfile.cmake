# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_searchspace[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_bo[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_surrogate[1]_include.cmake")
include("/root/repo/build/tests/tests_baselines[1]_include.cmake")
include("/root/repo/build/tests/tests_analysis[1]_include.cmake")
include("/root/repo/build/tests/tests_property[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/tests_rung_differential[1]_include.cmake")
include("/root/repo/build/tests/tests_json[1]_include.cmake")
include("/root/repo/build/tests/tests_grid_median[1]_include.cmake")
include("/root/repo/build/tests/tests_extensions[1]_include.cmake")
include("/root/repo/build/tests/tests_service[1]_include.cmake")
include("/root/repo/build/tests/tests_registry[1]_include.cmake")
include("/root/repo/build/tests/tests_runtime[1]_include.cmake")
