file(REMOVE_RECURSE
  "CMakeFiles/hypertune_cli.dir/hypertune_cli.cc.o"
  "CMakeFiles/hypertune_cli.dir/hypertune_cli.cc.o.d"
  "hypertune_cli"
  "hypertune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
