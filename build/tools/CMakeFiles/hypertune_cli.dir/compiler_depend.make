# Empty compiler generated dependencies file for hypertune_cli.
# This may be replaced when dependencies are built.
