// Defining your own surrogate benchmark and plugging model-based sampling
// into ASHA ("ASHA + adaptive selection", the extension the paper's
// conclusion sketches).
//
// Build and run:  ./build/examples/custom_benchmark
#include <iostream>

#include "analysis/trajectory.h"
#include "baselines/bohb.h"
#include "common/table.h"
#include "core/asha.h"
#include "sim/driver.h"
#include "surrogate/benchmark.h"

using namespace hypertune;

int main() {
  // A custom task: tuning a ranker with four hyperparameters. You describe
  // the landscape statistics (floors, difficulty, noise, cost); the library
  // builds a deterministic synthetic task with power-law learning curves.
  BenchmarkSpec spec;
  spec.name = "my_ranker";
  spec.metric_name = "val NDCG loss";
  SearchSpace space;
  space.Add("learning_rate", Domain::Continuous(1e-4, 1.0, Scale::kLog))
      .Add("num_trees", Domain::Integer(50, 2000, Scale::kLog))
      .Add("depth", Domain::Integer(3, 12))
      .Add("subsample", Domain::Continuous(0.4, 1.0));
  spec.space = std::move(space);
  spec.max_resource = 1024;      // boosting rounds
  spec.random_guess_loss = 0.5;
  spec.best_final_loss = 0.21;
  spec.landscape_scale = 0.2;
  spec.difficulty = 1.5;
  spec.eval_noise_std = 0.004;
  spec.cost_per_unit = [](const Configuration& config) {
    return 0.002 * static_cast<double>(config.GetInt("depth"));
  };
  SyntheticBenchmark bench(spec, /*trial_seed=*/11);

  auto run = [&](std::unique_ptr<Scheduler> scheduler, const char* label) {
    DriverOptions options;
    options.num_workers = 16;
    options.time_limit = 400;
    SimulationDriver driver(*scheduler, bench, options);
    const auto result = driver.Run();
    const auto curve =
        TestMetricTrajectory(result, scheduler->trials(), bench);
    std::cout << label << ": final metric "
              << FormatDouble(curve.points().back().second, 4) << " after "
              << scheduler->trials().size() << " configurations\n";
  };

  AshaOptions asha;
  asha.r = 16;
  asha.R = 1024;
  asha.eta = 4;

  // Plain ASHA with random sampling...
  run(std::make_unique<AshaScheduler>(MakeRandomSampler(bench.space()), asha),
      "ASHA (random sampling)");

  // ...and ASHA with the TPE model proposing configurations.
  run(MakeAshaTpe(bench.space(), asha, TpeOptions{}), "ASHA + TPE sampling");
  return 0;
}
