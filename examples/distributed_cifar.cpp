// Distributed tuning scenario: the paper's Section 4.2 workload in
// miniature. Compare ASHA against synchronous SHA and PBT on the small-CNN
// architecture benchmark with 25 workers and a tight wall-clock budget, and
// inspect how the incumbent evolves.
//
// Build and run:  ./build/examples/distributed_cifar
#include <iostream>

#include "analysis/trajectory.h"
#include "baselines/pbt.h"
#include "common/table.h"
#include "core/asha.h"
#include "core/sha.h"
#include "searchspace/spaces.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

using namespace hypertune;

namespace {

Trajectory RunOne(Scheduler& scheduler, SyntheticBenchmark& bench,
                  double minutes, int workers) {
  DriverOptions options;
  options.num_workers = workers;
  options.time_limit = minutes;
  SimulationDriver driver(scheduler, bench, options);
  const auto result = driver.Run();
  std::cout << "  " << scheduler.name() << ": "
            << scheduler.trials().size() << " configurations, "
            << result.jobs_completed << " jobs, utilization "
            << FormatDouble(result.busy_time / (workers * result.end_time), 3)
            << "\n";
  return TestMetricTrajectory(result, scheduler.trials(), bench);
}

}  // namespace

int main() {
  constexpr double kMinutes = 150;
  constexpr int kWorkers = 25;
  std::cout << "Tuning the Table-1 CNN architecture space: " << kWorkers
            << " workers, " << kMinutes << " minutes\n\n";

  auto bench = benchmarks::CifarArch(/*trial_seed=*/7);
  const double r = bench->R() / 256;

  AshaOptions asha_options;
  asha_options.r = r;
  asha_options.R = bench->R();
  asha_options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(bench->space()), asha_options);
  const auto asha_curve = RunOne(asha, *bench, kMinutes, kWorkers);

  ShaOptions sha_options;
  sha_options.n = 256;
  sha_options.r = r;
  sha_options.R = bench->R();
  sha_options.eta = 4;
  sha_options.incumbent_policy = IncumbentPolicy::kByRung;
  SyncShaScheduler sha(MakeRandomSampler(bench->space()), sha_options);
  const auto sha_curve = RunOne(sha, *bench, kMinutes, kWorkers);

  PbtOptions pbt_options;
  pbt_options.population_size = 25;
  pbt_options.step_resource = bench->R() / 30;
  pbt_options.max_resource = bench->R();
  pbt_options.sync_window = 2 * pbt_options.step_resource;
  pbt_options.random_guess_loss = 0.88;
  pbt_options.explore.frozen = spaces::IsSmallCnnArchParam;
  PbtScheduler pbt(bench->space(), pbt_options);
  const auto pbt_curve = RunOne(pbt, *bench, kMinutes, kWorkers);

  std::cout << "\nIncumbent test error over time:\n";
  TextTable table({"minutes", "ASHA", "SHA", "PBT"});
  for (double t = 25; t <= kMinutes; t += 25) {
    table.AddRow({FormatDouble(t, 0), FormatDouble(asha_curve.At(t), 4),
                  FormatDouble(sha_curve.At(t), 4),
                  FormatDouble(pbt_curve.At(t), 4)});
  }
  std::cout << table.ToMarkdown();
  return 0;
}
