// Robustness under cluster failures (Appendix A.1): inject stragglers and
// dropped jobs and watch synchronous SHA stall while ASHA keeps promoting.
//
// Build and run:  ./build/examples/failure_injection
#include <iostream>

#include "common/table.h"
#include "core/asha.h"
#include "core/sha.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

using namespace hypertune;

namespace {

struct Outcome {
  std::size_t full_trainings = 0;  // configurations reaching R
  double first_completion = -1;    // time the first one did
  std::size_t dropped = 0;
};

Outcome Run(bool use_asha, double straggler_std, double drop_probability) {
  auto bench = benchmarks::UnitTime(/*trial_seed=*/5);
  std::unique_ptr<Scheduler> scheduler;
  if (use_asha) {
    AshaOptions options;
    options.r = 1;
    options.R = 256;
    options.eta = 4;
    scheduler = std::make_unique<AshaScheduler>(
        MakeRandomSampler(bench->space()), options);
  } else {
    ShaOptions options;
    options.n = 256;
    options.r = 1;
    options.R = 256;
    options.eta = 4;
    scheduler = std::make_unique<SyncShaScheduler>(
        MakeRandomSampler(bench->space()), options);
  }

  DriverOptions driver_options;
  driver_options.num_workers = 25;
  driver_options.time_limit = 2000;
  driver_options.hazards.straggler_std = straggler_std;
  driver_options.hazards.drop_probability = drop_probability;
  SimulationDriver driver(*scheduler, *bench, driver_options);
  const auto result = driver.Run();

  Outcome outcome;
  outcome.dropped = result.jobs_dropped;
  for (const auto& completion : result.completions) {
    if (!completion.lost && completion.to_resource >= 256) {
      ++outcome.full_trainings;
      if (outcome.first_completion < 0) {
        outcome.first_completion = completion.end_time;
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "Failure injection on the unit-time workload (25 workers, "
               "2000 time units, eta=4, R=256)\n\n";
  TextTable table({"hazards", "method", "configs trained to R",
                   "first completion", "jobs dropped"});
  const struct {
    const char* label;
    double std;
    double drop;
  } scenarios[] = {
      {"none", 0.0, 0.0},
      {"stragglers (std 1.0)", 1.0, 0.0},
      {"drops (p 0.002/unit)", 0.0, 0.002},
      {"both", 1.0, 0.002},
  };
  for (const auto& scenario : scenarios) {
    for (bool use_asha : {true, false}) {
      const auto outcome = Run(use_asha, scenario.std, scenario.drop);
      table.AddRow({scenario.label, use_asha ? "ASHA" : "SHA",
                    std::to_string(outcome.full_trainings),
                    outcome.first_completion < 0
                        ? std::string("never")
                        : FormatDouble(outcome.first_completion, 0),
                    std::to_string(outcome.dropped)});
    }
  }
  std::cout << table.ToMarkdown()
            << "\nASHA degrades gracefully; synchronous rungs amplify every "
               "straggler and lost job.\n";
  return 0;
}
