// The large-scale regime (Section 4.3): 500 workers tune the Table-2 PTB
// LSTM space, comparing ASHA against a Vizier-like GP service. Also shows
// the heavy-tailed perplexity outliers that hurt model-based tuners.
//
// Build and run:  ./build/examples/large_scale_ptb
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/trajectory.h"
#include "baselines/vizier.h"
#include "common/table.h"
#include "core/asha.h"
#include "sim/driver.h"
#include "surrogate/benchmarks.h"

using namespace hypertune;

int main() {
  auto bench = benchmarks::PtbLstm(/*trial_seed=*/3);
  const double time_r = bench->MeanTimeOfR();
  const double horizon = 4.0 * time_r;
  constexpr int kWorkers = 500;

  std::cout << "PTB LSTM, " << kWorkers << " workers, horizon 4 x time(R)\n";

  // Show the heavy tail the paper describes in Section 4.3.
  Rng rng(1);
  std::vector<double> finals;
  for (int i = 0; i < 1000; ++i) {
    finals.push_back(bench->FinalLoss(bench->space().Sample(rng)));
  }
  std::sort(finals.begin(), finals.end());
  std::cout << "sampled final perplexities: median "
            << FormatDouble(finals[500], 1) << ", p90 "
            << FormatDouble(finals[900], 1) << ", max "
            << FormatDouble(finals.back(), 0)
            << "  <- orders-of-magnitude outliers\n\n";

  AshaOptions asha_options;
  asha_options.r = bench->R() / 64;
  asha_options.R = bench->R();
  asha_options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(bench->space()), asha_options);
  DriverOptions driver_options;
  driver_options.num_workers = kWorkers;
  driver_options.time_limit = horizon;
  {
    SimulationDriver driver(asha, *bench, driver_options);
    const auto result = driver.Run();
    const auto curve = TestMetricTrajectory(result, asha.trials(), *bench);
    std::cout << "ASHA:   " << asha.trials().size()
              << " configurations evaluated; perplexity at 1x time(R): "
              << FormatDouble(curve.At(time_r), 1) << ", at 4x: "
              << FormatDouble(curve.At(horizon), 1) << "\n";
  }

  VizierOptions vizier_options;
  vizier_options.R = bench->R();
  vizier_options.loss_cap = 1000;  // the paper's attempted mitigation
  VizierScheduler vizier(bench->space(), vizier_options);
  {
    SimulationDriver driver(vizier, *bench, driver_options);
    const auto result = driver.Run();
    const auto curve = TestMetricTrajectory(result, vizier.trials(), *bench);
    std::cout << "Vizier: " << vizier.trials().size()
              << " configurations evaluated; perplexity at 1x time(R): "
              << FormatDouble(curve.At(time_r), 1) << ", at 4x: "
              << FormatDouble(curve.At(horizon), 1) << "\n";
  }

  std::cout << "\nASHA evaluates orders of magnitude more configurations "
               "than workers and finds a good\nLSTM in about the time to "
               "train one model — the large-scale regime.\n";
  return 0;
}
