// Quickstart: tune a custom objective with ASHA on a simulated worker pool.
//
// This shows the three pieces a user supplies:
//   1. a SearchSpace describing the hyperparameters,
//   2. a JobEnvironment that trains a configuration for a resource slice
//      and reports the validation loss (here: a synthetic objective),
//   3. a Scheduler (ASHA) plus the SimulationDriver that connects them.
//
// Build and run:  ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "core/asha.h"
#include "sim/driver.h"

using namespace hypertune;

namespace {

// A made-up "model": validation loss depends on learning rate and width,
// improves with training, and is noisy. Replace this with real training in
// a production deployment (Loss blocks until the slice finishes).
class ToyTraining final : public JobEnvironment {
 public:
  double Loss(const Configuration& config, Resource resource) override {
    const double lr = config.GetDouble("learning_rate");
    const double width = static_cast<double>(config.GetInt("width"));
    // Best around lr = 1e-2, width = 192.
    const double lr_term = std::pow(std::log10(lr) + 2.0, 2.0) * 0.05;
    const double width_term = std::pow((width - 192.0) / 256.0, 2.0);
    const double floor = 0.08 + lr_term + width_term;
    const double curve = 0.4 * std::pow(resource / 256.0, -0.5);
    return floor + curve - 0.4;
  }

  double Duration(const Configuration& config, Resource from,
                  Resource to) override {
    // Wider networks train slower.
    const double width = static_cast<double>(config.GetInt("width"));
    return (to - from) * (0.5 + width / 256.0);
  }
};

}  // namespace

int main() {
  // 1. The search space.
  SearchSpace space;
  space.Add("learning_rate", Domain::Continuous(1e-4, 1.0, Scale::kLog))
      .Add("width", Domain::Integer(16, 256));

  // 2. ASHA: train each new configuration for 4 epochs first (r), promote
  //    the best 1/eta to 4x the budget, up to R = 256 epochs.
  AshaOptions options;
  options.r = 4;
  options.R = 256;
  options.eta = 4;
  options.seed = 42;
  AshaScheduler asha(MakeRandomSampler(space), options);

  // 3. Run on 8 simulated workers for 5000 virtual time units.
  ToyTraining environment;
  DriverOptions driver_options;
  driver_options.num_workers = 8;
  driver_options.time_limit = 5000;
  SimulationDriver driver(asha, environment, driver_options);
  const DriverResult result = driver.Run();

  std::cout << "jobs completed:        " << result.jobs_completed << "\n"
            << "configurations tried:  " << asha.trials().size() << "\n";
  const auto best = asha.Current();
  if (best) {
    const Trial& trial = asha.trials().Get(best->trial_id);
    std::cout << "best validation loss:  " << best->loss << " (at resource "
              << best->resource << ")\n"
              << "best configuration:    {" << trial.config.ToString()
              << "}\n";
  }
  return 0;
}
