// Running ASHA as a distributed tuning service: workers speak a JSON
// protocol with job leases and heartbeats; crashed workers are detected by
// lease expiry and their jobs reported lost — ASHA shrugs and keeps going.
// Includes a mid-run snapshot/restore, showing crash recovery of the
// service itself.
//
// Build and run:  ./build/examples/tuning_service
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/asha.h"
#include "service/server.h"
#include "service/worker.h"
#include "surrogate/benchmarks.h"

using namespace hypertune;

int main() {
  auto bench = benchmarks::CifarConvnet(/*trial_seed=*/21);
  AshaOptions options;
  options.r = bench->R() / 256;
  options.R = bench->R();
  options.eta = 4;
  AshaScheduler asha(MakeRandomSampler(bench->space()), options);

  TuningServer server(asha, {.lease_timeout = 10});
  std::vector<SimulatedWorker> workers;
  for (std::uint64_t i = 0; i < 16; ++i) {
    workers.emplace_back(i, *bench, /*heartbeat_interval=*/2);
  }

  std::cout << "Phase 1: 16 workers for 60 virtual minutes; workers 13-15 "
               "crash at t=20.\n";
  for (double now = 0; now < 60; now += 0.25) {
    if (now == 20.0) {
      workers[13].Crash();
      workers[14].Crash();
      workers[15].Crash();
    }
    for (auto& worker : workers) {
      if (now >= worker.next_action_time()) worker.OnTick(server, now);
    }
    server.Tick(now);
  }
  const auto stats = server.stats();
  std::cout << "  jobs assigned " << stats.jobs_assigned << ", completed "
            << stats.jobs_completed << ", leases expired (crashes detected) "
            << stats.leases_expired << "\n";

  // Phase 2: the *service* restarts — snapshot, rebuild, restore, continue.
  std::cout << "\nPhase 2: service snapshot -> restart -> restore, then 60 "
               "more minutes on 13 healthy workers.\n";
  const std::string snapshot_text = asha.Snapshot().Dump();
  AshaScheduler restored(MakeRandomSampler(bench->space()), options);
  restored.Restore(Json::Parse(snapshot_text));
  TuningServer server2(restored, {.lease_timeout = 10});
  std::vector<SimulatedWorker> workers2;
  for (std::uint64_t i = 0; i < 13; ++i) {
    workers2.emplace_back(i, *bench, 2);
  }
  for (double now = 60; now < 120; now += 0.25) {
    for (auto& worker : workers2) {
      if (now >= worker.next_action_time()) worker.OnTick(server2, now);
    }
    server2.Tick(now);
  }

  std::cout << "  total configurations: " << restored.trials().size() << "\n";
  if (const auto best = server2.Current()) {
    std::cout << "  best validation loss " << FormatDouble(best->loss, 4)
              << " at resource " << FormatDouble(best->resource, 0) << "\n  {"
              << restored.trials().Get(best->trial_id).config.ToString()
              << "}\n";
  }
  std::cout << "\nLost work was bounded to the crashed workers' in-flight "
               "jobs; everything else\nsurvived the service restart via the "
               "JSON snapshot.\n";
  return 0;
}
