#include "analysis/aggregate.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

std::vector<double> UniformGrid(double hi, std::size_t n) {
  HT_CHECK(hi > 0 && n > 0);
  std::vector<double> grid(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid[i] = hi * static_cast<double>(i + 1) / static_cast<double>(n);
  }
  return grid;
}

AggregateSeries Aggregate(const std::vector<Trajectory>& trajectories,
                          std::vector<double> grid) {
  AggregateSeries series;
  series.times = std::move(grid);
  const auto n = series.times.size();
  series.mean.resize(n);
  series.q25.resize(n);
  series.q75.resize(n);
  series.min.resize(n);
  series.max.resize(n);
  series.count.resize(n);

  std::vector<double> values;
  for (std::size_t i = 0; i < n; ++i) {
    values.clear();
    for (const auto& trajectory : trajectories) {
      const double v = trajectory.At(series.times[i]);
      if (!std::isnan(v)) values.push_back(v);
    }
    series.count[i] = values.size();
    if (values.empty()) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      series.mean[i] = series.q25[i] = series.q75[i] = series.min[i] =
          series.max[i] = nan;
      continue;
    }
    series.mean[i] = Mean(values);
    series.q25[i] = Quantile(values, 0.25);
    series.q75[i] = Quantile(values, 0.75);
    series.min[i] = Quantile(values, 0.0);
    series.max[i] = Quantile(values, 1.0);
  }
  return series;
}

double MeanTimeToReach(const std::vector<Trajectory>& trajectories,
                       double target) {
  std::vector<double> times;
  for (const auto& trajectory : trajectories) {
    const double t = trajectory.TimeToReach(target);
    if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
    times.push_back(t);
  }
  return Mean(times);
}

}  // namespace hypertune
