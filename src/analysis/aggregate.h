// Aggregation of per-trial trajectories onto a common time grid — the
// mean / quartile / min-max bands the paper's figures draw.
#pragma once

#include <string>
#include <vector>

#include "analysis/trajectory.h"

namespace hypertune {

struct AggregateSeries {
  std::vector<double> times;
  std::vector<double> mean;
  std::vector<double> q25;
  std::vector<double> q75;
  std::vector<double> min;
  std::vector<double> max;
  /// How many trials had a defined value at each grid point.
  std::vector<std::size_t> count;
};

/// Uniform grid of `n` points over (0, hi] (excludes 0 where trajectories
/// are undefined).
std::vector<double> UniformGrid(double hi, std::size_t n);

/// Evaluates every trajectory at each grid time; NaN values (before a
/// trial's first recommendation) are excluded from the statistics.
AggregateSeries Aggregate(const std::vector<Trajectory>& trajectories,
                          std::vector<double> grid);

/// Mean over trials of TimeToReach(target); NaN when any trial never
/// reaches it (the paper's "time until X" summaries).
double MeanTimeToReach(const std::vector<Trajectory>& trajectories,
                       double target);

}  // namespace hypertune
