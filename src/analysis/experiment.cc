#include "analysis/experiment.h"

#include <chrono>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

MethodResult RunExperiment(const std::string& method_name,
                           const BenchmarkFactory& make_benchmark,
                           const SchedulerFactory& make_scheduler,
                           const ExperimentOptions& options) {
  HT_CHECK(options.num_trials > 0);
  MethodResult result;
  result.method = method_name;

  for (int trial = 0; trial < options.num_trials; ++trial) {
    const std::uint64_t seed =
        options.base_seed + static_cast<std::uint64_t>(trial) * 7919;
    auto benchmark = make_benchmark(seed);
    auto scheduler = make_scheduler(*benchmark, seed);

    DriverOptions driver_options;
    driver_options.num_workers = options.num_workers;
    driver_options.time_limit = options.time_limit;
    driver_options.hazards = options.hazards;
    driver_options.seed = seed ^ 0x5eedULL;
    if (trial == 0 && options.telemetry != nullptr) {
      driver_options.telemetry = options.telemetry;
      scheduler->SetTelemetry(options.telemetry);
    }

    SimulationDriver driver(*scheduler, *benchmark, driver_options);
    const auto wall_start = std::chrono::steady_clock::now();
    const DriverResult run = driver.Run();
    result.mean_wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const SchedulerCost cost = scheduler->Cost();
    result.mean_model_fit_seconds += cost.model_fit_seconds;
    result.mean_model_full_fits += static_cast<double>(cost.model_full_fits);
    result.mean_model_incremental_fits +=
        static_cast<double>(cost.model_incremental_fits);

    result.trajectories.push_back(
        TestMetricTrajectory(run, scheduler->trials(), *benchmark));
    result.mean_trials_evaluated +=
        static_cast<double>(scheduler->trials().size());
    result.mean_jobs_completed += static_cast<double>(run.jobs_completed);
    result.mean_jobs_dropped += static_cast<double>(run.jobs_dropped);
    if (run.end_time > 0) {
      result.mean_worker_utilization +=
          run.busy_time /
          (static_cast<double>(options.num_workers) * run.end_time);
    }
  }

  const auto n = static_cast<double>(options.num_trials);
  result.mean_trials_evaluated /= n;
  result.mean_jobs_completed /= n;
  result.mean_jobs_dropped /= n;
  result.mean_worker_utilization /= n;
  if (result.mean_wall_seconds > 0) {
    result.model_fit_share =
        result.mean_model_fit_seconds / result.mean_wall_seconds;
  }
  result.mean_wall_seconds /= n;
  result.mean_model_fit_seconds /= n;
  result.mean_model_full_fits /= n;
  result.mean_model_incremental_fits /= n;

  result.series = Aggregate(result.trajectories,
                            UniformGrid(options.time_limit, options.grid_points));
  return result;
}

}  // namespace hypertune
