// The experiment runner behind every bench binary: runs a tuner on a
// surrogate benchmark for several trials, returns aggregated trajectories
// plus bookkeeping statistics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "core/scheduler.h"
#include "sim/driver.h"
#include "surrogate/benchmark.h"

namespace hypertune {

class Telemetry;

/// Builds the benchmark instance for one experiment trial.
using BenchmarkFactory =
    std::function<std::unique_ptr<SyntheticBenchmark>(std::uint64_t trial_seed)>;

/// Builds the tuner for one trial; `benchmark` supplies the space and R.
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(
    const SyntheticBenchmark& benchmark, std::uint64_t trial_seed)>;

struct ExperimentOptions {
  int num_trials = 5;
  int num_workers = 1;
  double time_limit = 1000;
  HazardOptions hazards;
  /// Time-grid resolution of the aggregated series.
  std::size_t grid_points = 24;
  std::uint64_t base_seed = 1000;
  /// Optional observability sink (not owned). The *first* repetition of
  /// each method runs fully instrumented — scheduler, driver, and worker
  /// spans land in the sink's tracer — so one seeded run stays readable in
  /// a trace viewer; later repetitions run dark (metrics from them would be
  /// indistinguishable anyway and overlapping traces are useless).
  Telemetry* telemetry = nullptr;
};

struct MethodResult {
  std::string method;
  AggregateSeries series;
  std::vector<Trajectory> trajectories;
  /// Per-trial bookkeeping, averaged.
  double mean_trials_evaluated = 0;
  double mean_jobs_completed = 0;
  double mean_jobs_dropped = 0;
  double mean_worker_utilization = 0;  // busy time / (workers * end time)
  /// Real (not simulated) wall-clock per trial, and the slice of it the
  /// tuner spent fitting its surrogate model (Scheduler::Cost) — the
  /// tuner-overhead share baseline benches report.
  double mean_wall_seconds = 0;
  double mean_model_fit_seconds = 0;
  double mean_model_full_fits = 0;
  double mean_model_incremental_fits = 0;
  /// total model-fit seconds / total wall seconds across trials (0 when the
  /// tuner fits no model).
  double model_fit_share = 0;
};

/// Runs `num_trials` independent tuning runs and aggregates them.
MethodResult RunExperiment(const std::string& method_name,
                           const BenchmarkFactory& make_benchmark,
                           const SchedulerFactory& make_scheduler,
                           const ExperimentOptions& options);

}  // namespace hypertune
