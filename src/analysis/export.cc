#include "analysis/export.h"

#include <cstdio>

#include "common/check.h"
#include "common/table.h"

namespace hypertune {

namespace {

Json SeriesToJson(const std::vector<double>& xs) {
  Json array = JsonArray{};
  for (double x : xs) array.PushBack(Json(x));
  return array;
}

/// Round-trippable double cell ("%.17g", same fidelity as the JSON dumper —
/// FormatDouble's fixed precision would truncate timestamps).
std::string NumberCell(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

Json ToJson(const RunRecord& record) {
  Json entry = JsonObject{};
  entry.Set("time", Json(record.end_time));
  entry.Set("trial", Json(record.trial_id));
  entry.Set("from", Json(record.from_resource));
  entry.Set("to", Json(record.to_resource));
  entry.Set("loss", Json(record.loss));
  entry.Set("rung", Json(record.rung));
  entry.Set("bracket", Json(record.bracket));
  entry.Set("dropped", Json(record.lost));
  entry.Set("start", Json(record.start_time));
  entry.Set("queue_wait", Json(record.queue_wait));
  entry.Set("worker", Json(record.worker));
  return entry;
}

RunRecord RunRecordFromJson(const Json& json) {
  RunRecord record;
  record.end_time = json.at("time").AsDouble();
  record.trial_id = json.at("trial").AsInt();
  record.from_resource = json.at("from").AsDouble();
  record.to_resource = json.at("to").AsDouble();
  record.loss = json.at("loss").AsDouble();
  record.rung = static_cast<int>(json.at("rung").AsInt());
  record.bracket = static_cast<int>(json.at("bracket").AsInt());
  record.lost = json.at("dropped").AsBool();
  // Pre-unification documents lack the lifecycle-era fields; default them.
  if (json.Has("start")) record.start_time = json.at("start").AsDouble();
  if (json.Has("queue_wait")) {
    record.queue_wait = json.at("queue_wait").AsDouble();
  }
  if (json.Has("worker")) {
    record.worker = static_cast<int>(json.at("worker").AsInt());
  }
  return record;
}

std::string RunRecordsCsv(const std::vector<RunRecord>& records) {
  TextTable table({"time", "trial", "from", "to", "loss", "rung", "bracket",
                   "dropped", "start", "queue_wait", "worker"});
  for (const auto& record : records) {
    table.AddRow({NumberCell(record.end_time), std::to_string(record.trial_id),
                  NumberCell(record.from_resource),
                  NumberCell(record.to_resource), NumberCell(record.loss),
                  std::to_string(record.rung), std::to_string(record.bracket),
                  record.lost ? "1" : "0", NumberCell(record.start_time),
                  NumberCell(record.queue_wait),
                  std::to_string(record.worker)});
  }
  return table.ToCsv();
}

Json ToJson(const DriverResult& result) {
  Json json = JsonObject{};
  Json completions = JsonArray{};
  for (const auto& record : result.completions) {
    completions.PushBack(ToJson(record));
  }
  json.Set("completions", std::move(completions));

  Json recommendations = JsonArray{};
  for (const auto& rec : result.recommendations) {
    Json entry = JsonObject{};
    entry.Set("time", Json(rec.time));
    entry.Set("trial", Json(rec.trial_id));
    entry.Set("loss", Json(rec.loss));
    entry.Set("resource", Json(rec.resource));
    recommendations.PushBack(std::move(entry));
  }
  json.Set("recommendations", std::move(recommendations));
  json.Set("end_time", Json(result.end_time));
  json.Set("busy_time", Json(result.busy_time));
  json.Set("jobs_completed", Json(static_cast<std::int64_t>(result.jobs_completed)));
  json.Set("jobs_dropped", Json(static_cast<std::int64_t>(result.jobs_dropped)));
  return json;
}

DriverResult DriverResultFromJson(const Json& json) {
  DriverResult result;
  for (const auto& entry : json.at("completions").AsArray()) {
    result.completions.push_back(RunRecordFromJson(entry));
  }
  for (const auto& entry : json.at("recommendations").AsArray()) {
    RecommendationPoint rec;
    rec.time = entry.at("time").AsDouble();
    rec.trial_id = entry.at("trial").AsInt();
    rec.loss = entry.at("loss").AsDouble();
    rec.resource = entry.at("resource").AsDouble();
    result.recommendations.push_back(rec);
  }
  result.end_time = json.at("end_time").AsDouble();
  result.busy_time = json.at("busy_time").AsDouble();
  result.jobs_completed =
      static_cast<std::size_t>(json.at("jobs_completed").AsInt());
  result.jobs_dropped =
      static_cast<std::size_t>(json.at("jobs_dropped").AsInt());
  return result;
}

Json ToJson(const MethodResult& result) {
  Json json = JsonObject{};
  json.Set("method", Json(result.method));
  Json series = JsonObject{};
  series.Set("times", SeriesToJson(result.series.times));
  series.Set("mean", SeriesToJson(result.series.mean));
  series.Set("q25", SeriesToJson(result.series.q25));
  series.Set("q75", SeriesToJson(result.series.q75));
  series.Set("min", SeriesToJson(result.series.min));
  series.Set("max", SeriesToJson(result.series.max));
  json.Set("series", std::move(series));
  json.Set("mean_trials_evaluated", Json(result.mean_trials_evaluated));
  json.Set("mean_jobs_completed", Json(result.mean_jobs_completed));
  json.Set("mean_jobs_dropped", Json(result.mean_jobs_dropped));
  json.Set("mean_worker_utilization", Json(result.mean_worker_utilization));
  return json;
}

bool ExportExperiment(const std::string& path, const std::string& name,
                      const std::vector<MethodResult>& methods) {
  Json document = JsonObject{};
  document.Set("name", Json(name));
  Json array = JsonArray{};
  for (const auto& method : methods) array.PushBack(ToJson(method));
  document.Set("methods", std::move(array));
  return WriteFile(path, document.Dump(2) + "\n");
}

}  // namespace hypertune
