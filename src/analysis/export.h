// JSON/CSV export and import of tuning artifacts: configurations, trials,
// run records, driver runs, and aggregated experiment results. The "ML
// glue" layer — results can be archived, diffed, and re-loaded for offline
// analysis without rerunning simulations.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "common/json.h"
#include "core/trial_json.h"
#include "lifecycle/run_record.h"
#include "searchspace/config_json.h"
#include "sim/driver.h"

namespace hypertune {

// Configuration / Trial / TrialBank JSON conversions come from
// searchspace/config_json.h and core/trial_json.h (re-exported here for
// convenience).

/// RunRecord -> JSON. Keys kept compatible with the legacy per-backend
/// record exports: "time" is the record's end_time and "dropped" its lost
/// flag; the lifecycle-era fields (start, queue_wait, worker) ride along
/// as additional keys.
Json ToJson(const RunRecord& record);
/// Inverse of ToJson(RunRecord). The lifecycle-era keys are optional so
/// documents written before the unified record still load.
RunRecord RunRecordFromJson(const Json& json);

/// RunRecords -> CSV. The first eight columns
/// (time,trial,from,to,loss,rung,bracket,dropped) match the legacy
/// completion-record layout so existing notebooks keep parsing; the
/// lifecycle-era columns (start,queue_wait,worker) are appended after.
std::string RunRecordsCsv(const std::vector<RunRecord>& records);

/// Driver run -> JSON (completions + recommendation history + totals).
Json ToJson(const DriverResult& result);
DriverResult DriverResultFromJson(const Json& json);

/// Aggregated method result -> JSON (series arrays + bookkeeping).
Json ToJson(const MethodResult& result);

/// Writes an experiment document {"name":..., "methods":[...]} to `path`
/// (pretty-printed). Returns false on I/O failure.
bool ExportExperiment(const std::string& path, const std::string& name,
                      const std::vector<MethodResult>& methods);

}  // namespace hypertune
