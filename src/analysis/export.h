// JSON export/import of tuning artifacts: configurations, trials, driver
// runs, and aggregated experiment results. The "ML glue" layer — results
// can be archived, diffed, and re-loaded for offline analysis without
// rerunning simulations.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "common/json.h"
#include "core/trial_json.h"
#include "searchspace/config_json.h"
#include "sim/driver.h"

namespace hypertune {

// Configuration / Trial / TrialBank JSON conversions come from
// searchspace/config_json.h and core/trial_json.h (re-exported here for
// convenience).

/// Driver run -> JSON (completions + recommendation history + totals).
Json ToJson(const DriverResult& result);
DriverResult DriverResultFromJson(const Json& json);

/// Aggregated method result -> JSON (series arrays + bookkeeping).
Json ToJson(const MethodResult& result);

/// Writes an experiment document {"name":..., "methods":[...]} to `path`
/// (pretty-printed). Returns false on I/O failure.
bool ExportExperiment(const std::string& path, const std::string& name,
                      const std::vector<MethodResult>& methods);

}  // namespace hypertune
