#include "analysis/report.h"

#include <cmath>

#include "common/check.h"

namespace hypertune {

std::string FormatMetric(double value, int precision) {
  if (std::isnan(value)) return "-";
  return FormatDouble(value, precision);
}

TextTable SeriesTable(const std::vector<MethodResult>& methods,
                      const std::string& time_label,
                      const std::string& metric_label, int precision) {
  HT_CHECK(!methods.empty());
  std::vector<std::string> header{time_label};
  for (const auto& method : methods) {
    header.push_back(method.method + " (" + metric_label + ")");
  }
  TextTable table(std::move(header));
  const auto& times = methods.front().series.times;
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<std::string> row{FormatDouble(times[i], 1)};
    for (const auto& method : methods) {
      HT_CHECK(method.series.times.size() == times.size());
      row.push_back(FormatMetric(method.series.mean[i], precision));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

TextTable SummaryTable(const std::vector<MethodResult>& methods,
                       const std::string& metric_label, int precision) {
  TextTable table({"method", "final " + metric_label, "min", "max",
                   "configs evaluated", "jobs completed", "utilization",
                   "model fits (full+inc)", "tuner overhead"});
  for (const auto& method : methods) {
    const auto& s = method.series;
    HT_CHECK(!s.times.empty());
    const auto last = s.times.size() - 1;
    // Tuner overhead: the share of real bench wall-clock this method spent
    // fitting its surrogate model (GP/KDE); "-" for model-free tuners.
    const bool has_model =
        method.mean_model_full_fits + method.mean_model_incremental_fits > 0;
    table.AddRow({method.method, FormatMetric(s.mean[last], precision),
                  FormatMetric(s.min[last], precision),
                  FormatMetric(s.max[last], precision),
                  FormatDouble(method.mean_trials_evaluated, 1),
                  FormatDouble(method.mean_jobs_completed, 1),
                  FormatDouble(method.mean_worker_utilization, 3),
                  has_model
                      ? FormatDouble(method.mean_model_full_fits, 1) + "+" +
                            FormatDouble(method.mean_model_incremental_fits, 1)
                      : "-",
                  has_model
                      ? FormatDouble(method.model_fit_share * 100.0, 1) + "%"
                      : "-"});
  }
  return table;
}

TextTable TimeToTargetTable(const std::vector<MethodResult>& methods,
                            double target, const std::string& time_label,
                            int precision) {
  TextTable table({"method", "mean " + time_label + " to reach " +
                                 FormatDouble(target, 4)});
  for (const auto& method : methods) {
    const double t = MeanTimeToReach(method.trajectories, target);
    table.AddRow({method.method,
                  std::isnan(t) ? std::string("never") :
                                  FormatDouble(t, precision)});
  }
  return table;
}

}  // namespace hypertune
