// Rendering of experiment results as the tables the bench binaries print.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "common/table.h"

namespace hypertune {

/// One row per grid time, one column per method (mean metric); "-" where a
/// method had no recommendation yet.
TextTable SeriesTable(const std::vector<MethodResult>& methods,
                      const std::string& time_label,
                      const std::string& metric_label, int precision = 4);

/// Mean with [min, max] band per method at the final grid point, plus
/// bookkeeping columns — the "who wins" summary for each figure.
TextTable SummaryTable(const std::vector<MethodResult>& methods,
                       const std::string& metric_label, int precision = 4);

/// Time each method first reaches `target` (mean over trials); "never" when
/// some trial misses it.
TextTable TimeToTargetTable(const std::vector<MethodResult>& methods,
                            double target, const std::string& time_label,
                            int precision = 1);

/// Renders NaN-safe fixed-precision numbers ("-" for NaN).
std::string FormatMetric(double value, int precision);

}  // namespace hypertune
