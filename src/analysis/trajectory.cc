#include "analysis/trajectory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hypertune {

void Trajectory::Add(double time, double metric) {
  HT_CHECK_MSG(points_.empty() || time >= points_.back().first,
               "trajectory points must be time-ordered");
  points_.emplace_back(time, metric);
}

double Trajectory::At(double t) const {
  double value = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [time, metric] : points_) {
    if (time > t) break;
    value = metric;
  }
  return value;
}

double Trajectory::TimeToReach(double target) const {
  for (const auto& [time, metric] : points_) {
    if (metric <= target) return time;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

Trajectory TestMetricTrajectory(const DriverResult& result,
                                const TrialBank& trials,
                                const SyntheticBenchmark& benchmark) {
  Trajectory trajectory;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& rec : result.recommendations) {
    const Trial& trial = trials.Get(rec.trial_id);
    const double metric = benchmark.TestMetric(trial.config, rec.resource);
    // The incumbent can switch to a config whose *test* metric is worse
    // (validation noise); keep the running best to match "best found so
    // far" reporting.
    best = std::min(best, metric);
    trajectory.Add(rec.time, best);
  }
  return trajectory;
}

Trajectory ValidationLossTrajectory(const DriverResult& result) {
  Trajectory trajectory;
  for (const auto& rec : result.recommendations) {
    trajectory.Add(rec.time, rec.loss);
  }
  return trajectory;
}

}  // namespace hypertune
