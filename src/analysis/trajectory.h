// Best-metric-so-far trajectories: the quantity every figure in the paper
// plots (test error / perplexity of the incumbent configuration vs time).
#pragma once

#include <vector>

#include "core/trial.h"
#include "sim/driver.h"
#include "surrogate/benchmark.h"

namespace hypertune {

/// A right-continuous step function of metric over time.
class Trajectory {
 public:
  /// Points must be added in non-decreasing time order.
  void Add(double time, double metric);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Value of the last point with time <= t; NaN before the first point.
  double At(double t) const;

  /// First time the trajectory reaches `target` or below; NaN if never.
  double TimeToReach(double target) const;

  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;  // (time, metric)
};

/// Maps a driver run's recommendation history to the *test* metric of the
/// recommended configuration at its recommended resource — the offline
/// evaluation step of Appendix A.2.
Trajectory TestMetricTrajectory(const DriverResult& result,
                                const TrialBank& trials,
                                const SyntheticBenchmark& benchmark);

/// Same, but with the tuner-visible validation loss (used for diagnostics).
Trajectory ValidationLossTrajectory(const DriverResult& result);

}  // namespace hypertune
