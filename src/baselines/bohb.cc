#include "baselines/bohb.h"

#include "core/asha.h"

namespace hypertune {

std::unique_ptr<SyncShaScheduler> MakeBohb(SearchSpace space,
                                           BohbOptions options) {
  auto sampler = std::make_shared<TpeSampler>(std::move(space), options.tpe);
  options.sha.display_name = "BOHB";
  return std::make_unique<SyncShaScheduler>(std::move(sampler), options.sha);
}

std::unique_ptr<AshaScheduler> MakeAshaTpe(SearchSpace space, AshaOptions asha,
                                           TpeOptions tpe) {
  auto sampler = std::make_shared<TpeSampler>(std::move(space), tpe);
  asha.display_name = "ASHA+TPE";
  return std::make_unique<AshaScheduler>(std::move(sampler), asha);
}

}  // namespace hypertune
