// BOHB (Falkner et al. 2018) = synchronous SHA promotions + TPE-style
// model-based sampling. As the paper notes (Section 4.1), BOHB "uses SHA to
// perform early-stopping and differs only in how configurations are
// sampled", so it composes directly from SyncShaScheduler and TpeSampler.
// It inherits synchronous SHA's straggler/drop sensitivity (Appendix A.1).
#pragma once

#include <memory>

#include "bo/tpe.h"
#include "core/asha.h"
#include "core/sha.h"

namespace hypertune {

struct BohbOptions {
  ShaOptions sha;   // display_name is overridden to "BOHB"
  TpeOptions tpe;
};

/// Builds a BOHB tuner over `space`.
std::unique_ptr<SyncShaScheduler> MakeBohb(SearchSpace space,
                                           BohbOptions options);

/// The "ASHA + adaptive sampling" extension sketched in the paper's
/// conclusion: ASHA promotions with the same TPE sampler.
std::unique_ptr<AshaScheduler> MakeAshaTpe(SearchSpace space,
                                           AshaOptions asha, TpeOptions tpe);

}  // namespace hypertune
