#include "baselines/fabolas.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

FabolasScheduler::FabolasScheduler(SearchSpace space, FabolasOptions options)
    : space_(std::move(space)),
      options_(options),
      bank_(std::make_shared<TrialBank>()),
      rng_(options.seed),
      gp_(options.gp) {
  HT_CHECK(options_.R > 0);
  HT_CHECK(!options_.fidelities.empty());
  HT_CHECK(options_.fidelities.size() == options_.fidelity_repeats.size());
  HT_CHECK(std::is_sorted(options_.fidelities.begin(),
                          options_.fidelities.end()));
  HT_CHECK(options_.fidelities.back() == 1.0);
  for (double f : options_.fidelities) HT_CHECK(f > 0 && f <= 1.0);
  for (int reps : options_.fidelity_repeats) HT_CHECK(reps > 0);
}

std::vector<double> FabolasScheduler::Augment(const std::vector<double>& x,
                                              double fidelity) const {
  std::vector<double> augmented = x;
  const double f_min = options_.fidelities.front();
  // log-scale fidelity to [0,1]: cheapest -> 0, full data -> 1.
  augmented.push_back(std::log(fidelity / f_min) / std::log(1.0 / f_min));
  return augmented;
}

double FabolasScheduler::NextFidelity() {
  int total = 0;
  for (int reps : options_.fidelity_repeats) total += reps;
  const auto pos = static_cast<int>(schedule_pos_++ % static_cast<std::size_t>(total));
  int acc = 0;
  for (std::size_t i = 0; i < options_.fidelities.size(); ++i) {
    acc += options_.fidelity_repeats[i];
    if (pos < acc) return options_.fidelities[i];
  }
  return 1.0;
}

bool FabolasScheduler::RefitIfStale() {
  if (observed_y_.size() < options_.num_initial_random) return false;
  if (fit_valid_ &&
      observed_y_.size() - completions_at_fit_ < options_.refit_every) {
    return false;
  }
  std::vector<std::vector<double>> x = observed_x_;
  std::vector<double> y = observed_y_;
  if (x.size() > options_.max_gp_points) {
    // Keep the best and the most recent halves.
    const auto order = ArgsortAscending(y);
    std::vector<std::size_t> keep;
    const std::size_t half = options_.max_gp_points / 2;
    keep.assign(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(half));
    for (std::size_t i = y.size(); i-- > 0 && keep.size() < options_.max_gp_points;) {
      if (std::find(keep.begin(), keep.end(), i) == keep.end()) keep.push_back(i);
    }
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i : keep) {
      xs.push_back(x[i]);
      ys.push_back(y[i]);
    }
    x = std::move(xs);
    y = std::move(ys);
  }
  gp_.Fit(std::move(x), std::move(y));
  completions_at_fit_ = observed_y_.size();
  fit_valid_ = true;
  return true;
}

std::optional<Job> FabolasScheduler::GetJob() {
  if (RefitIfStale()) UpdateIncumbent();
  const std::size_t d = space_.NumParams();
  std::vector<double> point(d);
  if (!fit_valid_) {
    for (auto& u : point) u = rng_.Uniform();
  } else {
    // EI on the predicted full-data loss; the incumbent caches the best
    // predicted value under the current fit (recomputing it per suggestion
    // would rescan every evaluated configuration).
    const double best_predicted =
        incumbent_ ? incumbent_->loss
                   : std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> candidates(
        options_.candidates_per_suggest, std::vector<double>(d));
    std::vector<std::vector<double>> augmented;
    augmented.reserve(candidates.size());
    for (auto& candidate : candidates) {
      for (auto& u : candidate) u = rng_.Uniform();
      augmented.push_back(Augment(candidate, 1.0));
    }
    const auto scores =
        ScoreEiBatch(gp_, augmented, best_predicted, options_.num_threads);
    point = std::move(candidates[ArgMaxScore(scores)]);
  }

  const double fidelity = fit_valid_ ? NextFidelity() : options_.fidelities[0];
  Configuration config = space_.FromUnitVector(point);
  const TrialId id = bank_->Create(std::move(config), /*bracket=*/0);
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  evaluated_configs_.emplace_back(id, space_.ToUnitVector(trial.config));

  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;  // subset training is always a full retrain
  job.to_resource = fidelity * options_.R;
  return job;
}

void FabolasScheduler::UpdateIncumbent() {
  if (!fit_valid_ || evaluated_configs_.empty()) return;
  // One batched prediction over every evaluated configuration instead of
  // |configs| scalar solves.
  std::vector<std::vector<double>> augmented;
  augmented.reserve(evaluated_configs_.size());
  for (const auto& [id, x] : evaluated_configs_) {
    augmented.push_back(Augment(x, 1.0));
  }
  const auto predictions = gp_.PredictBatch(augmented);
  double best = std::numeric_limits<double>::infinity();
  TrialId best_id = -1;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i].mean < best) {
      best = predictions[i].mean;
      best_id = evaluated_configs_[i].first;
    }
  }
  if (best_id >= 0) incumbent_ = Recommendation{best_id, best, options_.R};
}

void FabolasScheduler::ReportResult(const Job& job, double loss) {
  Trial& trial = bank_->Get(job.trial_id);
  trial.status = TrialStatus::kCompleted;
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);

  const double fidelity = job.to_resource / options_.R;
  observed_x_.push_back(
      Augment(space_.ToUnitVector(trial.config), fidelity));
  observed_y_.push_back(loss);

  // Re-ranking every evaluated configuration under the GP is O(|configs| *
  // n^2); do it only when the model actually changed.
  if (RefitIfStale()) UpdateIncumbent();
  // Before the model is trusted, recommend the best cheap observation.
  if (!incumbent_ || !fit_valid_) {
    if (!incumbent_ || loss < incumbent_->loss) {
      incumbent_ = Recommendation{job.trial_id, loss, job.to_resource};
    }
  }
}

void FabolasScheduler::ReportLost(const Job& job) {
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
  std::erase_if(evaluated_configs_,
                [&](const auto& kv) { return kv.first == job.trial_id; });
}

std::optional<Recommendation> FabolasScheduler::Current() const {
  return incumbent_;
}

}  // namespace hypertune
