// A Fabolas-like multi-fidelity Bayesian optimizer (Klein et al. 2017).
//
// Substitution note (DESIGN.md §2): Fabolas proper couples a GP over
// (configuration, dataset fraction) with an information-theoretic
// acquisition. This implementation keeps the same information structure —
// one joint GP over [0,1]^d x fidelity learns how cheap subset evaluations
// predict full-data performance — and replaces the entropy-search
// acquisition with EI on the *predicted full-data loss*, paired with a
// cheap-heavy fidelity schedule (most evaluations at small subsets, as
// Fabolas' acquisitions select in practice). The incumbent is the evaluated
// configuration with the lowest predicted full-data loss, matching Klein et
// al.'s offline evaluation protocol (Appendix A.2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bo/acquisition.h"
#include "bo/gp.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "searchspace/space.h"

namespace hypertune {

struct FabolasOptions {
  double R = 4096;
  /// Fidelities as fractions of R, ascending; the schedule cycles through
  /// them with the given repetition counts (mostly-cheap).
  std::vector<double> fidelities = {1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0};
  std::vector<int> fidelity_repeats = {6, 3, 2, 1};
  /// Random designs (at the cheapest fidelity) before trusting the model.
  std::size_t num_initial_random = 10;
  std::size_t candidates_per_suggest = 128;
  std::size_t refit_every = 10;
  std::size_t max_gp_points = 200;
  /// Threads for EI scoring over the candidate batch; 1 runs inline.
  /// Scores are bit-identical at any setting, so seeded decisions never
  /// depend on it.
  int num_threads = 1;
  GpOptions gp;
  std::uint64_t seed = 1;
};

class FabolasScheduler final : public Scheduler {
 public:
  FabolasScheduler(SearchSpace space, FabolasOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override { return false; }
  /// The evaluated configuration with the lowest *predicted* full-data loss.
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Fabolas"; }
  /// Forwards the sink to the GP (bo.fit_full / bo.fit_rank1 counters and
  /// the bo.fit_seconds histogram).
  void SetTelemetry(Telemetry* telemetry) override {
    gp_.SetTelemetry(telemetry);
  }
  SchedulerCost Cost() const override {
    const GpFitStats& stats = gp_.fit_stats();
    return {stats.full_fits, stats.rank1_updates, stats.fit_seconds};
  }

 private:
  /// Unit point augmented with the fidelity coordinate (log-scaled to [0,1]).
  std::vector<double> Augment(const std::vector<double>& x,
                              double fidelity) const;
  double NextFidelity();
  /// Returns true when the GP was actually refit.
  bool RefitIfStale();
  void UpdateIncumbent();

  SearchSpace space_;
  FabolasOptions options_;
  std::shared_ptr<TrialBank> bank_;
  Rng rng_;

  std::vector<std::vector<double>> observed_x_;  // augmented points
  std::vector<double> observed_y_;
  /// Unique evaluated configurations (unit points + their trial ids).
  std::vector<std::pair<TrialId, std::vector<double>>> evaluated_configs_;
  GaussianProcess gp_;
  std::size_t completions_at_fit_ = 0;
  bool fit_valid_ = false;
  std::size_t schedule_pos_ = 0;
  std::optional<Recommendation> incumbent_;
};

}  // namespace hypertune
