#include "baselines/lc_stop.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hypertune {

LcStopScheduler::LcStopScheduler(std::shared_ptr<ConfigSampler> sampler,
                                 LcStopOptions options)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(std::make_shared<TrialBank>()),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  HT_CHECK(options_.R > 0);
  HT_CHECK(options_.step_resource > 0 && options_.step_resource <= options_.R);
  HT_CHECK(options_.min_observations >= 3);
  HT_CHECK(options_.margin >= 0);
}

std::optional<Job> LcStopScheduler::GetJob() {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveTrial& state = active_[i];
    if (state.running || state.done) continue;
    Trial& trial = bank_->Get(state.id);
    Job job;
    job.trial_id = state.id;
    job.config = trial.config;
    job.from_resource = trial.resource_trained;
    job.to_resource =
        std::min(trial.resource_trained + options_.step_resource, options_.R);
    job.rung = static_cast<int>(state.curve.size());
    job.tag = i;
    state.running = true;
    trial.status = TrialStatus::kRunning;
    return job;
  }
  if (options_.max_trials >= 0 && trials_created_ >= options_.max_trials) {
    return std::nullopt;
  }
  const TrialId id = bank_->Create(sampler_->Sample(rng_), /*bracket=*/0);
  ++trials_created_;
  ActiveTrial state;
  state.id = id;
  state.running = true;
  active_.push_back(state);
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = std::min(options_.step_resource, options_.R);
  job.rung = 0;
  job.tag = active_.size() - 1;
  return job;
}

void LcStopScheduler::ReportResult(const Job& job, double loss) {
  auto& state = active_.at(job.tag);
  HT_CHECK(state.running && state.id == job.trial_id);
  state.running = false;
  Trial& trial = bank_->Get(job.trial_id);
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  state.curve.emplace_back(job.to_resource, loss);
  sampler_->Observe(trial.config, job.to_resource, loss);

  if (job.to_resource >= options_.R) {
    state.done = true;
    trial.status = TrialStatus::kCompleted;
    best_final_ = std::min(best_final_, loss);
    incumbent_.Offer(job.trial_id, loss, job.to_resource);
    return;
  }
  trial.status = TrialStatus::kPaused;

  // Extrapolate and prune once a completed reference exists.
  if (std::isfinite(best_final_) &&
      static_cast<int>(state.curve.size()) >= options_.min_observations) {
    const auto fit = FitPowerLaw(state.curve);
    const double predicted = PredictPowerLaw(fit, options_.R);
    if (predicted > best_final_ * (1.0 + options_.margin)) {
      state.done = true;
      trial.status = TrialStatus::kStopped;
      ++num_stopped_;
    }
  }
}

void LcStopScheduler::ReportLost(const Job& job) {
  auto& state = active_.at(job.tag);
  HT_CHECK(state.running && state.id == job.trial_id);
  state.running = false;
  state.done = true;
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
}

bool LcStopScheduler::Finished() const {
  if (options_.max_trials < 0) return false;
  if (trials_created_ < options_.max_trials) return false;
  return std::all_of(active_.begin(), active_.end(),
                     [](const ActiveTrial& state) { return state.done; });
}

std::optional<Recommendation> LcStopScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
