// Learning-curve extrapolation early stopping (after Domhan et al. 2015,
// cited in the paper's related work): trials train in steps; once a trial
// has enough observations, a power-law curve is fit to them and the trial
// is stopped if its *extrapolated* final loss is worse than the best final
// loss seen so far (with a safety margin). A "meta-learning informed
// early-stopping" extension in the spirit of the paper's conclusion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bo/curve_fit.h"
#include "common/rng.h"
#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct LcStopOptions {
  double R = 256;
  double step_resource = 16;
  /// Minimum observations before extrapolation is trusted.
  int min_observations = 3;
  /// Stop when predicted_final > best_final * (1 + margin).
  double margin = 0.05;
  std::int64_t max_trials = -1;
  std::uint64_t seed = 1;
};

class LcStopScheduler final : public Scheduler {
 public:
  LcStopScheduler(std::shared_ptr<ConfigSampler> sampler,
                  LcStopOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "LCStop"; }

  std::size_t NumStopped() const { return num_stopped_; }

 private:
  struct ActiveTrial {
    TrialId id = -1;
    bool running = false;
    bool done = false;
    std::vector<std::pair<double, double>> curve;  // (resource, loss)
  };

  std::shared_ptr<ConfigSampler> sampler_;
  LcStopOptions options_;
  std::shared_ptr<TrialBank> bank_;
  std::vector<ActiveTrial> active_;
  IncumbentTracker incumbent_;
  Rng rng_;
  std::int64_t trials_created_ = 0;
  std::size_t num_stopped_ = 0;
  double best_final_ = std::numeric_limits<double>::infinity();
};

}  // namespace hypertune
