#include "baselines/median_rule.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

MedianRuleScheduler::MedianRuleScheduler(std::shared_ptr<ConfigSampler> sampler,
                                         MedianRuleOptions options)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(std::make_shared<TrialBank>()),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  HT_CHECK(options_.R > 0);
  HT_CHECK(options_.step_resource > 0 && options_.step_resource <= options_.R);
  HT_CHECK(options_.grace_steps >= 1);
  HT_CHECK(options_.min_cohort >= 2);
}

std::optional<Job> MedianRuleScheduler::GetJob() {
  // Resume a paused active trial first (cheapest way to finish good ones).
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ActiveTrial& state = active_[i];
    if (state.running || state.done) continue;
    Trial& trial = bank_->Get(state.id);
    Job job;
    job.trial_id = state.id;
    job.config = trial.config;
    job.from_resource = trial.resource_trained;
    job.to_resource =
        std::min(trial.resource_trained + options_.step_resource, options_.R);
    job.rung = state.steps;
    job.tag = i;
    state.running = true;
    trial.status = TrialStatus::kRunning;
    return job;
  }
  if (options_.max_trials >= 0 && trials_created_ >= options_.max_trials) {
    return std::nullopt;
  }
  const TrialId id = bank_->Create(sampler_->Sample(rng_), /*bracket=*/0);
  ++trials_created_;
  ActiveTrial state;
  state.id = id;
  state.running = true;
  active_.push_back(state);
  avg_history_.emplace_back();
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = std::min(options_.step_resource, options_.R);
  job.rung = 0;
  job.tag = active_.size() - 1;
  return job;
}

double MedianRuleScheduler::CohortMedian(std::size_t self_index,
                                         int step) const {
  std::vector<double> averages;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (i == self_index) continue;
    const auto& history = avg_history_[i];
    if (static_cast<int>(history.size()) >= step) {
      averages.push_back(history[static_cast<std::size_t>(step - 1)]);
    }
  }
  if (averages.size() < options_.min_cohort) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return Median(averages);
}

void MedianRuleScheduler::ReportResult(const Job& job, double loss) {
  auto& state = active_.at(job.tag);
  HT_CHECK(state.running && state.id == job.trial_id);
  state.running = false;
  Trial& trial = bank_->Get(job.trial_id);
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);

  ++state.steps;
  state.loss_sum += loss;
  state.best_loss = std::min(state.best_loss, loss);
  avg_history_[job.tag].push_back(state.loss_sum /
                                  static_cast<double>(state.steps));
  sampler_->Observe(trial.config, job.to_resource, loss);

  if (job.to_resource >= options_.R) {
    state.done = true;
    trial.status = TrialStatus::kCompleted;
    incumbent_.Offer(job.trial_id, loss, job.to_resource);
    return;
  }
  trial.status = TrialStatus::kPaused;

  // The rule: stop when the best loss so far is worse than the cohort's
  // median running average at this step.
  if (state.steps >= options_.grace_steps) {
    const double median = CohortMedian(job.tag, state.steps);
    if (!std::isnan(median) && state.best_loss > median) {
      state.done = true;
      trial.status = TrialStatus::kStopped;
      ++num_stopped_;
    }
  }
}

void MedianRuleScheduler::ReportLost(const Job& job) {
  auto& state = active_.at(job.tag);
  HT_CHECK(state.running && state.id == job.trial_id);
  state.running = false;
  state.done = true;
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
}

bool MedianRuleScheduler::Finished() const {
  if (options_.max_trials < 0) return false;
  if (trials_created_ < options_.max_trials) return false;
  return std::all_of(active_.begin(), active_.end(),
                     [](const ActiveTrial& state) { return state.done; });
}

std::optional<Recommendation> MedianRuleScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
