// The median stopping rule (Golovin et al. 2017) — Vizier's
// performance-curve early-stopping option. The paper compares against
// Vizier *without* it (their service's implementation had a bug at the
// time, footnote 2); we provide it as the natural extension so the
// comparison can be run both ways.
//
// Rule: every trial trains in fixed steps toward R; after step k, a trial
// is stopped if its best loss so far is worse than the median of the
// running averages (over steps 1..k) of all other trials that have reached
// step k. Unlike successive halving this prunes against an absolute cohort
// statistic rather than a fixed fraction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct MedianRuleOptions {
  double R = 256;
  /// Resource trained between rule evaluations.
  double step_resource = 16;
  /// Trials are never stopped before completing this many steps.
  int grace_steps = 1;
  /// The rule only fires once this many other trials have reached the step.
  std::size_t min_cohort = 5;
  /// Optional cap on started trials (-1 = unlimited).
  std::int64_t max_trials = -1;
  std::uint64_t seed = 1;
};

class MedianRuleScheduler final : public Scheduler {
 public:
  MedianRuleScheduler(std::shared_ptr<ConfigSampler> sampler,
                      MedianRuleOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "MedianRule"; }

  std::size_t NumStopped() const { return num_stopped_; }

 private:
  struct ActiveTrial {
    TrialId id = -1;
    bool running = false;
    bool done = false;  // completed R, stopped, or lost
    /// Running mean of step losses (the rule's curve summary).
    double loss_sum = 0;
    int steps = 0;
    double best_loss = std::numeric_limits<double>::infinity();
  };

  /// Median of other trials' running averages at step `step`; NaN when the
  /// cohort is too small.
  double CohortMedian(std::size_t self_index, int step) const;

  std::shared_ptr<ConfigSampler> sampler_;
  MedianRuleOptions options_;
  std::shared_ptr<TrialBank> bank_;
  std::vector<ActiveTrial> active_;
  /// avg_history_[i][k] = trial i's running average after step k+1.
  std::vector<std::vector<double>> avg_history_;
  IncumbentTracker incumbent_;
  Rng rng_;
  std::int64_t trials_created_ = 0;
  std::size_t num_stopped_ = 0;
};

}  // namespace hypertune
