#include "baselines/pbt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

PbtScheduler::PbtScheduler(SearchSpace space, PbtOptions options)
    : space_(std::move(space)),
      options_(options),
      bank_(std::make_shared<TrialBank>()),
      rng_(options.seed) {
  HT_CHECK(options_.population_size >= 2);
  HT_CHECK(options_.step_resource > 0);
  HT_CHECK(options_.max_resource >= options_.step_resource);
  HT_CHECK(options_.sync_window >= options_.step_resource);
  HT_CHECK(options_.truncation_fraction > 0 &&
           options_.truncation_fraction <= 0.5);
}

std::uint64_t PbtScheduler::Encode(std::size_t pop, std::size_t member) {
  return (pop << 32) | member;
}

std::pair<std::size_t, std::size_t> PbtScheduler::Decode(std::uint64_t tag) {
  return {tag >> 32, tag & 0xffffffffULL};
}

PbtScheduler::Population PbtScheduler::MakePopulation() {
  Population population;
  population.members.resize(options_.population_size);
  for (auto& member : population.members) {
    member.trial = bank_->Create(space_.Sample(rng_),
                                 static_cast<int>(populations_.size()));
  }
  return population;
}

bool PbtScheduler::Eligible(const Population& population,
                            const Member& member) const {
  if (member.running || member.finished) return false;
  // Sync restriction: do not run ahead of the slowest active member.
  double min_resource = std::numeric_limits<double>::infinity();
  for (const auto& other : population.members) {
    if (other.finished) continue;
    min_resource = std::min(min_resource, other.resource);
  }
  return member.resource - min_resource < options_.sync_window;
}

std::optional<Job> PbtScheduler::JobForMember(std::size_t pop,
                                              std::size_t member_idx) {
  Member& member = populations_[pop].members[member_idx];
  Trial& trial = bank_->Get(member.trial);
  Job job;
  job.trial_id = member.trial;
  job.config = trial.config;
  job.from_resource = member.resource;
  job.to_resource =
      std::min(member.resource + options_.step_resource, options_.max_resource);
  job.rung = member.steps_completed;
  job.bracket = static_cast<int>(pop);
  job.tag = Encode(pop, member_idx);
  member.running = true;
  trial.status = TrialStatus::kRunning;
  return job;
}

std::optional<Job> PbtScheduler::GetJob() {
  for (std::size_t p = 0; p < populations_.size(); ++p) {
    for (std::size_t m = 0; m < populations_[p].members.size(); ++m) {
      if (Eligible(populations_[p], populations_[p].members[m])) {
        return JobForMember(p, m);
      }
    }
  }
  if (populations_.empty() || options_.spawn_new_populations) {
    populations_.push_back(MakePopulation());
    return JobForMember(populations_.size() - 1, 0);
  }
  return std::nullopt;
}

void PbtScheduler::MaybeExploitExplore(std::size_t pop_idx,
                                       std::size_t member_idx) {
  Population& population = populations_[pop_idx];
  Member& member = population.members[member_idx];

  // Rank members that have at least one evaluation.
  std::vector<double> losses;
  for (const auto& other : population.members) {
    if (other.has_loss) losses.push_back(other.latest_loss);
  }
  const auto evaluated = losses.size();
  if (evaluated < 2) return;
  const auto cutoff = static_cast<std::size_t>(std::ceil(
      options_.truncation_fraction * static_cast<double>(evaluated)));
  std::sort(losses.begin(), losses.end());
  const double bottom_threshold = losses[evaluated - cutoff];
  if (member.latest_loss < bottom_threshold) return;  // not in the bottom

  // Uniform donor from the top fraction. A donor must be *strictly* better:
  // copying equal-quality weights would only reset this member's progress
  // (and with all-equal losses would livelock the population).
  const double top_threshold = losses[cutoff - 1];
  std::vector<std::size_t> top;
  for (std::size_t i = 0; i < population.members.size(); ++i) {
    const Member& other = population.members[i];
    if (other.has_loss && other.latest_loss <= top_threshold &&
        other.latest_loss < member.latest_loss && i != member_idx) {
      top.push_back(i);
    }
  }
  if (top.empty()) return;
  const Member& donor = population.members[top[rng_.Index(top.size())]];

  // Exploit: copy weights (resource position + current fitness) and
  // hyperparameters; explore: perturb/resample the inherited configuration.
  bank_->Get(member.trial).status = TrialStatus::kStopped;
  const Configuration explored = PbtExplore(
      space_, bank_->Get(donor.trial).config, options_.explore, rng_);
  member.trial = bank_->Create(explored, static_cast<int>(pop_idx));
  Trial& new_trial = bank_->Get(member.trial);
  new_trial.resource_trained = donor.resource;
  member.resource = donor.resource;
  member.latest_loss = donor.latest_loss;
  member.has_loss = donor.has_loss;
  member.finished = donor.resource >= options_.max_resource;
}

void PbtScheduler::ReportResult(const Job& job, double loss) {
  const auto [pop_idx, member_idx] = Decode(job.tag);
  Population& population = populations_.at(pop_idx);
  Member& member = population.members.at(member_idx);
  member.running = false;

  // The member may have been exploited while this job ran (possible when a
  // drop respawned it); only accept results for the trial we dispatched.
  if (member.trial != job.trial_id) return;

  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  member.resource = job.to_resource;
  member.latest_loss = loss;
  member.has_loss = true;
  ++member.steps_completed;
  incumbent_.Offer(job.trial_id, loss, job.to_resource);

  Trial& trial = bank_->Get(job.trial_id);
  if (member.resource >= options_.max_resource) {
    member.finished = true;
    trial.status = TrialStatus::kCompleted;
  } else {
    trial.status = TrialStatus::kPaused;
  }

  // Appendix A.3: resample bad initial draws until half the population
  // performs above random guessing.
  if (options_.random_guess_loss > 0 && member.steps_completed == 1 &&
      loss >= options_.random_guess_loss) {
    std::size_t first_done = 0;
    std::size_t above_guessing = 0;
    for (const auto& other : population.members) {
      if (other.steps_completed >= 1) {
        ++first_done;
        if (other.latest_loss < options_.random_guess_loss) ++above_guessing;
      }
    }
    if (first_done > 0 &&
        static_cast<double>(above_guessing) <
            0.5 * static_cast<double>(first_done)) {
      trial.status = TrialStatus::kStopped;
      member.trial =
          bank_->Create(space_.Sample(rng_), static_cast<int>(pop_idx));
      member.resource = 0;
      member.has_loss = false;
      member.steps_completed = 0;
      return;
    }
  }

  if (!member.finished) MaybeExploitExplore(pop_idx, member_idx);
}

void PbtScheduler::ReportLost(const Job& job) {
  const auto [pop_idx, member_idx] = Decode(job.tag);
  Member& member = populations_.at(pop_idx).members.at(member_idx);
  member.running = false;
  // The worker (and the member's weights) are gone: restart the slot with a
  // fresh configuration from scratch.
  if (member.trial == job.trial_id) {
    bank_->Get(member.trial).status = TrialStatus::kLost;
    member.trial =
        bank_->Create(space_.Sample(rng_), static_cast<int>(pop_idx));
    member.resource = 0;
    member.has_loss = false;
    member.steps_completed = 0;
  }
}

bool PbtScheduler::Finished() const {
  if (options_.spawn_new_populations) return false;
  if (populations_.empty()) return false;
  for (const auto& population : populations_) {
    for (const auto& member : population.members) {
      if (!member.finished) return false;
    }
  }
  return true;
}

std::optional<Recommendation> PbtScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
