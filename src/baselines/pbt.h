// Population Based Training (Jaderberg et al. 2017), implemented as the
// paper configures it (Appendix A.3):
//   * truncation selection — when a member finishes a step and sits in the
//     bottom `truncation_fraction` of its population, it copies weights and
//     hyperparameters from a uniformly drawn member of the top fraction;
//   * explore — inherited hyperparameters are perturbed by 1.2/0.8 (3/4 of
//     the time) or resampled (1/4), with architecture parameters frozen;
//   * members must stay within `sync_window` resource of the slowest member
//     of their population, so losses being compared are comparable;
//   * in distributed settings a fresh population is spawned whenever no job
//     is available from existing populations (100% worker efficiency);
//   * initial configurations are resampled until at least half the
//     population performs above random guessing.
//
// Weight inheritance maps onto the surrogate as: the exploited member's new
// trial continues from the donor's effective resource, so its future losses
// follow the new configuration's learning curve from that point.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"
#include "searchspace/perturb.h"

namespace hypertune {

struct PbtOptions {
  std::size_t population_size = 25;
  /// Resource trained per step between exploit/explore rounds.
  double step_resource = 1000;
  /// Members finishing this resource are done.
  double max_resource = 30000;
  /// Members may not run ahead of the slowest active member of their
  /// population by more than this (paper: 2000 iterations).
  double sync_window = 2000;
  /// Bottom/top fraction for truncation selection.
  double truncation_fraction = 0.2;
  PbtExploreOptions explore;
  /// Spawn a new population when no member can take a job.
  bool spawn_new_populations = true;
  /// Members whose first-step loss is not below this are resampled while
  /// fewer than half the population beats it; <= 0 disables.
  double random_guess_loss = 0.0;
  std::uint64_t seed = 1;
};

class PbtScheduler final : public Scheduler {
 public:
  PbtScheduler(SearchSpace space, PbtOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "PBT"; }

  std::size_t NumPopulations() const { return populations_.size(); }

 private:
  struct Member {
    TrialId trial = -1;
    /// Resource the member's *weights* have been trained for (inherited on
    /// exploit).
    double resource = 0;
    double latest_loss = 0;
    bool has_loss = false;
    bool running = false;
    bool finished = false;
    int steps_completed = 0;
  };

  struct Population {
    std::vector<Member> members;
  };

  /// (population index, member index) encoded in the job tag.
  static std::uint64_t Encode(std::size_t pop, std::size_t member);
  static std::pair<std::size_t, std::size_t> Decode(std::uint64_t tag);

  Population MakePopulation();
  std::optional<Job> JobForMember(std::size_t pop, std::size_t member);
  bool Eligible(const Population& population, const Member& member) const;
  void MaybeExploitExplore(std::size_t pop_idx, std::size_t member_idx);

  SearchSpace space_;
  PbtOptions options_;
  std::shared_ptr<TrialBank> bank_;
  std::vector<Population> populations_;
  IncumbentTracker incumbent_;
  Rng rng_;
};

}  // namespace hypertune
