#include "baselines/vizier.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

VizierScheduler::VizierScheduler(SearchSpace space, VizierOptions options)
    : space_(std::move(space)),
      options_(options),
      bank_(std::make_shared<TrialBank>()),
      rng_(options.seed),
      gp_(options.gp) {
  HT_CHECK(options_.R > 0);
  HT_CHECK(options_.num_initial_random >= 2);
  HT_CHECK(options_.candidates_per_suggest > 0);
  HT_CHECK(options_.refit_every > 0);
  HT_CHECK(options_.max_gp_points >= 10);
}

void VizierScheduler::RefitIfStale() {
  if (completed_y_.size() < options_.num_initial_random) return;
  if (fit_valid_ &&
      completed_y_.size() - completions_at_fit_ < options_.refit_every) {
    return;
  }

  std::vector<std::size_t> chosen;
  const std::size_t n = completed_y_.size();
  if (n <= options_.max_gp_points) {
    chosen.resize(n);
    for (std::size_t i = 0; i < n; ++i) chosen[i] = i;
  } else if (options_.robust_subsample) {
    // Outlier-robust variant: best half + most recent half of the cap.
    std::set<std::size_t> picked;
    const auto order = ArgsortAscending(completed_y_);
    const std::size_t half = options_.max_gp_points / 2;
    for (std::size_t i = 0; i < half; ++i) picked.insert(order[i]);
    for (std::size_t i = n; i-- > 0 && picked.size() < options_.max_gp_points;) {
      picked.insert(i);
    }
    chosen.assign(picked.begin(), picked.end());
  } else {
    // Faithful default: the most recent window, outliers and all — a GP
    // fit on raw heavy-tailed losses degrades exactly as the paper reports
    // for Vizier on PTB (Section 4.3).
    for (std::size_t i = n - options_.max_gp_points; i < n; ++i) {
      chosen.push_back(i);
    }
  }

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(chosen.size() + pending_x_.size());
  y.reserve(chosen.size() + pending_x_.size());
  for (std::size_t i : chosen) {
    x.push_back(completed_x_[i]);
    y.push_back(completed_y_[i]);
  }
  // Constant liar: pending points pinned at the mean observed loss, so
  // parallel suggestions repel each other. With hundreds of workers the
  // pending set alone would dominate the O(n^3) fit, so only the most
  // recent liars (the ones EI would otherwise re-suggest) are included.
  const double liar = Mean(y);
  const std::size_t max_liars = options_.max_gp_points / 2;
  const std::size_t start =
      pending_x_.size() > max_liars ? pending_x_.size() - max_liars : 0;
  for (std::size_t i = start; i < pending_x_.size(); ++i) {
    x.push_back(pending_x_[i]);
    y.push_back(liar);
  }
  gp_.Fit(std::move(x), std::move(y));
  completions_at_fit_ = completed_y_.size();
  fit_valid_ = true;
}

std::vector<double> VizierScheduler::SuggestPoint() {
  RefitIfStale();
  const std::size_t d = space_.NumParams();
  if (!fit_valid_) {
    std::vector<double> u(d);
    for (auto& v : u) v = rng_.Uniform();
    return u;
  }
  return SuggestByEi(gp_, d, best_loss_, options_.candidates_per_suggest,
                     rng_, options_.num_threads);
}

std::optional<Job> VizierScheduler::GetJob() {
  const auto point = SuggestPoint();
  Configuration config = space_.FromUnitVector(point);
  const TrialId id = bank_->Create(std::move(config), /*bracket=*/0);
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  // Pending under the actual unit encoding of the (possibly snapped-to-grid)
  // configuration, not the raw suggestion.
  pending_x_.push_back(space_.ToUnitVector(trial.config));

  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = options_.R;
  job.tag = pending_x_.size() - 1;  // not used for routing; informational
  return job;
}

void VizierScheduler::ReportResult(const Job& job, double loss) {
  Trial& trial = bank_->Get(job.trial_id);
  trial.status = TrialStatus::kCompleted;
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  incumbent_.Offer(job.trial_id, loss, job.to_resource);

  const auto point = space_.ToUnitVector(trial.config);
  const auto it = std::find(pending_x_.begin(), pending_x_.end(), point);
  if (it != pending_x_.end()) pending_x_.erase(it);

  const double capped = std::min(loss, options_.loss_cap);
  completed_x_.push_back(point);
  completed_y_.push_back(capped);
  best_loss_ = std::min(best_loss_, capped);
}

void VizierScheduler::ReportLost(const Job& job) {
  Trial& trial = bank_->Get(job.trial_id);
  trial.status = TrialStatus::kLost;
  const auto point = space_.ToUnitVector(trial.config);
  const auto it = std::find(pending_x_.begin(), pending_x_.end(), point);
  if (it != pending_x_.end()) pending_x_.erase(it);
}

std::optional<Recommendation> VizierScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
