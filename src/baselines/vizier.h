// A Vizier-like tuner: GP-bandit Bayesian optimization with expected
// improvement and constant-liar batching, evaluating every configuration at
// the full resource R (the paper compares against Vizier's default algorithm
// *without* early stopping, Section 4.3 footnote 2).
//
// Substitution note (DESIGN.md §2): Google Vizier is a closed service; this
// implements the published algorithm family it defaults to (GP bandit over
// the unit hypercube with batched suggestions). To keep the O(n^3) GP
// tractable at 500 workers the model is refit every `refit_every`
// completions on at most `max_gp_points` observations (the best half plus
// the most recent half) — a standard scalability compromise that production
// services also make.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "bo/acquisition.h"
#include "bo/gp.h"
#include "common/rng.h"
#include "core/incumbent.h"
#include "core/scheduler.h"
#include "searchspace/space.h"

namespace hypertune {

struct VizierOptions {
  double R = 256;
  /// Random designs before the model is trusted.
  std::size_t num_initial_random = 10;
  /// Random candidates scored by EI per suggestion.
  std::size_t candidates_per_suggest = 128;
  /// Completions between GP refits.
  std::size_t refit_every = 25;
  /// Max observations in a fit.
  std::size_t max_gp_points = 200;
  /// How the fit window is chosen once observations exceed max_gp_points.
  /// false (faithful): the most recent window — heavy-tailed outliers stay
  /// in the training set and wreck the standardized GP, reproducing the
  /// degradation the paper reports on PTB (Section 4.3). true: keep the
  /// best half + most recent half, an outlier-robust variant.
  bool robust_subsample = false;
  /// Losses are clipped here before entering the model; the paper tried
  /// capping PTB perplexities at 1000 to help Vizier (Section 4.3).
  double loss_cap = std::numeric_limits<double>::infinity();
  /// Threads for EI scoring over the candidate batch. 1 (the default) runs
  /// inline; higher values split the batch across threads with bit-identical
  /// scores, so seeded runs make the same decisions at any setting.
  int num_threads = 1;
  GpOptions gp;
  std::uint64_t seed = 1;
};

class VizierScheduler final : public Scheduler {
 public:
  VizierScheduler(SearchSpace space, VizierOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override { return false; }
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Vizier"; }
  /// Forwards the sink to the GP (bo.fit_full / bo.fit_rank1 counters and
  /// the bo.fit_seconds histogram).
  void SetTelemetry(Telemetry* telemetry) override {
    gp_.SetTelemetry(telemetry);
  }
  SchedulerCost Cost() const override {
    const GpFitStats& stats = gp_.fit_stats();
    return {stats.full_fits, stats.rank1_updates, stats.fit_seconds};
  }

  std::size_t NumCompleted() const { return completed_x_.size(); }

 private:
  void RefitIfStale();
  std::vector<double> SuggestPoint();

  SearchSpace space_;
  VizierOptions options_;
  std::shared_ptr<TrialBank> bank_;
  IncumbentTracker incumbent_;
  Rng rng_;

  std::vector<std::vector<double>> completed_x_;
  std::vector<double> completed_y_;
  /// Points dispatched but unreported; fed to the GP with the constant-liar
  /// target so parallel suggestions spread out.
  std::vector<std::vector<double>> pending_x_;
  GaussianProcess gp_;
  std::size_t completions_at_fit_ = 0;
  bool fit_valid_ = false;
  double best_loss_ = std::numeric_limits<double>::infinity();
};

}  // namespace hypertune
