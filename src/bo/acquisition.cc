#include "bo/acquisition.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "runtime/parallel.h"

namespace hypertune {

double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double ExpectedImprovement(double mean, double variance, double best) {
  HT_CHECK(variance >= 0);
  const double sigma = std::sqrt(variance);
  if (sigma < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sigma;
  return (best - mean) * NormalCdf(z) + sigma * NormalPdf(z);
}

std::vector<double> ScoreEiBatch(
    const GaussianProcess& gp, std::span<const std::vector<double>> candidates,
    double best_observed, int num_threads) {
  HT_CHECK_MSG(gp.IsFit(), "ScoreEiBatch called before Fit");
  if (candidates.empty()) return {};
  // Validate up front: ParallelFor workers must not throw.
  const std::size_t d = candidates.front().size();
  for (const auto& candidate : candidates) HT_CHECK(candidate.size() == d);

  std::vector<double> scores(candidates.size());
  ParallelFor(candidates.size(), num_threads,
              [&](std::size_t begin, std::size_t end) {
                const auto predictions =
                    gp.PredictBatch(candidates.subspan(begin, end - begin));
                for (std::size_t i = 0; i < predictions.size(); ++i) {
                  scores[begin + i] = ExpectedImprovement(
                      predictions[i].mean, predictions[i].variance,
                      best_observed);
                }
              });
  return scores;
}

std::size_t ArgMaxScore(std::span<const double> scores) {
  HT_CHECK(!scores.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return best;
}

std::vector<double> SuggestByEi(const GaussianProcess& gp, std::size_t dim,
                                double best_observed,
                                std::size_t num_candidates, Rng& rng,
                                int num_threads) {
  HT_CHECK(dim > 0 && num_candidates > 0);
  // Draw all candidates first (same stream order as scoring them one by
  // one), then score in one batched pass.
  std::vector<std::vector<double>> candidates(num_candidates,
                                              std::vector<double>(dim));
  for (auto& candidate : candidates) {
    for (auto& u : candidate) u = rng.Uniform();
  }
  const auto scores = ScoreEiBatch(gp, candidates, best_observed, num_threads);
  return candidates[ArgMaxScore(scores)];
}

}  // namespace hypertune
