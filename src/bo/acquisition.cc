#include "bo/acquisition.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace hypertune {

double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double ExpectedImprovement(double mean, double variance, double best) {
  HT_CHECK(variance >= 0);
  const double sigma = std::sqrt(variance);
  if (sigma < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sigma;
  return (best - mean) * NormalCdf(z) + sigma * NormalPdf(z);
}

std::vector<double> SuggestByEi(const GaussianProcess& gp, std::size_t dim,
                                double best_observed,
                                std::size_t num_candidates, Rng& rng) {
  HT_CHECK(dim > 0 && num_candidates > 0);
  std::vector<double> best_point(dim);
  double best_ei = -1;
  std::vector<double> candidate(dim);
  for (std::size_t c = 0; c < num_candidates; ++c) {
    for (auto& u : candidate) u = rng.Uniform();
    const auto pred = gp.Predict(candidate);
    const double ei = ExpectedImprovement(pred.mean, pred.variance,
                                          best_observed);
    if (ei > best_ei) {
      best_ei = ei;
      best_point = candidate;
    }
  }
  return best_point;
}

}  // namespace hypertune
