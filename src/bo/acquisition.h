// Acquisition functions and candidate-search helpers for GP-based tuners.
#pragma once

#include <span>
#include <vector>

#include "bo/gp.h"
#include "common/rng.h"

namespace hypertune {

/// Standard normal pdf / cdf (Abramowitz–Stegun-quality erf-based cdf).
double NormalPdf(double z);
double NormalCdf(double z);

/// Expected improvement of a *minimization* objective below `best` for a
/// Gaussian posterior N(mean, variance). Zero variance yields
/// max(best - mean, 0).
double ExpectedImprovement(double mean, double variance, double best);

/// Maximizes EI over `num_candidates` uniform random points in [0,1]^dim
/// (random-search acquisition optimization, as production GP services do at
/// scale). Returns the best candidate point.
std::vector<double> SuggestByEi(const GaussianProcess& gp, std::size_t dim,
                                double best_observed,
                                std::size_t num_candidates, Rng& rng);

}  // namespace hypertune
