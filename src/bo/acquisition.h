// Acquisition functions and candidate-search helpers for GP-based tuners.
#pragma once

#include <span>
#include <vector>

#include "bo/gp.h"
#include "common/rng.h"

namespace hypertune {

/// Standard normal pdf / cdf (Abramowitz–Stegun-quality erf-based cdf).
double NormalPdf(double z);
double NormalCdf(double z);

/// Expected improvement of a *minimization* objective below `best` for a
/// Gaussian posterior N(mean, variance). Zero variance yields
/// max(best - mean, 0).
double ExpectedImprovement(double mean, double variance, double best);

/// EI of every candidate under the GP posterior, computed with batched
/// prediction (one multi-RHS solve per chunk). With num_threads > 1 the
/// candidate range is split across threads; each candidate's score is
/// bit-identical to the single-threaded (and scalar-Predict) result, so
/// thread count never changes tuning decisions.
std::vector<double> ScoreEiBatch(const GaussianProcess& gp,
                                 std::span<const std::vector<double>> candidates,
                                 double best_observed, int num_threads = 1);

/// Index of the maximum score; ties resolve to the lowest index (matching a
/// first-strictly-greater sequential scan). Requires non-empty scores.
std::size_t ArgMaxScore(std::span<const double> scores);

/// Maximizes EI over `num_candidates` uniform random points in [0,1]^dim
/// (random-search acquisition optimization, as production GP services do at
/// scale). Returns the best candidate point. `num_threads` parallelizes the
/// scoring only; the result is identical for every thread count.
std::vector<double> SuggestByEi(const GaussianProcess& gp, std::size_t dim,
                                double best_observed,
                                std::size_t num_candidates, Rng& rng,
                                int num_threads = 1);

}  // namespace hypertune
