#include "bo/curve_fit.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hypertune {

namespace {

/// Least squares for y = a + b * x with x = r^(-c); returns (a, b, rss).
void LinearFit(std::span<const std::pair<double, double>> points, double c,
               double* a, double* b, double* rss) {
  const auto n = static_cast<double>(points.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [r, y] : points) {
    const double x = std::pow(r, -c);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-14) {
    // Degenerate design (e.g. all resources equal): flat fit.
    *b = 0;
    *a = sy / n;
  } else {
    *b = (n * sxy - sx * sy) / denom;
    *a = (sy - *b * sx) / n;
  }
  double acc = 0;
  for (const auto& [r, y] : points) {
    const double e = y - (*a + *b * std::pow(r, -c));
    acc += e * e;
  }
  *rss = acc;
}

}  // namespace

PowerLawFit FitPowerLaw(
    std::span<const std::pair<double, double>> resource_loss_points) {
  HT_CHECK_MSG(resource_loss_points.size() >= 3,
               "power-law fit needs at least 3 points, got "
                   << resource_loss_points.size());
  for (const auto& [r, y] : resource_loss_points) {
    HT_CHECK_MSG(r > 0, "resources must be positive, got " << r);
  }
  PowerLawFit best;
  best.rss = std::numeric_limits<double>::infinity();
  for (double c = 0.05; c <= 2.0 + 1e-9; c += 0.05) {
    double a = 0, b = 0, rss = 0;
    LinearFit(resource_loss_points, c, &a, &b, &rss);
    if (b < 0) continue;  // learning curves decrease toward the asymptote
    if (rss < best.rss) best = {a, b, c, rss};
  }
  if (!std::isfinite(best.rss)) {
    // Every decreasing-curve candidate was rejected (rising losses): fall
    // back to the flat fit so callers still get a sane extrapolation.
    double a = 0, b = 0, rss = 0;
    LinearFit(resource_loss_points, 1.0, &a, &b, &rss);
    best = {a + b, 0, 1.0, rss};
  }
  return best;
}

double PredictPowerLaw(const PowerLawFit& fit, double r) {
  HT_CHECK(r > 0);
  return fit.a + fit.b * std::pow(r, -fit.c);
}

}  // namespace hypertune
