// Power-law learning-curve fitting: loss(r) ~= a + b * r^(-c).
// The extrapolation primitive behind learning-curve-based early stopping
// (Domhan et al. 2015, discussed in the paper's related work) — and the
// same family the surrogate benchmarks generate, so fits are well-posed.
#pragma once

#include <span>
#include <utility>

namespace hypertune {

struct PowerLawFit {
  double a = 0;  // asymptotic loss
  double b = 0;  // amplitude
  double c = 0;  // decay exponent
  double rss = 0;  // residual sum of squares at the optimum
};

/// Fits (a, b) in closed form for each candidate exponent c on a grid and
/// returns the best. Requires >= 3 points with distinct positive resources.
PowerLawFit FitPowerLaw(
    std::span<const std::pair<double, double>> resource_loss_points);

/// Curve value at resource r (> 0).
double PredictPowerLaw(const PowerLawFit& fit, double r);

}  // namespace hypertune
