#include "bo/gp.h"

#include <chrono>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/stats.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

constexpr double kJitter = 1e-8;

std::unique_ptr<Kernel> MakeKernel(bool matern, double lengthscale) {
  if (matern) return std::make_unique<Matern52Kernel>(lengthscale);
  return std::make_unique<RbfKernel>(lengthscale);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

GaussianProcess::GaussianProcess(GpOptions options)
    : options_(std::move(options)) {
  HT_CHECK(options_.noise_variance > 0);
  HT_CHECK(!options_.lengthscale_grid.empty());
  grid_kernels_.reserve(options_.lengthscale_grid.size());
  for (double lengthscale : options_.lengthscale_grid) {
    grid_kernels_.push_back(MakeKernel(options_.matern, lengthscale));
  }
  grid_fits_.resize(options_.lengthscale_grid.size());
}

void GaussianProcess::SetTelemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    fit_full_counter_ = nullptr;
    fit_rank1_counter_ = nullptr;
    fit_seconds_histogram_ = nullptr;
    return;
  }
  auto& metrics = telemetry_->metrics();
  fit_full_counter_ = &metrics.counter("bo.fit_full");
  fit_rank1_counter_ = &metrics.counter("bo.fit_rank1");
  fit_seconds_histogram_ = &metrics.histogram(
      "bo.fit_seconds", ExponentialBuckets(1e-5, 4.0, 12));
}

void GaussianProcess::RecordFit(bool full, std::int64_t appended,
                                double seconds) {
  if (full) {
    ++stats_.full_fits;
  } else {
    stats_.rank1_updates += appended;
  }
  stats_.fit_seconds += seconds;
  if (telemetry_ != nullptr) {
    if (full) {
      fit_full_counter_->Increment();
    } else {
      fit_rank1_counter_->Increment(appended);
    }
    fit_seconds_histogram_->Observe(seconds);
  }
}

void GaussianProcess::Standardize() {
  y_mean_ = Mean(y_raw_);
  y_std_ = Stddev(y_raw_);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets
  y_standardized_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i) {
    y_standardized_[i] = (y_raw_[i] - y_mean_) / y_std_;
  }
}

void GaussianProcess::RefreshAlphaAndLml(GridFit& fit) const {
  const std::size_t n = y_standardized_.size();
  const auto tmp = SolveLower(fit.chol, y_standardized_);
  fit.alpha = SolveLowerTranspose(fit.chol, tmp);

  // log p(y) = -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi)
  double fit_term = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fit_term += y_standardized_[i] * fit.alpha[i];
  }
  fit.lml = -0.5 * fit_term - fit.log_det_half -
            0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::SelectBest() {
  double best_lml = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t g = 0; g < grid_fits_.size(); ++g) {
    if (grid_fits_[g].lml > best_lml) {
      best_lml = grid_fits_[g].lml;
      best = g;
    }
  }
  best_index_ = best;
  lengthscale_ = options_.lengthscale_grid[best];
  kernel_ = grid_kernels_[best].get();
  lml_ = grid_fits_[best].lml;
}

bool GaussianProcess::ExtendsCurrentFit(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& y) const {
  if (!IsFit() || x.size() < x_.size()) return false;
  for (std::size_t i = 0; i < x_.size(); ++i) {
    if (y[i] != y_raw_[i] || x[i] != x_[i]) return false;
  }
  return true;
}

void GaussianProcess::AppendObservation(std::vector<double> x, double y) {
  const std::size_t n = x_.size();

  // Extend the shared squared-distance triangle by one row.
  std::vector<double> d2_row(n + 1);
  for (std::size_t i = 0; i < n; ++i) d2_row[i] = SquaredDistance(x, x_[i]);
  d2_row[n] = 0.0;

  x_.push_back(std::move(x));
  y_raw_.push_back(y);
  Standardize();

  std::vector<double> k_new(n);
  for (std::size_t g = 0; g < grid_fits_.size(); ++g) {
    const Kernel& kernel = *grid_kernels_[g];
    GridFit& fit = grid_fits_[g];
    for (std::size_t i = 0; i < n; ++i) {
      k_new[i] = kernel.FromSquaredDistance(d2_row[i]);
    }
    const double kappa =
        kernel.FromSquaredDistance(0.0) + options_.noise_variance;
    const double new_diag = CholeskyAppendRow(fit.chol, k_new, kappa, kJitter);
    fit.log_det_half += std::log(new_diag);
    RefreshAlphaAndLml(fit);
  }
  d2_rows_.push_back(std::move(d2_row));
  SelectBest();
}

void GaussianProcess::Append(std::vector<double> x, double y) {
  HT_CHECK_MSG(IsFit(), "Append called before Fit");
  HT_CHECK(x.size() == x_.front().size());
  const auto start = std::chrono::steady_clock::now();
  AppendObservation(std::move(x), y);
  RecordFit(/*full=*/false, /*appended=*/1, SecondsSince(start));
}

void GaussianProcess::Fit(std::vector<std::vector<double>> x,
                          std::vector<double> y) {
  HT_CHECK_MSG(!x.empty() && x.size() == y.size(),
               "GP fit needs matching non-empty inputs, got " << x.size()
                                                              << " points");
  const std::size_t d = x.front().size();
  for (const auto& point : x) HT_CHECK(point.size() == d);

  const auto start = std::chrono::steady_clock::now();

  if (ExtendsCurrentFit(x, y)) {
    // The data extends the current fit point-for-point: extend each grid
    // factorization by one row per new point (O(n^2) each) instead of
    // refactorizing from scratch. Bit-identical to the full path.
    const std::size_t appended = x.size() - x_.size();
    for (std::size_t i = x_.size(); i < x.size(); ++i) {
      AppendObservation(std::move(x[i]), y[i]);
    }
    if (appended > 0) {
      RecordFit(/*full=*/false, static_cast<std::int64_t>(appended),
                SecondsSince(start));
    }
    return;
  }

  const std::size_t n = x.size();
  x_ = std::move(x);
  y_raw_ = std::move(y);
  Standardize();

  // Pairwise squared distances, computed once and shared by the whole
  // lengthscale grid (both kernel families are functions of d2 alone).
  d2_rows_.clear();
  d2_rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(i + 1);
    for (std::size_t j = 0; j < i; ++j) row[j] = SquaredDistance(x_[i], x_[j]);
    row[i] = 0.0;
    d2_rows_.push_back(std::move(row));
  }

  TriangularMatrix k(n);
  for (std::size_t g = 0; g < grid_fits_.size(); ++g) {
    const Kernel& kernel = *grid_kernels_[g];
    for (std::size_t i = 0; i < n; ++i) {
      const double* d2_row = d2_rows_[i].data();
      double* k_row = k.Row(i);
      for (std::size_t j = 0; j < i; ++j) {
        k_row[j] = kernel.FromSquaredDistance(d2_row[j]);
      }
      k_row[i] =
          kernel.FromSquaredDistance(d2_row[i]) + options_.noise_variance;
    }
    GridFit& fit = grid_fits_[g];
    fit.chol = CholeskyFactor(k, kJitter);
    fit.log_det_half = 0;
    for (std::size_t i = 0; i < n; ++i) {
      fit.log_det_half += std::log(fit.chol.at(i, i));
    }
    RefreshAlphaAndLml(fit);
  }
  // The best factorization was retained during the grid loop — no winner
  // refit needed.
  SelectBest();
  RecordFit(/*full=*/true, /*appended=*/0, SecondsSince(start));
}

GpPrediction GaussianProcess::Predict(std::span<const double> x) const {
  HT_CHECK_MSG(IsFit(), "Predict called before Fit");
  const std::size_t n = x_.size();
  const GridFit& fit = grid_fits_[best_index_];
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = kernel_->FromSquaredDistance(SquaredDistance(x_[i], x));
  }

  double mean_std = 0;
  for (std::size_t i = 0; i < n; ++i) mean_std += k_star[i] * fit.alpha[i];

  const auto v = SolveLower(fit.chol, k_star);
  double reduction = 0;
  for (double vi : v) reduction += vi * vi;
  const double prior_var = kernel_->FromSquaredDistance(0.0);
  const double var_std = std::max(1e-12, prior_var - reduction);

  return {y_mean_ + y_std_ * mean_std, y_std_ * y_std_ * var_std};
}

std::vector<GpPrediction> GaussianProcess::PredictBatch(
    std::span<const std::vector<double>> xs) const {
  HT_CHECK_MSG(IsFit(), "PredictBatch called before Fit");
  const std::size_t m = xs.size();
  if (m == 0) return {};
  const std::size_t n = x_.size();
  const std::size_t d = x_.front().size();
  for (const auto& x : xs) HT_CHECK(x.size() == d);
  const GridFit& fit = grid_fits_[best_index_];

  // K* with one candidate per column: row-major, so the solve and the
  // reductions below stream contiguously across candidates.
  Matrix k_star(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double* row = k_star.Row(i);
    for (std::size_t c = 0; c < m; ++c) {
      row[c] = kernel_->FromSquaredDistance(SquaredDistance(x_[i], xs[c]));
    }
  }

  std::vector<double> mean_std(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = k_star.Row(i);
    const double alpha_i = fit.alpha[i];
    for (std::size_t c = 0; c < m; ++c) mean_std[c] += row[c] * alpha_i;
  }

  SolveLowerInPlace(fit.chol, k_star);  // k_star now holds V = L^-1 K*
  std::vector<double> reduction(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = k_star.Row(i);
    for (std::size_t c = 0; c < m; ++c) reduction[c] += row[c] * row[c];
  }

  const double prior_var = kernel_->FromSquaredDistance(0.0);
  std::vector<GpPrediction> predictions(m);
  for (std::size_t c = 0; c < m; ++c) {
    const double var_std = std::max(1e-12, prior_var - reduction[c]);
    predictions[c] = {y_mean_ + y_std_ * mean_std[c],
                      y_std_ * y_std_ * var_std};
  }
  return predictions;
}

}  // namespace hypertune
