#include "bo/gp.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

GaussianProcess::GaussianProcess(GpOptions options)
    : options_(std::move(options)) {
  HT_CHECK(options_.noise_variance > 0);
  HT_CHECK(!options_.lengthscale_grid.empty());
}

namespace {

std::unique_ptr<Kernel> MakeKernel(bool matern, double lengthscale) {
  if (matern) return std::make_unique<Matern52Kernel>(lengthscale);
  return std::make_unique<RbfKernel>(lengthscale);
}

}  // namespace

double GaussianProcess::FitWithLengthscale(double lengthscale) {
  kernel_ = MakeKernel(options_.matern, lengthscale);
  const std::size_t n = x_.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(x_[i], x_[j]);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
    k.at(i, i) += options_.noise_variance;
  }
  chol_ = CholeskyFactor(k, /*jitter=*/1e-8);
  const auto tmp = SolveLower(chol_, y_standardized_);
  alpha_ = SolveLowerTranspose(chol_, tmp);

  // log p(y) = -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi)
  double fit_term = 0;
  for (std::size_t i = 0; i < n; ++i) fit_term += y_standardized_[i] * alpha_[i];
  double log_det_half = 0;
  for (std::size_t i = 0; i < n; ++i) log_det_half += std::log(chol_.at(i, i));
  return -0.5 * fit_term - log_det_half -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::Fit(std::vector<std::vector<double>> x,
                          std::vector<double> y) {
  HT_CHECK_MSG(!x.empty() && x.size() == y.size(),
               "GP fit needs matching non-empty inputs, got " << x.size()
                                                              << " points");
  const std::size_t d = x.front().size();
  for (const auto& point : x) HT_CHECK(point.size() == d);

  x_ = std::move(x);
  y_mean_ = Mean(y);
  y_std_ = Stddev(y);
  if (y_std_ < 1e-12) y_std_ = 1.0;  // constant targets
  y_standardized_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y_standardized_[i] = (y[i] - y_mean_) / y_std_;
  }

  double best_lml = -std::numeric_limits<double>::infinity();
  double best_lengthscale = options_.lengthscale_grid.front();
  for (double lengthscale : options_.lengthscale_grid) {
    const double lml = FitWithLengthscale(lengthscale);
    if (lml > best_lml) {
      best_lml = lml;
      best_lengthscale = lengthscale;
    }
  }
  lengthscale_ = best_lengthscale;
  lml_ = FitWithLengthscale(best_lengthscale);
}

GpPrediction GaussianProcess::Predict(std::span<const double> x) const {
  HT_CHECK_MSG(IsFit(), "Predict called before Fit");
  const std::size_t n = x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(x_[i], x);

  double mean_std = 0;
  for (std::size_t i = 0; i < n; ++i) mean_std += k_star[i] * alpha_[i];

  const auto v = SolveLower(chol_, k_star);
  double reduction = 0;
  for (double vi : v) reduction += vi * vi;
  const double prior_var = (*kernel_)(x, x);
  const double var_std = std::max(1e-12, prior_var - reduction);

  return {y_mean_ + y_std_ * mean_std, y_std_ * y_std_ * var_std};
}

}  // namespace hypertune
