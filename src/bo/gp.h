// Gaussian-process regression with internal target standardization and a
// small lengthscale grid search by marginal likelihood — the workhorse of
// the Vizier-like and Fabolas-like baselines.
//
// Incremental-refit contract (DESIGN.md "BO substrate"): the GP retains one
// Cholesky factorization per lengthscale in the grid, plus the pairwise
// squared-distance matrix of its training points. Appending one observation
// (`Append`, or a `Fit` whose data extends the previous fit's data) extends
// every factor by one row in O(n^2) per lengthscale instead of refitting
// 5 x O(n^3), re-runs the marginal-likelihood grid selection, and
// restandardizes targets — producing state bit-identical to a from-scratch
// fit on the same data. `Fit` falls back to the full O(n^3) path only when
// the new data is not an extension of the old (subsampled windows,
// constant-liar batches, the first fit).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bo/kernel.h"
#include "bo/matrix.h"

namespace hypertune {

class Telemetry;
class Counter;
class Histogram;

struct GpPrediction {
  double mean = 0;
  double variance = 0;
};

struct GpOptions {
  /// Observation noise variance (on standardized targets).
  double noise_variance = 1e-4;
  /// Lengthscale candidates tried by marginal likelihood when fitting.
  std::vector<double> lengthscale_grid = {0.1, 0.2, 0.35, 0.6, 1.0};
  /// Kernel family: true = Matern 5/2, false = RBF.
  bool matern = true;
};

/// Cumulative cost accounting for one GP instance: how many fits took the
/// full O(n^3) path vs. the O(n^2) rank-1 path, and the wall-clock they
/// consumed. Always on (one steady_clock read per fit); the experiment
/// runner surfaces these as the tuner-overhead share of a bench run.
struct GpFitStats {
  std::int64_t full_fits = 0;
  std::int64_t rank1_updates = 0;
  double fit_seconds = 0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {});

  /// Fits to inputs X (points in [0,1]^d) and targets y. Targets are
  /// standardized internally; predictions are de-standardized. When (x, y)
  /// extends the previously fitted data point-for-point, the fit runs
  /// incrementally in O(k n^2) for k new points; otherwise from scratch in
  /// O(n^3) per grid lengthscale.
  void Fit(std::vector<std::vector<double>> x, std::vector<double> y);

  /// Rank-1 refit: adds one observation in O(n^2) per grid lengthscale,
  /// including grid re-selection and target restandardization. State is
  /// bit-identical to Fit on the extended data. Requires IsFit().
  void Append(std::vector<double> x, double y);

  bool IsFit() const { return !x_.empty(); }
  std::size_t NumPoints() const { return x_.size(); }

  GpPrediction Predict(std::span<const double> x) const;

  /// Posterior at each candidate via one blocked multi-RHS triangular solve
  /// instead of xs.size() scalar ones. Each prediction is bit-identical to
  /// the scalar Predict on that candidate.
  std::vector<GpPrediction> PredictBatch(
      std::span<const std::vector<double>> xs) const;

  /// Log marginal likelihood of the standardized data under the current fit.
  double LogMarginalLikelihood() const { return lml_; }

  double FittedLengthscale() const { return lengthscale_; }

  /// Attaches an observability sink (not owned; null detaches): counts
  /// bo.fit_full / bo.fit_rank1 and feeds the bo.fit_seconds histogram.
  void SetTelemetry(Telemetry* telemetry);

  const GpFitStats& fit_stats() const { return stats_; }

 private:
  /// One retained factorization per lengthscale-grid entry.
  struct GridFit {
    TriangularMatrix chol;        // L with K + sigma^2 I = L L^T
    std::vector<double> alpha;    // (K + sigma^2 I)^-1 y
    double log_det_half = 0;      // sum_i log L_ii, extended incrementally
    double lml = 0;
  };

  void Standardize();
  /// Recomputes alpha and the LML of one grid fit from y_standardized_.
  void RefreshAlphaAndLml(GridFit& fit) const;
  /// Re-runs the marginal-likelihood argmax over the grid (first best wins).
  void SelectBest();
  /// Appends one observation to every grid factorization; the O(n^2) core
  /// shared by Append and the incremental path of Fit.
  void AppendObservation(std::vector<double> x, double y);
  /// True when (x, y) extends the current fit data point-for-point (it may
  /// then be fitted incrementally); equal data counts as a 0-point
  /// extension.
  bool ExtendsCurrentFit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y) const;
  void RecordFit(bool full, std::int64_t appended, double seconds);

  GpOptions options_;
  std::vector<std::unique_ptr<Kernel>> grid_kernels_;  // one per grid entry
  std::vector<std::vector<double>> x_;
  std::vector<double> y_raw_;
  std::vector<double> y_standardized_;
  /// Packed lower triangle of pairwise squared distances: row i holds
  /// |x_i - x_j|^2 for j <= i. Computed once per full fit, extended by one
  /// row per append, shared by the whole lengthscale grid.
  std::vector<std::vector<double>> d2_rows_;
  std::vector<GridFit> grid_fits_;  // parallel to options_.lengthscale_grid
  std::size_t best_index_ = 0;
  double y_mean_ = 0;
  double y_std_ = 1;
  double lengthscale_ = 0.35;
  const Kernel* kernel_ = nullptr;  // grid_kernels_[best_index_]
  double lml_ = 0;

  GpFitStats stats_;
  Telemetry* telemetry_ = nullptr;
  Counter* fit_full_counter_ = nullptr;
  Counter* fit_rank1_counter_ = nullptr;
  Histogram* fit_seconds_histogram_ = nullptr;
};

}  // namespace hypertune
