// Gaussian-process regression with internal target standardization and a
// small lengthscale grid search by marginal likelihood — the workhorse of
// the Vizier-like and Fabolas-like baselines.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "bo/kernel.h"
#include "bo/matrix.h"

namespace hypertune {

struct GpPrediction {
  double mean = 0;
  double variance = 0;
};

struct GpOptions {
  /// Observation noise variance (on standardized targets).
  double noise_variance = 1e-4;
  /// Lengthscale candidates tried by marginal likelihood when fitting.
  std::vector<double> lengthscale_grid = {0.1, 0.2, 0.35, 0.6, 1.0};
  /// Kernel family: true = Matern 5/2, false = RBF.
  bool matern = true;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {});

  /// Fits to inputs X (points in [0,1]^d) and targets y. Targets are
  /// standardized internally; predictions are de-standardized. Refits from
  /// scratch (O(n^3)); callers throttle refit frequency.
  void Fit(std::vector<std::vector<double>> x, std::vector<double> y);

  bool IsFit() const { return !x_.empty(); }
  std::size_t NumPoints() const { return x_.size(); }

  GpPrediction Predict(std::span<const double> x) const;

  /// Log marginal likelihood of the standardized data under the current fit.
  double LogMarginalLikelihood() const { return lml_; }

  double FittedLengthscale() const { return lengthscale_; }

 private:
  double FitWithLengthscale(double lengthscale);

  GpOptions options_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_standardized_;
  double y_mean_ = 0;
  double y_std_ = 1;
  double lengthscale_ = 0.35;
  std::unique_ptr<Kernel> kernel_;
  Matrix chol_;                 // L with K + sigma^2 I = L L^T
  std::vector<double> alpha_;   // (K + sigma^2 I)^-1 y
  double lml_ = 0;
};

}  // namespace hypertune
