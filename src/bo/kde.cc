#include "bo/kde.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

KernelDensityEstimator::KernelDensityEstimator(
    std::vector<std::vector<double>> points, double min_bandwidth,
    double bandwidth_factor)
    : points_(std::move(points)) {
  HT_CHECK_MSG(!points_.empty(), "KDE needs at least one point");
  HT_CHECK(min_bandwidth > 0 && bandwidth_factor > 0);
  const std::size_t d = points_.front().size();
  HT_CHECK(d > 0);
  for (const auto& p : points_) HT_CHECK(p.size() == d);

  const double n = static_cast<double>(points_.size());
  const double scott = std::pow(n, -1.0 / (static_cast<double>(d) + 4.0));
  bandwidths_.resize(d);
  std::vector<double> column(points_.size());
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < points_.size(); ++i) column[i] = points_[i][j];
    const double sd = Stddev(column);
    bandwidths_[j] =
        std::max(min_bandwidth, bandwidth_factor * scott * std::max(sd, 0.05));
  }
}

double KernelDensityEstimator::Pdf(const std::vector<double>& x) const {
  HT_CHECK(x.size() == Dim());
  const double norm_1d = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  double total = 0;
  for (const auto& center : points_) {
    double k = 1.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double z = (x[j] - center[j]) / bandwidths_[j];
      k *= norm_1d / bandwidths_[j] * std::exp(-0.5 * z * z);
    }
    total += k;
  }
  return total / static_cast<double>(points_.size());
}

std::vector<double> KernelDensityEstimator::Sample(Rng& rng) const {
  const auto& center = points_[rng.Index(points_.size())];
  std::vector<double> x(Dim());
  for (std::size_t j = 0; j < Dim(); ++j) {
    x[j] = std::clamp(center[j] + rng.Normal(0.0, bandwidths_[j]), 0.0, 1.0);
  }
  return x;
}

}  // namespace hypertune
