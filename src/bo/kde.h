// Product-Gaussian kernel density estimation over the unit hypercube —
// the density model behind BOHB's TPE-style sampler.
#pragma once

#include <vector>

#include "common/rng.h"

namespace hypertune {

class KernelDensityEstimator {
 public:
  /// Fits per-dimension bandwidths with Scott's rule (n^(-1/(d+4)) * std,
  /// floored at `min_bandwidth`) over the given unit-cube points.
  explicit KernelDensityEstimator(std::vector<std::vector<double>> points,
                                  double min_bandwidth = 1e-3,
                                  double bandwidth_factor = 1.0);

  std::size_t NumPoints() const { return points_.size(); }
  std::size_t Dim() const { return bandwidths_.size(); }
  const std::vector<double>& bandwidths() const { return bandwidths_; }

  /// Density at x (mixture of product Gaussians centered at the points).
  double Pdf(const std::vector<double>& x) const;

  /// Draws a sample: pick a kernel center uniformly, add per-dimension
  /// Gaussian noise, clamp to [0,1].
  std::vector<double> Sample(Rng& rng) const;

 private:
  std::vector<std::vector<double>> points_;
  std::vector<double> bandwidths_;
};

}  // namespace hypertune
