#include "bo/kernel.h"

#include <cmath>

#include "bo/matrix.h"
#include "common/check.h"

namespace hypertune {

double Kernel::operator()(std::span<const double> a,
                          std::span<const double> b) const {
  return FromSquaredDistance(SquaredDistance(a, b));
}

RbfKernel::RbfKernel(double lengthscale, double signal_variance)
    : lengthscale_(lengthscale), signal_variance_(signal_variance) {
  HT_CHECK(lengthscale > 0 && signal_variance > 0);
}

double RbfKernel::FromSquaredDistance(double d2) const {
  return signal_variance_ *
         std::exp(-d2 / (2.0 * lengthscale_ * lengthscale_));
}

Matern52Kernel::Matern52Kernel(double lengthscale, double signal_variance)
    : lengthscale_(lengthscale), signal_variance_(signal_variance) {
  HT_CHECK(lengthscale > 0 && signal_variance > 0);
}

double Matern52Kernel::FromSquaredDistance(double d2) const {
  const double d = std::sqrt(d2) / lengthscale_;
  const double sqrt5_d = std::sqrt(5.0) * d;
  return signal_variance_ * (1.0 + sqrt5_d + 5.0 * d * d / 3.0) *
         std::exp(-sqrt5_d);
}

}  // namespace hypertune
