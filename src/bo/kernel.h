// Covariance kernels for GP regression over the unit hypercube.
#pragma once

#include <memory>
#include <span>

namespace hypertune {

class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual double operator()(std::span<const double> a,
                            std::span<const double> b) const = 0;
};

/// Squared-exponential: sigma_f^2 * exp(-|a-b|^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double lengthscale, double signal_variance = 1.0);
  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  double lengthscale() const { return lengthscale_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

/// Matern 5/2 — the standard choice for hyperparameter response surfaces
/// (twice differentiable but less smooth than RBF); used by Vizier-style
/// GP bandits.
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double lengthscale, double signal_variance = 1.0);
  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  double lengthscale() const { return lengthscale_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

}  // namespace hypertune
