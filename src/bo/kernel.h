// Covariance kernels for GP regression over the unit hypercube.
//
// Both families are stationary and isotropic: k(a, b) is a function of the
// squared distance |a - b|^2 alone. The GP exploits this by computing the
// pairwise squared-distance matrix once per fit and evaluating every
// lengthscale in its grid through FromSquaredDistance — the distances never
// need recomputing when only the lengthscale changes.
#pragma once

#include <memory>
#include <span>

namespace hypertune {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(a, b) as a function of d2 = |a - b|^2. This is the primitive;
  /// operator() is the convenience wrapper that computes d2 first.
  virtual double FromSquaredDistance(double d2) const = 0;

  double operator()(std::span<const double> a, std::span<const double> b) const;
};

/// Squared-exponential: sigma_f^2 * exp(-|a-b|^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double lengthscale, double signal_variance = 1.0);
  double FromSquaredDistance(double d2) const override;
  double lengthscale() const { return lengthscale_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

/// Matern 5/2 — the standard choice for hyperparameter response surfaces
/// (twice differentiable but less smooth than RBF); used by Vizier-style
/// GP bandits.
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double lengthscale, double signal_variance = 1.0);
  double FromSquaredDistance(double d2) const override;
  double lengthscale() const { return lengthscale_; }

 private:
  double lengthscale_;
  double signal_variance_;
};

}  // namespace hypertune
