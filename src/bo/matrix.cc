#include "bo/matrix.h"

#include <cmath>

#include "common/check.h"

namespace hypertune {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::MatVec(std::span<const double> x) const {
  HT_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < cols_; ++j) acc += at(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix CholeskyFactor(const Matrix& a, double jitter) {
  HT_CHECK_MSG(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l.at(j, k) * l.at(j, k);
    HT_CHECK_MSG(diag > 0, "matrix not positive definite at pivot " << j);
    l.at(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double off = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) off -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = off / l.at(j, j);
    }
  }
  return l;
}

std::vector<double> SolveLower(const Matrix& l, std::span<const double> b) {
  HT_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l.at(i, j) * x[j];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

std::vector<double> SolveLowerTranspose(const Matrix& l,
                                        std::span<const double> b) {
  HT_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l.at(j, i) * x[j];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  HT_CHECK(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace hypertune
