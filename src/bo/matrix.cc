#include "bo/matrix.h"

#include <cmath>

#include "common/check.h"

namespace hypertune {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::MatVec(std::span<const double> x) const {
  HT_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0;
    const double* row = Row(i);
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

TriangularMatrix::TriangularMatrix(std::size_t n)
    : n_(n), data_(n * (n + 1) / 2, 0.0) {}

void TriangularMatrix::AppendRow(std::span<const double> row) {
  HT_CHECK(row.size() == n_ + 1);
  data_.insert(data_.end(), row.begin(), row.end());
  ++n_;
}

Matrix CholeskyFactor(const Matrix& a, double jitter) {
  HT_CHECK_MSG(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j) + jitter;
    const double* lj = l.Row(j);
    for (std::size_t k = 0; k < j; ++k) diag -= lj[k] * lj[k];
    HT_CHECK_MSG(diag > 0, "matrix not positive definite at pivot " << j);
    l.at(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double off = a.at(i, j);
      const double* li = l.Row(i);
      for (std::size_t k = 0; k < j; ++k) off -= li[k] * lj[k];
      l.at(i, j) = off / lj[j];
    }
  }
  return l;
}

TriangularMatrix CholeskyFactor(const TriangularMatrix& a, double jitter) {
  // Left-looking, row-oriented: row i of L is finished before row i + 1
  // starts, and every dot product runs over two contiguous packed rows.
  // Per-entry accumulation order (k ascending) matches the dense factorizer
  // exactly, so the results agree bit for bit.
  const std::size_t n = a.size();
  TriangularMatrix l(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = a.Row(i);
    double* li = l.Row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double* lj = l.Row(j);
      double off = ai[j];
      for (std::size_t k = 0; k < j; ++k) off -= li[k] * lj[k];
      li[j] = off / lj[j];
    }
    double diag = ai[i] + jitter;
    for (std::size_t k = 0; k < i; ++k) diag -= li[k] * li[k];
    HT_CHECK_MSG(diag > 0, "matrix not positive definite at pivot " << i);
    li[i] = std::sqrt(diag);
  }
  return l;
}

double CholeskyAppendRow(TriangularMatrix& l, std::span<const double> k,
                         double kappa, double jitter) {
  const std::size_t n = l.size();
  HT_CHECK(k.size() == n);
  std::vector<double> row(n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    const double* lj = l.Row(j);
    double off = k[j];
    for (std::size_t c = 0; c < j; ++c) off -= row[c] * lj[c];
    row[j] = off / lj[j];
  }
  double diag = kappa + jitter;
  for (std::size_t c = 0; c < n; ++c) diag -= row[c] * row[c];
  HT_CHECK_MSG(diag > 0, "matrix not positive definite at pivot " << n);
  row[n] = std::sqrt(diag);
  l.AppendRow(row);
  return row[n];
}

std::vector<double> SolveLower(const Matrix& l, std::span<const double> b) {
  HT_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    const double* li = l.Row(i);
    for (std::size_t j = 0; j < i; ++j) acc -= li[j] * x[j];
    x[i] = acc / li[i];
  }
  return x;
}

std::vector<double> SolveLower(const TriangularMatrix& l,
                               std::span<const double> b) {
  HT_CHECK(b.size() == l.size());
  const std::size_t n = l.size();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    const double* li = l.Row(i);
    for (std::size_t j = 0; j < i; ++j) acc -= li[j] * x[j];
    x[i] = acc / li[i];
  }
  return x;
}

std::vector<double> SolveLowerTranspose(const Matrix& l,
                                        std::span<const double> b) {
  HT_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l.at(j, i) * x[j];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

std::vector<double> SolveLowerTranspose(const TriangularMatrix& l,
                                        std::span<const double> b) {
  HT_CHECK(b.size() == l.size());
  const std::size_t n = l.size();
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= l.at(j, i) * x[j];
    x[i] = acc / l.at(i, i);
  }
  return x;
}

void SolveLowerInPlace(const TriangularMatrix& l, Matrix& b) {
  HT_CHECK(b.rows() == l.size());
  const std::size_t n = l.size();
  const std::size_t m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.Row(i);
    double* bi = b.Row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double lij = li[j];
      const double* bj = b.Row(j);
      for (std::size_t c = 0; c < m; ++c) bi[c] -= lij * bj[c];
    }
    const double lii = li[i];
    for (std::size_t c = 0; c < m; ++c) bi[c] /= lii;
  }
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  HT_CHECK(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace hypertune
