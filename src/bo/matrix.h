// Minimal dense linear algebra for the Gaussian-process substrate.
// Column counts stay small (hundreds of BO observations), so a simple
// row-major dense representation with O(n^3) Cholesky is the right tool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hypertune {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// y = A x. Requires x.size() == cols().
  std::vector<double> MatVec(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric
/// positive-definite matrix. Adds `jitter` to the diagonal before
/// factorizing; throws CheckError if the matrix is still not PD.
Matrix CholeskyFactor(const Matrix& a, double jitter = 1e-10);

/// Solves L x = b for lower-triangular L.
std::vector<double> SolveLower(const Matrix& l, std::span<const double> b);

/// Solves L^T x = b for lower-triangular L (i.e. an upper-triangular solve).
std::vector<double> SolveLowerTranspose(const Matrix& l,
                                        std::span<const double> b);

/// Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace hypertune
