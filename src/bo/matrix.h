// Minimal dense linear algebra for the Gaussian-process substrate.
// Column counts stay small (hundreds of BO observations), so simple dense
// representations are the right tool. Two layouts:
//
//   - Matrix: general row-major rectangular storage (kernel cross-matrices,
//     multi-RHS blocks).
//   - TriangularMatrix: packed row-major lower-triangular storage (row i
//     holds i+1 contiguous entries). Cholesky factors and symmetric kernel
//     matrices live here: half the memory of a square matrix, contiguous
//     row access in every solve, and O(n) row append — which is what makes
//     the GP's rank-1 incremental refit possible without copying the
//     factor.
//
// Numerical contract: every routine accumulates dot products over k in
// ascending order, so the packed Cholesky, the appended-row extension, and
// the multi-RHS solves produce bit-identical results to their scalar/dense
// counterparts. Seeded tuning runs therefore make identical decisions
// whichever path computed them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hypertune {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// Contiguous row i (length cols()).
  double* Row(std::size_t i) { return data_.data() + i * cols_; }
  const double* Row(std::size_t i) const { return data_.data() + i * cols_; }

  /// y = A x. Requires x.size() == cols().
  std::vector<double> MatVec(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Packed row-major lower-triangular matrix: row i stores entries
/// (i,0)..(i,i) contiguously at offset i(i+1)/2. Entries above the diagonal
/// are implicitly zero.
class TriangularMatrix {
 public:
  TriangularMatrix() = default;
  explicit TriangularMatrix(std::size_t n);

  std::size_t size() const { return n_; }

  double& at(std::size_t i, std::size_t j) {
    return data_[i * (i + 1) / 2 + j];
  }
  double at(std::size_t i, std::size_t j) const {
    return data_[i * (i + 1) / 2 + j];
  }

  /// Contiguous row i: entries (i,0)..(i,i).
  double* Row(std::size_t i) { return data_.data() + i * (i + 1) / 2; }
  const double* Row(std::size_t i) const {
    return data_.data() + i * (i + 1) / 2;
  }

  /// Reserves storage for `n` rows without changing the logical size.
  void Reserve(std::size_t n) { data_.reserve(n * (n + 1) / 2); }

  /// Appends row n as (row[0], ..., row[n]); O(n), no copy of prior rows.
  void AppendRow(std::span<const double> row);

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric
/// positive-definite matrix. Adds `jitter` to the diagonal before
/// factorizing; throws CheckError if the matrix is still not PD.
Matrix CholeskyFactor(const Matrix& a, double jitter = 1e-10);

/// Packed-storage Cholesky of a packed SPD lower triangle; bit-identical to
/// CholeskyFactor on the equivalent dense matrix.
TriangularMatrix CholeskyFactor(const TriangularMatrix& a,
                                double jitter = 1e-10);

/// Rank-1 factor extension: given the factor L of A, appends the row that
/// makes `l` the factor of [[A, k], [k^T, kappa + jitter]] in O(n^2) —
/// bit-identical to refactorizing the extended matrix from scratch. Throws
/// CheckError when the extended matrix is not PD. Returns the new diagonal
/// entry L(n, n).
double CholeskyAppendRow(TriangularMatrix& l, std::span<const double> k,
                         double kappa, double jitter = 1e-10);

/// Solves L x = b for lower-triangular L.
std::vector<double> SolveLower(const Matrix& l, std::span<const double> b);
std::vector<double> SolveLower(const TriangularMatrix& l,
                               std::span<const double> b);

/// Solves L^T x = b for lower-triangular L (i.e. an upper-triangular solve).
std::vector<double> SolveLowerTranspose(const Matrix& l,
                                        std::span<const double> b);
std::vector<double> SolveLowerTranspose(const TriangularMatrix& l,
                                        std::span<const double> b);

/// Multi-RHS forward substitution, solving L X = B in place where B holds
/// one right-hand side per *column* (B is l.size() x m). One blocked pass
/// over L serves all m systems — the inner loops run contiguously along
/// rows of B — and each column's result is bit-identical to the scalar
/// SolveLower on that column.
void SolveLowerInPlace(const TriangularMatrix& l, Matrix& b);

/// Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace hypertune
