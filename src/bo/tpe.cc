#include "bo/tpe.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {

TpeSampler::TpeSampler(SearchSpace space, TpeOptions options)
    : space_(std::move(space)), options_(options) {
  HT_CHECK(options_.top_fraction > 0 && options_.top_fraction < 1);
  HT_CHECK(options_.random_fraction >= 0 && options_.random_fraction <= 1);
  HT_CHECK(options_.num_candidates > 0);
}

std::size_t TpeSampler::MinPoints() const {
  if (options_.min_points > 0) return options_.min_points;
  return space_.NumParams() + 1;
}

double TpeSampler::ModelResource() const {
  // Need enough points that both the good and bad sets are non-trivial.
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    const std::size_t n = it->second.points.size();
    const auto n_good = static_cast<std::size_t>(
        std::ceil(options_.top_fraction * static_cast<double>(n)));
    if (n_good >= MinPoints() && n - n_good >= MinPoints()) return it->first;
  }
  return -1;
}

void TpeSampler::Observe(const Configuration& config, double resource,
                         double loss) {
  if (!std::isfinite(loss)) return;
  auto& level = levels_[resource];
  level.points.push_back(space_.ToUnitVector(config));
  level.losses.push_back(loss);
  level.model.reset();  // densities are stale; rebuild on next Sample
}

const TpeSampler::LevelModel& TpeSampler::ModelFor(LevelData& level) const {
  if (level.model != nullptr) return *level.model;

  const auto order = ArgsortAscending(level.losses);
  const auto n = order.size();
  const auto n_good = static_cast<std::size_t>(
      std::ceil(options_.top_fraction * static_cast<double>(n)));
  std::vector<std::vector<double>> good, bad;
  good.reserve(n_good);
  bad.reserve(n - n_good);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_good) {
      good.push_back(level.points[order[i]]);
    } else {
      bad.push_back(level.points[order[i]]);
    }
  }
  level.model = std::make_unique<LevelModel>(LevelModel{
      KernelDensityEstimator(std::move(good), 1e-3, options_.bandwidth_factor),
      KernelDensityEstimator(std::move(bad), 1e-3,
                             options_.bandwidth_factor)});
  return *level.model;
}

Configuration TpeSampler::Sample(Rng& rng) {
  const double model_resource = ModelResource();
  if (model_resource < 0 || rng.Bernoulli(options_.random_fraction)) {
    return space_.Sample(rng);
  }
  // The KDE pair only changes when new observations land at the level, but
  // BOHB samples between every pair of completions — cache it.
  const LevelModel& model = ModelFor(levels_.at(model_resource));
  const KernelDensityEstimator& good_kde = model.good;
  const KernelDensityEstimator& bad_kde = model.bad;

  std::vector<double> best_point;
  double best_ratio = -1;
  for (std::size_t c = 0; c < options_.num_candidates; ++c) {
    auto candidate = good_kde.Sample(rng);
    const double g = good_kde.Pdf(candidate);
    const double b = std::max(bad_kde.Pdf(candidate), 1e-32);
    const double ratio = g / b;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_point = std::move(candidate);
    }
  }
  return space_.FromUnitVector(best_point);
}

}  // namespace hypertune
