// TPE-style model-based configuration sampler, following BOHB (Falkner et
// al. 2018): per resource level, split observations into "good" (best
// top_fraction) and "bad", fit a KDE to each, and sample configurations
// maximizing the density ratio good(x)/bad(x). Modeling always uses the
// highest resource level with enough observations; until then (and with
// probability `random_fraction` forever) sampling is uniform.
//
// Plugged into SyncShaScheduler this reproduces BOHB; plugged into
// AshaScheduler it gives the "ASHA + adaptive sampling" extension the
// paper's conclusion sketches.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "bo/kde.h"
#include "core/sampler.h"

namespace hypertune {

struct TpeOptions {
  /// Fraction of observations (per resource level) labeled "good".
  double top_fraction = 0.15;
  /// Probability of falling back to a uniform random sample (BOHB default).
  double random_fraction = 1.0 / 3.0;
  /// Minimum observations at a level before its model is used; defaults to
  /// dim + 1 when 0.
  std::size_t min_points = 0;
  /// Candidates drawn from the good KDE per suggestion.
  std::size_t num_candidates = 32;
  /// BOHB widens KDE bandwidths by this factor to keep exploring.
  double bandwidth_factor = 3.0;
};

class TpeSampler final : public ConfigSampler {
 public:
  TpeSampler(SearchSpace space, TpeOptions options = {});

  Configuration Sample(Rng& rng) override;
  void Observe(const Configuration& config, double resource,
               double loss) override;

  const SearchSpace& space() const { return space_; }

  /// Highest resource level currently holding a usable model (-1 if none);
  /// exposed for tests.
  double ModelResource() const;

 private:
  struct LevelModel {
    KernelDensityEstimator good;
    KernelDensityEstimator bad;
  };
  struct LevelData {
    std::vector<std::vector<double>> points;
    std::vector<double> losses;
    /// Good/bad KDEs fitted to the current points; rebuilt lazily on the
    /// next Sample after an observation lands at this level. Caching only
    /// skips recomputation of identical density models, so sampling
    /// decisions are unchanged.
    std::unique_ptr<LevelModel> model;
  };

  std::size_t MinPoints() const;
  /// The cached (or freshly built) KDE pair for one level's data.
  const LevelModel& ModelFor(LevelData& level) const;

  SearchSpace space_;
  TpeOptions options_;
  std::map<double, LevelData> levels_;
};

}  // namespace hypertune
