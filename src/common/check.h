// Lightweight runtime-check utilities used across the library.
//
// We prefer throwing a descriptive exception over aborting: tuners are often
// embedded in long-running services, and callers should be able to recover
// from a misconfigured search space or scheduler without losing the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hypertune {

/// Error thrown when a precondition or invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace hypertune

/// Validates `cond`; throws hypertune::CheckError with location info if false.
#define HT_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond))                                                             \
      ::hypertune::detail::CheckFail(__FILE__, __LINE__, #cond, "");         \
  } while (0)

/// Like HT_CHECK but appends a formatted message built from `msg_expr`
/// (anything streamable into an ostream).
#define HT_CHECK_MSG(cond, msg_expr)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream ht_check_os_;                                       \
      ht_check_os_ << msg_expr;                                              \
      ::hypertune::detail::CheckFail(__FILE__, __LINE__, #cond,              \
                                     ht_check_os_.str());                    \
    }                                                                        \
  } while (0)
