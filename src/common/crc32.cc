#include "common/crc32.h"

#include <array>

namespace hypertune {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace hypertune
