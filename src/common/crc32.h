// CRC-32 (IEEE 802.3, the zlib polynomial) over arbitrary bytes.
//
// Used to frame write-ahead-journal records (src/durability): each frame
// stores the CRC of its payload, so a torn or bit-rotted tail is detected
// by checksum mismatch rather than parsed as garbage. Table-driven,
// dependency-free, byte-order independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hypertune {

/// CRC-32 of `size` bytes starting at `data` (initial value 0).
std::uint32_t Crc32(const void* data, std::size_t size);

inline std::uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace hypertune
