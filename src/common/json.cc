#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace hypertune {

bool Json::AsBool() const {
  const auto* b = std::get_if<bool>(&value_);
  HT_CHECK_MSG(b != nullptr, "JSON value is not a bool");
  return *b;
}

double Json::AsDouble() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw CheckError("JSON value is not a number");
}

std::int64_t Json::AsInt() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* d = std::get_if<double>(&value_)) {
    HT_CHECK_MSG(std::floor(*d) == *d, "JSON number " << *d
                                                      << " is not integral");
    return static_cast<std::int64_t>(*d);
  }
  throw CheckError("JSON value is not a number");
}

const std::string& Json::AsString() const {
  const auto* s = std::get_if<std::string>(&value_);
  HT_CHECK_MSG(s != nullptr, "JSON value is not a string");
  return *s;
}

const JsonArray& Json::AsArray() const {
  const auto* a = std::get_if<JsonArray>(&value_);
  HT_CHECK_MSG(a != nullptr, "JSON value is not an array");
  return *a;
}

const JsonObject& Json::AsObject() const {
  const auto* o = std::get_if<JsonObject>(&value_);
  HT_CHECK_MSG(o != nullptr, "JSON value is not an object");
  return *o;
}

const Json& Json::at(std::string_view key) const {
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return v;
  }
  throw CheckError("JSON object has no key '" + std::string(key) + "'");
}

bool Json::Has(std::string_view key) const {
  if (!IsObject()) return false;
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(std::size_t index) const {
  const auto& array = AsArray();
  HT_CHECK_MSG(index < array.size(), "JSON array index " << index
                                                         << " out of range");
  return array[index];
}

std::size_t Json::size() const {
  if (IsArray()) return AsArray().size();
  if (IsObject()) return AsObject().size();
  throw CheckError("JSON value has no size");
}

void Json::PushBack(Json value) {
  if (IsNull()) value_ = JsonArray{};
  auto* array = std::get_if<JsonArray>(&value_);
  HT_CHECK_MSG(array != nullptr, "PushBack on non-array JSON value");
  array->push_back(std::move(value));
}

void Json::Set(std::string key, Json value) {
  if (IsNull()) value_ = JsonObject{};
  auto* object = std::get_if<JsonObject>(&value_);
  HT_CHECK_MSG(object != nullptr, "Set on non-object JSON value");
  for (auto& [k, v] : *object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object->emplace_back(std::move(key), std::move(value));
}

namespace {

void EscapeInto(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void DumpNumber(std::ostringstream& os, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    os << "null";  // JSON has no NaN/Inf; export as null
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os << buf;
}

}  // namespace

namespace {

struct DumpContext {
  int indent;
  void NewlineIndent(std::ostringstream& os, int depth) const {
    if (indent < 0) return;
    os << '\n' << std::string(static_cast<std::size_t>(indent * depth), ' ');
  }
};

void DumpValue(const Json& value, std::ostringstream& os,
               const DumpContext& ctx, int depth);

void DumpArray(const JsonArray& array, std::ostringstream& os,
               const DumpContext& ctx, int depth) {
  if (array.empty()) {
    os << "[]";
    return;
  }
  os << '[';
  bool first = true;
  for (const auto& element : array) {
    if (!first) os << ',';
    first = false;
    ctx.NewlineIndent(os, depth + 1);
    DumpValue(element, os, ctx, depth + 1);
  }
  ctx.NewlineIndent(os, depth);
  os << ']';
}

void DumpObject(const JsonObject& object, std::ostringstream& os,
                const DumpContext& ctx, int depth) {
  if (object.empty()) {
    os << "{}";
    return;
  }
  os << '{';
  bool first = true;
  for (const auto& [key, element] : object) {
    if (!first) os << ',';
    first = false;
    ctx.NewlineIndent(os, depth + 1);
    EscapeInto(os, key);
    os << (ctx.indent < 0 ? ":" : ": ");
    DumpValue(element, os, ctx, depth + 1);
  }
  ctx.NewlineIndent(os, depth);
  os << '}';
}

void DumpValue(const Json& value, std::ostringstream& os,
               const DumpContext& ctx, int depth) {
  if (value.IsNull()) {
    os << "null";
  } else if (value.IsBool()) {
    os << (value.AsBool() ? "true" : "false");
  } else if (value.IsInt()) {
    os << value.AsInt();
  } else if (value.IsNumber()) {
    // Doubles keep a fractional/exponent marker so the int/double
    // distinction survives a round-trip.
    const double d = value.AsDouble();
    if (std::isfinite(d) && std::floor(d) == d && std::abs(d) < 1e15) {
      std::ostringstream tmp;
      tmp << static_cast<std::int64_t>(d) << ".0";
      os << tmp.str();
    } else {
      DumpNumber(os, d);
    }
  } else if (value.IsString()) {
    EscapeInto(os, value.AsString());
  } else if (value.IsArray()) {
    DumpArray(value.AsArray(), os, ctx, depth);
  } else {
    DumpObject(value.AsObject(), os, ctx, depth);
  }
}

}  // namespace

std::string Json::Dump(int indent) const {
  std::ostringstream os;
  DumpValue(*this, os, DumpContext{indent}, 0);
  return os.str();
}

// ---------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipWhitespace();
    Require(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw CheckError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

  void Require(bool condition, const char* message) const {
    if (!condition) Fail(message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    Require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    Require(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return Json(ParseString());
    if (ConsumeLiteral("null")) return Json();
    if (ConsumeLiteral("true")) return Json(true);
    if (ConsumeLiteral("false")) return Json(false);
    return ParseNumber();
  }

  Json ParseObject() {
    Expect('{');
    JsonObject object;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(object));
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      object.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect('}');
      return Json(std::move(object));
    }
  }

  Json ParseArray() {
    Expect('[');
    JsonArray array;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(array));
    for (;;) {
      array.push_back(ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      Expect(']');
      return Json(std::move(array));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      Require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      Require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          Require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("invalid \\u escape");
          }
          // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("invalid escape character");
      }
    }
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    Require(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    const bool integral =
        token.find_first_of(".eE") == std::string::npos;
    try {
      if (integral) return Json(static_cast<std::int64_t>(std::stoll(token)));
      return Json(std::stod(token));
    } catch (const std::exception&) {
      Fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace hypertune
