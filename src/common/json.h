// A small self-contained JSON value type with serializer and parser — the
// export/import glue for experiment artifacts (trial logs, tuning results).
// Deliberately minimal: UTF-8 pass-through, doubles + int64 numbers,
// insertion-ordered objects (stable, diff-able output).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace hypertune {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered key/value list (keys assumed unique by construction).
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  /// Null by default.
  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : value_(value) {}
  Json(double value) : value_(value) {}
  Json(int value) : value_(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value) : value_(value) {}
  Json(std::uint64_t value) : value_(static_cast<std::int64_t>(value)) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(JsonArray value) : value_(std::move(value)) {}
  Json(JsonObject value) : value_(std::move(value)) {}

  bool IsNull() const { return std::holds_alternative<std::monostate>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }
  bool IsNumber() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  /// True for numbers stored integrally (parsed without '.'/exponent).
  bool IsInt() const { return std::holds_alternative<std::int64_t>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool IsObject() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw CheckError on type mismatch. AsDouble widens
  /// integers; AsInt requires an integral value (or an exactly-integral
  /// double).
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  const JsonObject& AsObject() const;

  /// Object field lookup; throws CheckError when absent or not an object.
  const Json& at(std::string_view key) const;
  bool Has(std::string_view key) const;

  /// Array element; throws CheckError when out of range or not an array.
  const Json& at(std::size_t index) const;
  std::size_t size() const;

  /// Appends to an array (value must be an array or null; null becomes []).
  void PushBack(Json value);
  /// Sets an object field (value must be an object or null; null becomes {}).
  void Set(std::string key, Json value);

  /// Serializes; indent < 0 = compact single line, otherwise pretty-printed
  /// with the given indent width.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document; throws CheckError with position info
  /// on malformed input.
  static Json Parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::monostate, bool, double, std::int64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace hypertune
