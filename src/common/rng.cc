#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace hypertune {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Split(std::uint64_t salt) {
  // Mix fresh output with the salt through splitmix64 for a decorrelated
  // stream; consuming one draw here also advances this generator so repeated
  // Split(0) calls yield distinct children.
  std::uint64_t seed = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(SplitMix64(seed));
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  HT_CHECK_MSG(lo <= hi, "Uniform bounds inverted: [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * Uniform();
}

double Rng::LogUniform(double lo, double hi) {
  HT_CHECK_MSG(lo > 0.0 && lo <= hi,
               "LogUniform requires 0 < lo <= hi, got [" << lo << ", " << hi << ")");
  return std::exp(Uniform(std::log(lo), std::log(hi)));
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  HT_CHECK_MSG(lo <= hi, "UniformInt bounds inverted: [" << lo << ", " << hi << "]");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<std::int64_t>((*this)());
  }
  // Debiased modulo via rejection (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

std::size_t Rng::Index(std::size_t n) {
  HT_CHECK(n > 0);
  return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 is bounded away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  HT_CHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  HT_CHECK_MSG(p >= 0.0 && p <= 1.0, "Bernoulli p out of range: " << p);
  return Uniform() < p;
}

double Rng::Exponential(double rate) {
  HT_CHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace hypertune
