// Deterministic, splittable random number generation.
//
// Every stochastic component in hypertune takes an explicit `Rng&` so that
// simulations are reproducible bit-for-bit from a single seed. The engine is
// xoshiro256** (public domain, Blackman & Vigna), seeded via splitmix64 as
// its authors recommend. `Rng::Split` derives an independent stream, which we
// use to give each trial / worker / hazard source its own generator without
// coupling their consumption patterns.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hypertune {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions, though the built-in helpers below are preferred
/// for cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 random bits.
  result_type operator()();

  /// Derives an independent generator; deterministic in (this state, salt).
  Rng Split(std::uint64_t salt = 0);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Log-uniform double in [lo, hi). Requires 0 < lo <= hi.
  double LogUniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);

  /// Standard normal via Box–Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// Raw engine state, for service-style snapshot/restore. The cached
  /// Box-Muller spare is dropped on restore (one extra normal draw at most).
  std::array<std::uint64_t, 4> state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    s_ = state;
    has_spare_normal_ = false;
  }

  /// Box-Muller spare accessors, for snapshots that must reproduce the
  /// normal-draw sequence bit-for-bit (the durability layer's hazard
  /// stream). set_state() alone drops the spare; restoring it afterwards
  /// makes the round-trip exact.
  bool has_spare_normal() const { return has_spare_normal_; }
  double spare_normal() const { return spare_normal_; }
  void set_spare_normal(bool has_spare, double spare) {
    has_spare_normal_ = has_spare;
    spare_normal_ = spare;
  }

 private:
  std::array<std::uint64_t, 4> s_;
  // Box–Muller produces pairs; cache the spare.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hypertune
