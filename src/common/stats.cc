#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace hypertune {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double Stddev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::span<const double> xs, double q) {
  HT_CHECK(!xs.empty());
  HT_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of range: " << q);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

std::vector<std::size_t> ArgsortAscending(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  return idx;
}

std::vector<double> Ranks(std::span<const double> xs) {
  const auto order = ArgsortAscending(xs);
  std::vector<double> ranks(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    // Tie group [i, j): all equal values share the average rank.
    std::size_t j = i + 1;
    while (j < order.size() && xs[order[j]] == xs[order[i]]) ++j;
    const double average_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) ranks[order[k]] = average_rank;
    i = j;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> xs,
                           std::span<const double> ys) {
  HT_CHECK_MSG(xs.size() == ys.size() && xs.size() >= 2,
               "Spearman needs two equal-length samples of size >= 2");
  const auto rx = Ranks(xs);
  const auto ry = Ranks(ys);
  const double mx = Mean(rx);
  const double my = Mean(ry);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  if (sxx < 1e-12 || syy < 1e-12) return 0.0;  // constant input
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace hypertune
