// Small statistics helpers shared by the simulator, tuners, and analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hypertune {

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two elements.
double Variance(std::span<const double> xs);

/// Sample standard deviation.
double Stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Requires a non-empty span.
/// Matches numpy's default ("linear") method so paper-style quartile bands
/// are comparable.
double Quantile(std::span<const double> xs, double q);

/// Median shorthand.
double Median(std::span<const double> xs);

/// Welford running accumulator for streaming mean/variance.
class RunningStats {
 public:
  void Add(double x);
  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance; 0 with fewer than two observations.
  double Variance() const;
  double Stddev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the indices that would sort `xs` ascending (stable).
std::vector<std::size_t> ArgsortAscending(std::span<const double> xs);

/// Fractional ranks (average rank for ties), 1-based.
std::vector<double> Ranks(std::span<const double> xs);

/// Spearman rank correlation in [-1, 1]; requires two spans of equal size
/// >= 2. Returns 0 when either input is constant.
double SpearmanCorrelation(std::span<const double> xs,
                           std::span<const double> ys);

}  // namespace hypertune
