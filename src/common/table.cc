#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace hypertune {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HT_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  HT_CHECK_MSG(cells.size() <= header_.size(),
               "row has " << cells.size() << " cells, header has "
                          << header_.size());
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToMarkdown() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(cells[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) return false;
  }
  // Write-then-rename: the destination is only ever replaced by a fully
  // written file, so a crash mid-write can't leave a torn export behind.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace hypertune
