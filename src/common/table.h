// Plain-text table and CSV emission used by the bench harness to print the
// rows/series the paper's figures and tables report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hypertune {

/// Column-aligned text table with optional markdown framing.
///
/// Cells are strings; numeric formatting is the caller's concern (see
/// FormatDouble below). Rows shorter than the header are padded with "".
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  std::size_t NumRows() const { return rows_.size(); }

  /// Renders as a GitHub-flavored markdown table.
  std::string ToMarkdown() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.*f") without locale surprises.
std::string FormatDouble(double value, int precision = 4);

/// Writes `content` to `path` atomically (write to a sibling temp file,
/// then rename over the target), creating parent directories if needed. A
/// crash mid-write leaves either the old file or the new one, never a torn
/// half — results exports and telemetry dumps stay loadable. Returns false
/// (and leaves the destination untouched) on failure; bench binaries treat
/// output files as best-effort and still print to stdout.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace hypertune
