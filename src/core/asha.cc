#include "core/asha.h"

#include <cmath>

#include "common/check.h"
#include "core/trial_json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

Json TrialArgs(TrialId id, int bracket) {
  Json args = JsonObject{};
  args.Set("trial", Json(id));
  args.Set("bracket", Json(bracket));
  return args;
}

}  // namespace

AshaScheduler::AshaScheduler(std::shared_ptr<ConfigSampler> sampler,
                             AshaOptions options,
                             std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      geometry_(BracketGeometry::Make(options.r, options.R, options.eta,
                                      options.s)),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  if (options_.infinite_horizon) {
    rungs_.resize(1);  // grows on demand
  } else {
    rungs_.resize(static_cast<std::size_t>(geometry_.NumRungs()));
  }
}

const Rung& AshaScheduler::rung(std::size_t k) const {
  HT_CHECK_MSG(k < rungs_.size(), "rung " << k << " not instantiated");
  return rungs_[k];
}

Resource AshaScheduler::RungResource(int k) const {
  if (options_.infinite_horizon) {
    return options_.r * std::pow(options_.eta, options_.s + k);
  }
  return geometry_.RungResource(k);
}

bool AshaScheduler::IsTopRung(int k) const {
  if (options_.infinite_horizon) return false;  // no top rung
  return k == geometry_.NumRungs() - 1;
}

Job AshaScheduler::MakeJob(TrialId id, int rung) {
  Trial& trial = bank_->Get(id);
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource =
      options_.resume_from_checkpoint ? trial.resource_trained : 0.0;
  job.to_resource = RungResource(rung);
  job.rung = rung;
  job.bracket = options_.s;
  trial.status = TrialStatus::kRunning;
  ++jobs_in_flight_;
  resource_dispatched_ += job.to_resource - job.from_resource;
  in_flight_[id] = job;
  return job;
}

std::optional<Job> AshaScheduler::FindPromotion() {
  // Algorithm 2, get_job lines 13-19: scan from the highest promotable rung
  // down, promoting the best not-yet-promoted configuration among the top
  // floor(|rung|/eta).
  for (int k = static_cast<int>(rungs_.size()) - 1; k >= 0; --k) {
    if (IsTopRung(k)) continue;  // never promote out of the top rung
    const auto promotable =
        rungs_[static_cast<std::size_t>(k)].FirstPromotable(options_.eta);
    if (!promotable) continue;
    const TrialId id = *promotable;
    rungs_[static_cast<std::size_t>(k)].MarkPromoted(id);
    if (options_.infinite_horizon &&
        static_cast<std::size_t>(k) + 1 == rungs_.size()) {
      rungs_.emplace_back();  // grow the bracket upward (Section 3.3)
    }
    if (telemetry_ != nullptr) {
      Json args = TrialArgs(id, options_.s);
      args.Set("from_rung", Json(k));
      args.Set("to_rung", Json(k + 1));
      telemetry_->Event("trial_promoted", "trial", std::move(args));
      telemetry_->Count("scheduler.promotions");
    }
    return MakeJob(id, k + 1);
  }
  return std::nullopt;
}

std::optional<Job> AshaScheduler::GetJob() {
  if (auto promotion = FindPromotion()) return promotion;
  // Algorithm 2 line 20: no promotion possible — grow the bottom rung.
  if (options_.max_trials >= 0 && trials_created_ >= options_.max_trials) {
    return std::nullopt;
  }
  Configuration config = sampler_->Sample(rng_);
  const TrialId id = bank_->Create(std::move(config), options_.s);
  ++trials_created_;
  if (telemetry_ != nullptr) {
    telemetry_->Event("trial_sampled", "trial", TrialArgs(id, options_.s));
    telemetry_->Count("scheduler.trials_sampled");
  }
  return MakeJob(id, 0);
}

void AshaScheduler::ReportResult(const Job& job, double loss) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  in_flight_.erase(job.trial_id);
  Trial& trial = bank_->Get(job.trial_id);
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  rungs_.at(static_cast<std::size_t>(job.rung)).Record(job.trial_id, loss);
  trial.status = IsTopRung(job.rung) ? TrialStatus::kCompleted
                                     : TrialStatus::kPaused;
  if (telemetry_ != nullptr) {
    telemetry_->Count("scheduler.results");
    if (trial.status == TrialStatus::kCompleted) {
      Json args = TrialArgs(job.trial_id, options_.s);
      args.Set("loss", Json(loss));
      args.Set("resource", Json(job.to_resource));
      telemetry_->Event("trial_completed", "trial", std::move(args));
    }
  }
  // Section 3.3: ASHA uses intermediate losses for its recommendation.
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
  sampler_->Observe(trial.config, job.to_resource, loss);
}

void AshaScheduler::ReportLost(const Job& job) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  in_flight_.erase(job.trial_id);
  // The configuration's work is gone; ASHA simply moves on (the robustness
  // property evaluated in Appendix A.1). If the trial had been promoted its
  // promotion mark stays — the slot is lost, not recycled.
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
  if (telemetry_ != nullptr) {
    Json args = TrialArgs(job.trial_id, options_.s);
    args.Set("rung", Json(job.rung));
    telemetry_->Event("trial_lost", "trial", std::move(args));
    telemetry_->Count("scheduler.jobs_lost");
  }
}

bool AshaScheduler::Finished() const {
  if (options_.max_trials < 0) return false;  // can always grow rung 0
  if (trials_created_ < options_.max_trials) return false;
  if (jobs_in_flight_ > 0) return false;  // completions may unlock promotions
  // O(1) per rung against the incremental promotable index — this runs on
  // every executor worker-loop iteration, so the old O(n)-scan,
  // vector-allocating PromotableTrials walk here throttled large fleets.
  for (int k = 0; k < static_cast<int>(rungs_.size()); ++k) {
    if (IsTopRung(k)) continue;
    if (rungs_[static_cast<std::size_t>(k)].HasPromotable(options_.eta)) {
      return false;
    }
  }
  return true;
}

std::optional<Recommendation> AshaScheduler::Current() const {
  return incumbent_.Current();
}

Json AshaScheduler::Snapshot() const { return SnapshotState(true); }

void AshaScheduler::Restore(const Json& snapshot, RestorePolicy policy) {
  RestoreState(snapshot, policy, true);
}

Json AshaScheduler::SnapshotState(bool include_bank) const {
  Json json = JsonObject{};
  // Bracket identity, validated on Restore.
  Json bracket = JsonObject{};
  bracket.Set("r", Json(options_.r));
  bracket.Set("R", Json(options_.R));
  bracket.Set("eta", Json(options_.eta));
  bracket.Set("s", Json(options_.s));
  bracket.Set("infinite_horizon", Json(options_.infinite_horizon));
  json.Set("bracket", std::move(bracket));

  if (include_bank) json.Set("trials", ToJson(*bank_));
  Json rungs = JsonArray{};
  for (const auto& rung : rungs_) {
    Json entry = JsonObject{};
    Json results = JsonArray{};
    Json promoted = JsonArray{};
    for (const auto& [loss, id] : rung.results()) {
      Json pair = JsonObject{};
      pair.Set("trial", Json(id));
      pair.Set("loss", Json(loss));
      results.PushBack(std::move(pair));
      if (rung.IsPromoted(id)) promoted.PushBack(Json(id));
    }
    entry.Set("results", std::move(results));
    entry.Set("promoted", std::move(promoted));
    rungs.PushBack(std::move(entry));
  }
  json.Set("rungs", std::move(rungs));

  Json in_flight = JsonArray{};
  for (const auto& [id, job] : in_flight_) {
    (void)id;
    in_flight.PushBack(ToJson(job));
  }
  json.Set("in_flight", std::move(in_flight));

  json.Set("trials_created", Json(trials_created_));
  json.Set("resource_dispatched", Json(resource_dispatched_));
  if (const auto rec = incumbent_.Current()) {
    Json entry = JsonObject{};
    entry.Set("trial", Json(rec->trial_id));
    entry.Set("loss", Json(rec->loss));
    entry.Set("resource", Json(rec->resource));
    json.Set("incumbent", std::move(entry));
  }
  Json rng_state = JsonArray{};
  for (std::uint64_t word : rng_.state()) {
    rng_state.PushBack(Json(static_cast<std::int64_t>(word)));
  }
  json.Set("rng", std::move(rng_state));
  return json;
}

void AshaScheduler::RestoreState(const Json& snapshot, RestorePolicy policy,
                                 bool restore_bank) {
  HT_CHECK_MSG(trials_created_ == 0 && jobs_in_flight_ == 0,
               "Restore requires a freshly constructed scheduler");
  if (restore_bank) {
    HT_CHECK_MSG(bank_->size() == 0,
                 "Restore requires an untouched trial bank");
  }
  const Json& bracket = snapshot.at("bracket");
  HT_CHECK_MSG(bracket.at("r").AsDouble() == options_.r &&
                   bracket.at("R").AsDouble() == options_.R &&
                   bracket.at("eta").AsDouble() == options_.eta &&
                   bracket.at("s").AsInt() == options_.s &&
                   bracket.at("infinite_horizon").AsBool() ==
                       options_.infinite_horizon,
               "snapshot bracket options do not match this scheduler");

  if (restore_bank) *bank_ = TrialBankFromJson(snapshot.at("trials"));

  const auto& rungs = snapshot.at("rungs").AsArray();
  rungs_.assign(std::max<std::size_t>(rungs.size(), 1), Rung{});
  if (!options_.infinite_horizon) {
    rungs_.resize(static_cast<std::size_t>(geometry_.NumRungs()));
    HT_CHECK_MSG(rungs.size() <= rungs_.size(),
                 "snapshot has more rungs than the bracket allows");
  }
  for (std::size_t k = 0; k < rungs.size(); ++k) {
    for (const auto& pair : rungs[k].at("results").AsArray()) {
      rungs_[k].Record(pair.at("trial").AsInt(), pair.at("loss").AsDouble());
    }
    for (const auto& id : rungs[k].at("promoted").AsArray()) {
      rungs_[k].MarkPromoted(id.AsInt());
    }
  }

  if (snapshot.Has("in_flight")) {
    for (const auto& entry : snapshot.at("in_flight").AsArray()) {
      Job job = JobFromJson(entry);
      in_flight_[job.trial_id] = job;
      ++jobs_in_flight_;
    }
  }

  trials_created_ = snapshot.at("trials_created").AsInt();
  resource_dispatched_ = snapshot.at("resource_dispatched").AsDouble();
  if (snapshot.Has("incumbent")) {
    const Json& rec = snapshot.at("incumbent");
    incumbent_.Offer(rec.at("trial").AsInt(), rec.at("loss").AsDouble(),
                     rec.at("resource").AsDouble());
  }
  std::array<std::uint64_t, 4> rng_state{};
  const auto& words = snapshot.at("rng").AsArray();
  HT_CHECK(words.size() == rng_state.size());
  for (std::size_t i = 0; i < rng_state.size(); ++i) {
    rng_state[i] = static_cast<std::uint64_t>(words[i].AsInt());
  }
  rng_.set_state(rng_state);

  if (policy == RestorePolicy::kDropInFlight) {
    // The workers died with the service: resolve every in-flight job as
    // lost, in ascending trial order for determinism.
    while (!in_flight_.empty()) {
      // Copy: ReportLost erases this map entry and keeps using the job.
      const Job job = in_flight_.begin()->second;
      ReportLost(job);
    }
  }
}

}  // namespace hypertune
