// ASHA — the Asynchronous Successive Halving Algorithm (Algorithm 2).
//
// Whenever a worker is free, GetJob() scans rungs top-down for a promotable
// configuration (among the best floor(|rung|/eta) of a rung, not yet
// promoted); if none exists it grows the bottom rung with a freshly sampled
// configuration. Promotions therefore never wait on rung completion, which
// removes synchronous SHA's straggler bottleneck at the cost of a vanishing
// fraction of mispromotions (Section 3.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/geometry.h"
#include "core/incumbent.h"
#include "core/rung.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct AshaOptions {
  /// Minimum resource r (before the early-stopping rate multiplier).
  double r = 1;
  /// Maximum per-configuration resource R. Ignored in the infinite horizon.
  double R = 256;
  /// Reduction factor eta >= 2.
  double eta = 4;
  /// Minimum early-stopping rate s: the bottom rung trains to r * eta^s.
  int s = 0;
  /// When true (paper Section 3.2, iterative training), promoted trials
  /// resume from their checkpoint and only pay the resource increment;
  /// when false every job retrains from scratch.
  bool resume_from_checkpoint = true;
  /// Section 3.3: when true, promotions are never capped at R and the
  /// bracket grows upward indefinitely.
  bool infinite_horizon = false;
  /// Optional cap on the number of configurations sampled into the bottom
  /// rung (-1 = unlimited). Useful for tests and for emulating a fixed
  /// candidate pool.
  std::int64_t max_trials = -1;
  /// Seed for the configuration-sampling stream.
  std::uint64_t seed = 1;
  /// Reported by name(); lets wrappers (ASHA + model-based samplers) label
  /// themselves.
  std::string display_name = "ASHA";
};

class AshaScheduler final : public Scheduler {
 public:
  /// `bank` may be shared with sibling schedulers (asynchronous Hyperband);
  /// when null a private bank is created.
  AshaScheduler(std::shared_ptr<ConfigSampler> sampler, AshaOptions options,
                std::shared_ptr<TrialBank> bank = nullptr);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return options_.display_name; }
  void SetTelemetry(Telemetry* telemetry) override { telemetry_ = telemetry; }

  const AshaOptions& options() const { return options_; }

  /// Number of rungs currently instantiated (fixed in the finite horizon).
  std::size_t NumRungs() const { return rungs_.size(); }
  const Rung& rung(std::size_t k) const;

  /// Resource a configuration is trained to at rung k.
  Resource RungResource(int k) const;

  /// Total resource units dispatched so far (sum of job costs, counting
  /// checkpoint resume). Asynchronous Hyperband uses this to decide when a
  /// hypothetical synchronous bracket's budget is depleted.
  double ResourceDispatched() const { return resource_dispatched_; }

  /// Number of configurations this scheduler has sampled.
  std::int64_t NumTrialsCreated() const { return trials_created_; }

  /// Service-style crash recovery: captures trials, rung results, promotion
  /// marks, in-flight jobs, counters, and the sampling RNG as a JSON
  /// document. With RestorePolicy::kDropInFlight (the default) in-flight
  /// jobs are resolved as lost on Restore, exactly as if the workers died
  /// with the service process; kKeepInFlight leaves them open for a
  /// durability layer to settle.
  bool SupportsSnapshot() const override { return true; }
  Json Snapshot() const override;
  void Restore(const Json& snapshot, RestorePolicy policy) override;
  using Scheduler::Restore;

  /// Composite-scheduler hooks (asynchronous Hyperband): snapshot without
  /// the shared trial bank / restore assuming the composite already
  /// restored it. Everyone else wants Snapshot()/Restore().
  Json SnapshotState(bool include_bank) const;
  void RestoreState(const Json& snapshot, RestorePolicy policy,
                    bool restore_bank);

 private:
  bool IsTopRung(int k) const;
  std::optional<Job> FindPromotion();
  Job MakeJob(TrialId id, int rung);

  std::shared_ptr<ConfigSampler> sampler_;
  AshaOptions options_;
  std::shared_ptr<TrialBank> bank_;
  BracketGeometry geometry_;
  std::vector<Rung> rungs_;
  IncumbentTracker incumbent_;
  Telemetry* telemetry_ = nullptr;
  Rng rng_;
  std::int64_t trials_created_ = 0;
  std::int64_t jobs_in_flight_ = 0;
  double resource_dispatched_ = 0;
  /// The jobs behind jobs_in_flight_, keyed by trial (a trial has at most
  /// one job in flight). Carried so Snapshot can capture them and Restore
  /// can resolve or re-open them.
  std::map<TrialId, Job> in_flight_;
};

}  // namespace hypertune
