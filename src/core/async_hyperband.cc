#include "core/async_hyperband.h"

#include <cmath>

#include "common/check.h"
#include "common/json.h"
#include "core/geometry.h"
#include "core/trial_json.h"

namespace hypertune {

AsyncHyperbandScheduler::AsyncHyperbandScheduler(
    std::shared_ptr<ConfigSampler> sampler, AsyncHyperbandOptions options,
    std::shared_ptr<TrialBank> bank)
    : bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()) {
  HT_CHECK(sampler != nullptr);
  const int s_max = SMax(options.r, options.R, options.eta);
  for (int s = 0; s <= s_max; ++s) {
    AshaOptions asha;
    asha.r = options.r;
    asha.R = options.R;
    asha.eta = options.eta;
    asha.s = s;
    asha.resume_from_checkpoint = options.resume_from_checkpoint;
    asha.seed = options.seed + static_cast<std::uint64_t>(s);
    brackets_.push_back(
        std::make_unique<AshaScheduler>(sampler, asha, bank_));

    const auto geometry =
        BracketGeometry::Make(options.r, options.R, options.eta, s);
    const auto n_s = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(options.n0) *
                                    std::pow(options.eta, -s)));
    bracket_budget_.push_back(
        geometry.TotalBudget(n_s, options.resume_from_checkpoint));
    budget_threshold_.push_back(0.0);
  }
  budget_threshold_[0] = bracket_budget_[0];
}

void AsyncHyperbandScheduler::AdvanceBracketIfDepleted() {
  // Rotate (possibly several times) until the current bracket has budget
  // remaining in its current visit.
  for (std::size_t hops = 0; hops <= brackets_.size(); ++hops) {
    const auto s = static_cast<std::size_t>(current_);
    if (brackets_[s]->ResourceDispatched() < budget_threshold_[s]) return;
    current_ = static_cast<int>((s + 1) % brackets_.size());
    const auto next = static_cast<std::size_t>(current_);
    if (budget_threshold_[next] <=
        brackets_[next]->ResourceDispatched()) {
      budget_threshold_[next] =
          brackets_[next]->ResourceDispatched() + bracket_budget_[next];
    }
  }
}

std::optional<Job> AsyncHyperbandScheduler::GetJob() {
  AdvanceBracketIfDepleted();
  // ASHA always has work (it can grow its bottom rung), so the current
  // bracket serves the request; job.bracket == s routes the report back.
  return brackets_[static_cast<std::size_t>(current_)]->GetJob();
}

void AsyncHyperbandScheduler::ReportResult(const Job& job, double loss) {
  auto& bracket = *brackets_.at(static_cast<std::size_t>(job.bracket));
  bracket.ReportResult(job, loss);
  // Like ASHA, asynchronous Hyperband recommends on intermediate losses.
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
}

void AsyncHyperbandScheduler::ReportLost(const Job& job) {
  brackets_.at(static_cast<std::size_t>(job.bracket))->ReportLost(job);
}

std::optional<Recommendation> AsyncHyperbandScheduler::Current() const {
  return incumbent_.Current();
}

Json AsyncHyperbandScheduler::Snapshot() const {
  Json json = JsonObject{};
  json.Set("num_brackets", Json(static_cast<std::int64_t>(brackets_.size())));
  json.Set("trials", ToJson(*bank_));
  Json brackets = JsonArray{};
  for (const auto& bracket : brackets_) {
    brackets.PushBack(bracket->SnapshotState(/*include_bank=*/false));
  }
  json.Set("brackets", std::move(brackets));
  Json thresholds = JsonArray{};
  for (double threshold : budget_threshold_) {
    thresholds.PushBack(Json(threshold));
  }
  json.Set("budget_threshold", std::move(thresholds));
  json.Set("current", Json(current_));
  if (const auto rec = incumbent_.Current()) {
    Json entry = JsonObject{};
    entry.Set("trial", Json(rec->trial_id));
    entry.Set("loss", Json(rec->loss));
    entry.Set("resource", Json(rec->resource));
    json.Set("incumbent", std::move(entry));
  }
  return json;
}

void AsyncHyperbandScheduler::Restore(const Json& snapshot,
                                      RestorePolicy policy) {
  HT_CHECK_MSG(bank_->size() == 0,
               "Restore requires a freshly constructed scheduler");
  HT_CHECK_MSG(snapshot.at("num_brackets").AsInt() ==
                   static_cast<std::int64_t>(brackets_.size()),
               "snapshot bracket count does not match this scheduler");
  *bank_ = TrialBankFromJson(snapshot.at("trials"));
  const auto& brackets = snapshot.at("brackets").AsArray();
  HT_CHECK(brackets.size() == brackets_.size());
  for (std::size_t s = 0; s < brackets.size(); ++s) {
    brackets_[s]->RestoreState(brackets[s], policy, /*restore_bank=*/false);
  }
  const auto& thresholds = snapshot.at("budget_threshold").AsArray();
  HT_CHECK(thresholds.size() == budget_threshold_.size());
  for (std::size_t s = 0; s < thresholds.size(); ++s) {
    budget_threshold_[s] = thresholds[s].AsDouble();
  }
  current_ = static_cast<int>(snapshot.at("current").AsInt());
  if (snapshot.Has("incumbent")) {
    const Json& rec = snapshot.at("incumbent");
    incumbent_.Offer(rec.at("trial").AsInt(), rec.at("loss").AsDouble(),
                     rec.at("resource").AsDouble());
  }
}

}  // namespace hypertune
