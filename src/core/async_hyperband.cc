#include "core/async_hyperband.h"

#include <cmath>

#include "common/check.h"
#include "core/geometry.h"

namespace hypertune {

AsyncHyperbandScheduler::AsyncHyperbandScheduler(
    std::shared_ptr<ConfigSampler> sampler, AsyncHyperbandOptions options,
    std::shared_ptr<TrialBank> bank)
    : bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()) {
  HT_CHECK(sampler != nullptr);
  const int s_max = SMax(options.r, options.R, options.eta);
  for (int s = 0; s <= s_max; ++s) {
    AshaOptions asha;
    asha.r = options.r;
    asha.R = options.R;
    asha.eta = options.eta;
    asha.s = s;
    asha.resume_from_checkpoint = options.resume_from_checkpoint;
    asha.seed = options.seed + static_cast<std::uint64_t>(s);
    brackets_.push_back(
        std::make_unique<AshaScheduler>(sampler, asha, bank_));

    const auto geometry =
        BracketGeometry::Make(options.r, options.R, options.eta, s);
    const auto n_s = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(options.n0) *
                                    std::pow(options.eta, -s)));
    bracket_budget_.push_back(
        geometry.TotalBudget(n_s, options.resume_from_checkpoint));
    budget_threshold_.push_back(0.0);
  }
  budget_threshold_[0] = bracket_budget_[0];
}

void AsyncHyperbandScheduler::AdvanceBracketIfDepleted() {
  // Rotate (possibly several times) until the current bracket has budget
  // remaining in its current visit.
  for (std::size_t hops = 0; hops <= brackets_.size(); ++hops) {
    const auto s = static_cast<std::size_t>(current_);
    if (brackets_[s]->ResourceDispatched() < budget_threshold_[s]) return;
    current_ = static_cast<int>((s + 1) % brackets_.size());
    const auto next = static_cast<std::size_t>(current_);
    if (budget_threshold_[next] <=
        brackets_[next]->ResourceDispatched()) {
      budget_threshold_[next] =
          brackets_[next]->ResourceDispatched() + bracket_budget_[next];
    }
  }
}

std::optional<Job> AsyncHyperbandScheduler::GetJob() {
  AdvanceBracketIfDepleted();
  // ASHA always has work (it can grow its bottom rung), so the current
  // bracket serves the request; job.bracket == s routes the report back.
  return brackets_[static_cast<std::size_t>(current_)]->GetJob();
}

void AsyncHyperbandScheduler::ReportResult(const Job& job, double loss) {
  auto& bracket = *brackets_.at(static_cast<std::size_t>(job.bracket));
  bracket.ReportResult(job, loss);
  // Like ASHA, asynchronous Hyperband recommends on intermediate losses.
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
}

void AsyncHyperbandScheduler::ReportLost(const Job& job) {
  brackets_.at(static_cast<std::size_t>(job.bracket))->ReportLost(job);
}

std::optional<Recommendation> AsyncHyperbandScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
