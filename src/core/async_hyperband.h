// Asynchronous Hyperband (Section 3.2, last paragraph; used in Figures 3
// and 5): loops through brackets of ASHA with early-stopping rates
// s = 0 .. s_max, switching brackets when a budget corresponding to a
// hypothetical synchronous SHA bracket would be depleted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/asha.h"
#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct AsyncHyperbandOptions {
  /// Bottom-rung size of the hypothetical SHA bracket at s = 0, used only
  /// to size per-bracket budgets.
  std::size_t n0 = 256;
  double r = 1;
  double R = 256;
  double eta = 4;
  bool resume_from_checkpoint = true;
  std::uint64_t seed = 1;
};

class AsyncHyperbandScheduler final : public Scheduler {
 public:
  AsyncHyperbandScheduler(std::shared_ptr<ConfigSampler> sampler,
                          AsyncHyperbandOptions options,
                          std::shared_ptr<TrialBank> bank = nullptr);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override { return false; }
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Hyperband (async)"; }
  void SetTelemetry(Telemetry* telemetry) override {
    for (auto& bracket : brackets_) bracket->SetTelemetry(telemetry);
  }

  /// Early-stopping rate of the ASHA bracket jobs are currently drawn from.
  int CurrentBracket() const { return current_; }
  std::size_t NumBrackets() const { return brackets_.size(); }
  const AshaScheduler& bracket(std::size_t s) const { return *brackets_.at(s); }

  /// Crash recovery: the shared trial bank, each ASHA bracket's state (bank
  /// omitted), the budget rotation thresholds, and the incumbent. The fixed
  /// bracket set and per-bracket budgets are re-derived by the constructor.
  bool SupportsSnapshot() const override { return true; }
  Json Snapshot() const override;
  void Restore(const Json& snapshot, RestorePolicy policy) override;
  using Scheduler::Restore;

 private:
  void AdvanceBracketIfDepleted();

  std::shared_ptr<TrialBank> bank_;
  std::vector<std::unique_ptr<AshaScheduler>> brackets_;
  /// Hypothetical synchronous-bracket budget for each s.
  std::vector<double> bracket_budget_;
  /// Dispatched-resource level at which the current visit to bracket s ends.
  std::vector<double> budget_threshold_;
  IncumbentTracker incumbent_;
  int current_ = 0;
};

}  // namespace hypertune
