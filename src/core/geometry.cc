#include "core/geometry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hypertune {

int SMax(double r, double R, double eta) {
  HT_CHECK_MSG(r > 0 && R >= r, "need 0 < r <= R, got r=" << r << " R=" << R);
  HT_CHECK_MSG(eta >= 2.0, "eta must be >= 2, got " << eta);
  // Largest k with r * eta^k <= R, with a relative tolerance so exact powers
  // (R/r == eta^k) are not lost to rounding.
  int k = 0;
  double level = r;
  while (level * eta <= R * (1.0 + 1e-9)) {
    level *= eta;
    ++k;
  }
  return k;
}

BracketGeometry BracketGeometry::Make(double r, double R, double eta, int s) {
  BracketGeometry g;
  g.r = r;
  g.R = R;
  g.eta = eta;
  g.s_max = SMax(r, R, eta);
  HT_CHECK_MSG(s >= 0 && s <= g.s_max,
               "early-stopping rate s=" << s << " outside [0, " << g.s_max
                                        << "]");
  g.s = s;
  return g;
}

Resource BracketGeometry::RungResource(int k) const {
  HT_CHECK_MSG(k >= 0 && k < NumRungs(),
               "rung " << k << " outside bracket with " << NumRungs()
                       << " rungs");
  if (k == NumRungs() - 1) return R;  // top rung is exactly R
  return std::min(R, r * std::pow(eta, s + k));
}

std::vector<std::size_t> BracketGeometry::RungSizes(std::size_t n) const {
  std::vector<std::size_t> sizes;
  sizes.reserve(static_cast<std::size_t>(NumRungs()));
  double count = static_cast<double>(n);
  for (int k = 0; k < NumRungs(); ++k) {
    sizes.push_back(static_cast<std::size_t>(count));
    count = std::floor(count / eta);
  }
  return sizes;
}

double BracketGeometry::TotalBudget(std::size_t n,
                                    bool resume_from_checkpoint) const {
  const auto sizes = RungSizes(n);
  double total = 0.0;
  for (int k = 0; k < NumRungs(); ++k) {
    const double target = RungResource(k);
    const double prev = k == 0 ? 0.0 : RungResource(k - 1);
    const double cost = resume_from_checkpoint && k > 0 ? target - prev : target;
    total += static_cast<double>(sizes[static_cast<std::size_t>(k)]) * cost;
  }
  return total;
}

}  // namespace hypertune
