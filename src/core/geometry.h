// Bracket geometry: rung counts, per-rung resources and configuration counts
// for the successive-halving family, computed once and shared by SHA, ASHA,
// and both Hyperband variants.
#pragma once

#include <vector>

#include "core/types.h"

namespace hypertune {

/// Geometry of one bracket with early-stopping rate `s`.
///
/// With minimum resource r, maximum resource R, and reduction factor eta,
/// s_max = floor(log_eta(R / r)) and bracket s has rungs k = 0 .. s_max - s,
/// where rung k trains to r * eta^(s + k) (capped at R at the top).
struct BracketGeometry {
  double r = 1;
  double R = 1;
  double eta = 2;
  int s = 0;
  int s_max = 0;

  /// Builds the geometry; validates r <= R, eta >= 2, 0 <= s <= s_max.
  static BracketGeometry Make(double r, double R, double eta, int s);

  /// Number of rungs in this bracket (s_max - s + 1).
  int NumRungs() const { return s_max - s + 1; }

  /// Resource a configuration is trained to at rung k (0-based). The top
  /// rung is exactly R.
  Resource RungResource(int k) const;

  /// Configuration counts per rung for a *synchronous* bracket that starts
  /// with n configurations: n_k = floor(n / eta^k), per Algorithm 1 line 7.
  std::vector<std::size_t> RungSizes(std::size_t n) const;

  /// Total resource a synchronous bracket with n starting configurations
  /// consumes: sum over rungs of n_k * RungResource(k). (Without
  /// checkpoint resume; with resume, later rungs only pay increments.)
  double TotalBudget(std::size_t n, bool resume_from_checkpoint) const;
};

/// floor(log_eta(R / r)) computed robustly (integer loop, tolerant of
/// floating-point ratios like R/r = 256.00000000001).
int SMax(double r, double R, double eta);

}  // namespace hypertune
