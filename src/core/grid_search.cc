#include "core/grid_search.h"

#include "common/check.h"

namespace hypertune {

GridSearchScheduler::GridSearchScheduler(SearchSpace space,
                                         GridSearchOptions options)
    : space_(std::move(space)),
      options_(options),
      bank_(std::make_shared<TrialBank>()) {
  HT_CHECK(options_.R > 0);
  HT_CHECK(options_.resolution >= 1);
  HT_CHECK(space_.NumParams() > 0);
  for (std::size_t i = 0; i < space_.NumParams(); ++i) {
    const Domain& domain = space_.domain(i);
    const std::size_t cardinality = domain.Cardinality();
    if (cardinality > 0) {
      dims_.push_back(std::min(cardinality, options_.resolution));
    } else {
      dims_.push_back(options_.resolution);
    }
  }
}

std::size_t GridSearchScheduler::GridSize() const {
  std::size_t total = 1;
  for (std::size_t d : dims_) total *= d;
  return total;
}

Configuration GridSearchScheduler::PointAt(std::size_t index) const {
  Configuration config;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const std::size_t coord = index % dims_[i];
    index /= dims_[i];
    // Bucket midpoints keep points interior (0.5/n, 1.5/n, ...).
    const double u = (static_cast<double>(coord) + 0.5) /
                     static_cast<double>(dims_[i]);
    config.Set(space_.name(i), space_.domain(i).FromUnit(u));
  }
  return config;
}

std::optional<Job> GridSearchScheduler::GetJob() {
  if (next_index_ >= GridSize()) return std::nullopt;
  Configuration config = PointAt(next_index_++);
  const TrialId id = bank_->Create(std::move(config), /*bracket=*/0);
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  ++jobs_in_flight_;
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = options_.R;
  return job;
}

void GridSearchScheduler::ReportResult(const Job& job, double loss) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  bank_->Get(job.trial_id).status = TrialStatus::kCompleted;
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
}

void GridSearchScheduler::ReportLost(const Job& job) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
}

bool GridSearchScheduler::Finished() const {
  return next_index_ >= GridSize() && jobs_in_flight_ == 0;
}

std::optional<Recommendation> GridSearchScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
