// Grid search: exhaustively evaluates a Cartesian grid over the search
// space at the full resource R. The classical baseline the paper's
// introduction dismisses for high-dimensional spaces — included so users
// can measure exactly why (grid size explodes as resolution^d).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/incumbent.h"
#include "core/scheduler.h"
#include "searchspace/space.h"

namespace hypertune {

struct GridSearchOptions {
  double R = 256;
  /// Points per continuous/integer dimension (choices enumerate all
  /// options). Grid size is the product across dimensions.
  std::size_t resolution = 4;
};

class GridSearchScheduler final : public Scheduler {
 public:
  GridSearchScheduler(SearchSpace space, GridSearchOptions options);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Grid"; }

  /// Total number of grid points.
  std::size_t GridSize() const;

 private:
  /// Decodes a flat grid index into a configuration.
  Configuration PointAt(std::size_t index) const;

  SearchSpace space_;
  GridSearchOptions options_;
  std::shared_ptr<TrialBank> bank_;
  std::vector<std::size_t> dims_;  // points per dimension
  std::size_t next_index_ = 0;
  std::int64_t jobs_in_flight_ = 0;
  IncumbentTracker incumbent_;
};

}  // namespace hypertune
