#include "core/hyperband.h"

#include <cmath>

#include "common/check.h"
#include "common/json.h"
#include "core/geometry.h"
#include "core/trial_json.h"

namespace hypertune {

namespace {

constexpr std::uint64_t kBracketTagShift = 32;

}  // namespace

HyperbandScheduler::HyperbandScheduler(std::shared_ptr<ConfigSampler> sampler,
                                       HyperbandOptions options,
                                       std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      s_max_(SMax(options.r, options.R, options.eta)),
      seed_counter_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  StartNextBracketIfNeeded();
}

int HyperbandScheduler::CurrentBracket() const {
  HT_CHECK(!brackets_run_.empty());
  return brackets_run_.back()->options().s;
}

void HyperbandScheduler::StartNextBracketIfNeeded() {
  if (!brackets_run_.empty() && !brackets_run_.back()->Finished()) return;
  if (!options_.loop_forever &&
      brackets_run_.size() > static_cast<std::size_t>(s_max_)) {
    return;  // one full pass done
  }
  PushBracket();
}

void HyperbandScheduler::PushBracket() {
  const auto next_index = brackets_run_.size();
  const int s = static_cast<int>(next_index % static_cast<std::size_t>(s_max_ + 1));
  ShaOptions sha;
  sha.n = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(options_.n0) *
                                  std::pow(options_.eta, -s)));
  sha.r = options_.r;
  sha.R = options_.R;
  sha.eta = options_.eta;
  sha.s = s;
  sha.resume_from_checkpoint = options_.resume_from_checkpoint;
  sha.spawn_new_brackets = false;  // Hyperband runs one bracket at a time
  sha.incumbent_policy = options_.incumbent_policy;
  sha.seed = seed_counter_++;
  brackets_run_.push_back(
      std::make_unique<SyncShaScheduler>(sampler_, sha, bank_));
  brackets_run_.back()->SetTelemetry(telemetry_);
}

void HyperbandScheduler::SetTelemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  for (auto& bracket : brackets_run_) bracket->SetTelemetry(telemetry);
}

std::optional<Job> HyperbandScheduler::GetJob() {
  StartNextBracketIfNeeded();
  if (brackets_run_.empty()) return std::nullopt;
  auto job = brackets_run_.back()->GetJob();
  if (!job) return std::nullopt;
  // Route results back to the owning bracket via the high tag bits.
  job->tag |= (brackets_run_.size() - 1) << kBracketTagShift;
  return job;
}

namespace {

Job StripBracketTag(const Job& job) {
  Job inner = job;
  inner.tag &= (std::uint64_t{1} << kBracketTagShift) - 1;
  return inner;
}

}  // namespace

void HyperbandScheduler::ReportResult(const Job& job, double loss) {
  const auto idx = job.tag >> kBracketTagShift;
  auto& bracket = *brackets_run_.at(idx);
  bracket.ReportResult(StripBracketTag(job), loss);
  if (auto rec = bracket.Current()) {
    incumbent_.Offer(rec->trial_id, rec->loss, rec->resource);
  }
}

void HyperbandScheduler::ReportLost(const Job& job) {
  const auto idx = job.tag >> kBracketTagShift;
  brackets_run_.at(idx)->ReportLost(StripBracketTag(job));
}

bool HyperbandScheduler::Finished() const {
  if (options_.loop_forever) return false;
  if (brackets_run_.size() <= static_cast<std::size_t>(s_max_)) return false;
  return brackets_run_.back()->Finished();
}

std::optional<Recommendation> HyperbandScheduler::Current() const {
  return incumbent_.Current();
}

Json HyperbandScheduler::Snapshot() const {
  Json json = JsonObject{};
  Json opts = JsonObject{};
  opts.Set("n0", Json(static_cast<std::int64_t>(options_.n0)));
  opts.Set("r", Json(options_.r));
  opts.Set("R", Json(options_.R));
  opts.Set("eta", Json(options_.eta));
  opts.Set("incumbent_policy",
           Json(static_cast<std::int64_t>(options_.incumbent_policy)));
  opts.Set("loop_forever", Json(options_.loop_forever));
  // Unlike ASHA (whose RNG state is captured directly), future brackets
  // derive their seeds from the base seed — it is part of the identity.
  opts.Set("seed", Json(static_cast<std::int64_t>(options_.seed)));
  json.Set("options", std::move(opts));

  json.Set("trials", ToJson(*bank_));
  Json brackets = JsonArray{};
  for (const auto& bracket : brackets_run_) {
    brackets.PushBack(bracket->SnapshotState(/*include_bank=*/false));
  }
  json.Set("brackets", std::move(brackets));
  if (const auto rec = incumbent_.Current()) {
    Json entry = JsonObject{};
    entry.Set("trial", Json(rec->trial_id));
    entry.Set("loss", Json(rec->loss));
    entry.Set("resource", Json(rec->resource));
    json.Set("incumbent", std::move(entry));
  }
  return json;
}

void HyperbandScheduler::Restore(const Json& snapshot, RestorePolicy policy) {
  HT_CHECK_MSG(bank_->size() == 0 && brackets_run_.size() == 1 &&
                   brackets_run_[0]->NumBracketInstances() == 0,
               "Restore requires a freshly constructed scheduler");
  const Json& opts = snapshot.at("options");
  HT_CHECK_MSG(
      opts.at("n0").AsInt() == static_cast<std::int64_t>(options_.n0) &&
          opts.at("r").AsDouble() == options_.r &&
          opts.at("R").AsDouble() == options_.R &&
          opts.at("eta").AsDouble() == options_.eta &&
          opts.at("incumbent_policy").AsInt() ==
              static_cast<std::int64_t>(options_.incumbent_policy) &&
          opts.at("loop_forever").AsBool() == options_.loop_forever &&
          opts.at("seed").AsInt() ==
              static_cast<std::int64_t>(options_.seed),
      "snapshot options do not match this scheduler");

  *bank_ = TrialBankFromJson(snapshot.at("trials"));
  // Rebuild each bracket with its original deterministic options, then
  // restore its state (the bank is shared, restored once above).
  brackets_run_.clear();
  seed_counter_ = options_.seed;
  for (const auto& child : snapshot.at("brackets").AsArray()) {
    PushBracket();
    brackets_run_.back()->RestoreState(child, policy,
                                       /*restore_bank=*/false);
  }
  if (snapshot.Has("incumbent")) {
    const Json& rec = snapshot.at("incumbent");
    incumbent_.Offer(rec.at("trial").AsInt(), rec.at("loss").AsDouble(),
                     rec.at("resource").AsDouble());
  }
}

}  // namespace hypertune
