#include "core/hyperband.h"

#include <cmath>

#include "common/check.h"
#include "core/geometry.h"

namespace hypertune {

namespace {

constexpr std::uint64_t kBracketTagShift = 32;

}  // namespace

HyperbandScheduler::HyperbandScheduler(std::shared_ptr<ConfigSampler> sampler,
                                       HyperbandOptions options,
                                       std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      s_max_(SMax(options.r, options.R, options.eta)),
      seed_counter_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  StartNextBracketIfNeeded();
}

int HyperbandScheduler::CurrentBracket() const {
  HT_CHECK(!brackets_run_.empty());
  return brackets_run_.back()->options().s;
}

void HyperbandScheduler::StartNextBracketIfNeeded() {
  if (!brackets_run_.empty() && !brackets_run_.back()->Finished()) return;
  const auto next_index = brackets_run_.size();
  const int s = static_cast<int>(next_index % static_cast<std::size_t>(s_max_ + 1));
  if (!options_.loop_forever && next_index > static_cast<std::size_t>(s_max_)) {
    return;  // one full pass done
  }
  ShaOptions sha;
  sha.n = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(options_.n0) *
                                  std::pow(options_.eta, -s)));
  sha.r = options_.r;
  sha.R = options_.R;
  sha.eta = options_.eta;
  sha.s = s;
  sha.resume_from_checkpoint = options_.resume_from_checkpoint;
  sha.spawn_new_brackets = false;  // Hyperband runs one bracket at a time
  sha.incumbent_policy = options_.incumbent_policy;
  sha.seed = seed_counter_++;
  brackets_run_.push_back(
      std::make_unique<SyncShaScheduler>(sampler_, sha, bank_));
  brackets_run_.back()->SetTelemetry(telemetry_);
}

void HyperbandScheduler::SetTelemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  for (auto& bracket : brackets_run_) bracket->SetTelemetry(telemetry);
}

std::optional<Job> HyperbandScheduler::GetJob() {
  StartNextBracketIfNeeded();
  if (brackets_run_.empty()) return std::nullopt;
  auto job = brackets_run_.back()->GetJob();
  if (!job) return std::nullopt;
  // Route results back to the owning bracket via the high tag bits.
  job->tag |= (brackets_run_.size() - 1) << kBracketTagShift;
  return job;
}

namespace {

Job StripBracketTag(const Job& job) {
  Job inner = job;
  inner.tag &= (std::uint64_t{1} << kBracketTagShift) - 1;
  return inner;
}

}  // namespace

void HyperbandScheduler::ReportResult(const Job& job, double loss) {
  const auto idx = job.tag >> kBracketTagShift;
  auto& bracket = *brackets_run_.at(idx);
  bracket.ReportResult(StripBracketTag(job), loss);
  if (auto rec = bracket.Current()) {
    incumbent_.Offer(rec->trial_id, rec->loss, rec->resource);
  }
}

void HyperbandScheduler::ReportLost(const Job& job) {
  const auto idx = job.tag >> kBracketTagShift;
  brackets_run_.at(idx)->ReportLost(StripBracketTag(job));
}

bool HyperbandScheduler::Finished() const {
  if (options_.loop_forever) return false;
  if (brackets_run_.size() <= static_cast<std::size_t>(s_max_)) return false;
  return brackets_run_.back()->Finished();
}

std::optional<Recommendation> HyperbandScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
