// Synchronous Hyperband (Li et al. 2018): loops through SHA brackets with
// early-stopping rates s = 0 .. s_max, automating the choice of the
// early-stopping rate. Bracket s starts with n_s = max(1, floor(n0 * eta^-s))
// configurations, so every bracket consumes a comparable total budget.
//
// The incumbent accounting policy distinguishes the paper's "Hyperband
// (by rung)" and "Hyperband (by bracket)" variants (Appendix A.2, Fig. 9).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"
#include "core/sha.h"

namespace hypertune {

struct HyperbandOptions {
  /// Bottom-rung size of the most aggressive bracket (s = 0).
  std::size_t n0 = 256;
  double r = 1;
  double R = 256;
  double eta = 4;
  bool resume_from_checkpoint = true;
  /// kByBracket or kByRung (Appendix A.2); kIntermediate offers after every
  /// result like ASHA.
  IncumbentPolicy incumbent_policy = IncumbentPolicy::kByBracket;
  /// Loop back to bracket 0 after s_max (runs forever); when false one pass
  /// over the brackets is made and the scheduler finishes.
  bool loop_forever = true;
  std::uint64_t seed = 1;
};

class HyperbandScheduler final : public Scheduler {
 public:
  HyperbandScheduler(std::shared_ptr<ConfigSampler> sampler,
                     HyperbandOptions options,
                     std::shared_ptr<TrialBank> bank = nullptr);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Hyperband"; }
  /// Forwarded to every bracket, including ones started later.
  void SetTelemetry(Telemetry* telemetry) override;

  /// Early-stopping rate of the bracket currently being run.
  int CurrentBracket() const;
  std::size_t NumBracketsCompleted() const { return brackets_run_.size() - 1; }

  /// Crash recovery: the shared trial bank, every bracket run so far (each
  /// a SyncShaScheduler snapshot, bank omitted), and the wrapper-level
  /// incumbent. Brackets are reconstructed with their original options and
  /// seeds, then restored in order.
  bool SupportsSnapshot() const override { return true; }
  Json Snapshot() const override;
  void Restore(const Json& snapshot, RestorePolicy policy) override;
  using Scheduler::Restore;

 private:
  void StartNextBracketIfNeeded();
  /// Appends bracket #brackets_run_.size() with its deterministic options
  /// (early-stopping rate, cohort size, seed). Shared by the live path and
  /// Restore, so restored brackets are reconstructed bit-identically.
  void PushBracket();

  std::shared_ptr<ConfigSampler> sampler_;
  HyperbandOptions options_;
  std::shared_ptr<TrialBank> bank_;
  int s_max_;
  /// All brackets ever run; jobs are routed back by the high bits of the tag.
  std::vector<std::unique_ptr<SyncShaScheduler>> brackets_run_;
  IncumbentTracker incumbent_;
  Telemetry* telemetry_ = nullptr;
  std::uint64_t seed_counter_;
};

}  // namespace hypertune
