#include "core/incumbent.h"

namespace hypertune {

void IncumbentTracker::Offer(TrialId trial_id, double loss, Resource resource) {
  if (!current_ || loss < current_->loss) {
    current_ = Recommendation{trial_id, loss, resource};
  }
}

}  // namespace hypertune
