// Incumbent (recommendation) tracking.
//
// Appendix A.2 of the paper shows the accounting policy matters: recording
// the incumbent only at bracket completion ("by bracket", as Klein et al.
// evaluated Hyperband) versus after every rung ("by rung") versus after every
// intermediate result (what ASHA does, Section 3.3) changes measured
// time-to-accuracy. Schedulers decide *when* to offer a candidate; the
// tracker keeps the best offer so far.
#pragma once

#include <optional>

#include "core/types.h"

namespace hypertune {

enum class IncumbentPolicy {
  kIntermediate,  // offer after every reported result (ASHA default)
  kByRung,        // offer when a synchronous rung completes
  kByBracket,     // offer only when a whole bracket completes
};

class IncumbentTracker {
 public:
  /// Offers a candidate; kept iff its loss beats the current incumbent.
  void Offer(TrialId trial_id, double loss, Resource resource);

  std::optional<Recommendation> Current() const { return current_; }

 private:
  std::optional<Recommendation> current_;
};

}  // namespace hypertune
