#include "core/quasirandom.h"

#include <vector>

#include "common/check.h"

namespace hypertune {

namespace {

// Enough primes for any realistic hyperparameter space.
constexpr std::uint64_t kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                     31, 37, 41, 43, 47, 53, 59, 61, 67, 71};

}  // namespace

HaltonSampler::HaltonSampler(SearchSpace space) : space_(std::move(space)) {
  HT_CHECK_MSG(space_.NumParams() <= std::size(kPrimes),
               "Halton sampler supports at most " << std::size(kPrimes)
                                                  << " dimensions");
  HT_CHECK(space_.NumParams() > 0);
}

double HaltonSampler::RadicalInverse(std::uint64_t index, std::uint64_t base) {
  double result = 0;
  double fraction = 1.0 / static_cast<double>(base);
  while (index > 0) {
    result += static_cast<double>(index % base) * fraction;
    index /= base;
    fraction /= static_cast<double>(base);
  }
  return result;
}

Configuration HaltonSampler::Sample(Rng& rng) {
  if (!offset_initialized_) {
    // Skip a seed-dependent prefix so independent runs explore different
    // (but each internally well-spread) portions of the sequence.
    index_ = 31 + rng.UniformInt(0, 1 << 16);
    offset_initialized_ = true;
  }
  std::vector<double> point(space_.NumParams());
  for (std::size_t j = 0; j < point.size(); ++j) {
    point[j] = RadicalInverse(index_, kPrimes[j]);
  }
  ++index_;
  return space_.FromUnitVector(point);
}

}  // namespace hypertune
