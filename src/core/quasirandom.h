// Quasi-random (Halton) configuration sampling: a drop-in ConfigSampler
// with lower discrepancy than i.i.d. uniform draws — fewer clumps and gaps
// in the bottom rung's coverage. The dimensions use successive prime bases;
// the sequence start is offset by the run seed so repeated trials differ.
#pragma once

#include <cstdint>

#include "core/sampler.h"

namespace hypertune {

class HaltonSampler final : public ConfigSampler {
 public:
  explicit HaltonSampler(SearchSpace space);

  /// The Rng only randomizes the sequence offset on the first call; the
  /// sequence itself is deterministic afterward.
  Configuration Sample(Rng& rng) override;

  const SearchSpace& space() const { return space_; }

  /// Halton radical inverse of `index` in base `base` (in [0, 1)).
  static double RadicalInverse(std::uint64_t index, std::uint64_t base);

 private:
  SearchSpace space_;
  std::uint64_t index_ = 0;
  bool offset_initialized_ = false;
};

}  // namespace hypertune
