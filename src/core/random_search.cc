#include "core/random_search.h"

#include "common/check.h"

namespace hypertune {

RandomSearchScheduler::RandomSearchScheduler(
    std::shared_ptr<ConfigSampler> sampler, RandomSearchOptions options,
    std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  HT_CHECK(options_.R > 0);
}

std::optional<Job> RandomSearchScheduler::GetJob() {
  if (options_.max_trials >= 0 && trials_created_ >= options_.max_trials) {
    return std::nullopt;
  }
  const TrialId id = bank_->Create(sampler_->Sample(rng_), /*bracket=*/0);
  ++trials_created_;
  ++jobs_in_flight_;
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = options_.R;
  return job;
}

void RandomSearchScheduler::ReportResult(const Job& job, double loss) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  bank_->Get(job.trial_id).status = TrialStatus::kCompleted;
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
  sampler_->Observe(bank_->Get(job.trial_id).config, job.to_resource, loss);
}

void RandomSearchScheduler::ReportLost(const Job& job) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
}

bool RandomSearchScheduler::Finished() const {
  return options_.max_trials >= 0 && trials_created_ >= options_.max_trials &&
         jobs_in_flight_ == 0;
}

std::optional<Recommendation> RandomSearchScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
