#include "core/random_search.h"

#include <array>

#include "common/check.h"
#include "common/json.h"
#include "core/trial_json.h"

namespace hypertune {

RandomSearchScheduler::RandomSearchScheduler(
    std::shared_ptr<ConfigSampler> sampler, RandomSearchOptions options,
    std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  HT_CHECK(options_.R > 0);
}

std::optional<Job> RandomSearchScheduler::GetJob() {
  if (options_.max_trials >= 0 && trials_created_ >= options_.max_trials) {
    return std::nullopt;
  }
  const TrialId id = bank_->Create(sampler_->Sample(rng_), /*bracket=*/0);
  ++trials_created_;
  ++jobs_in_flight_;
  Trial& trial = bank_->Get(id);
  trial.status = TrialStatus::kRunning;
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource = 0;
  job.to_resource = options_.R;
  in_flight_[id] = job;
  return job;
}

void RandomSearchScheduler::ReportResult(const Job& job, double loss) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  in_flight_.erase(job.trial_id);
  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  bank_->Get(job.trial_id).status = TrialStatus::kCompleted;
  incumbent_.Offer(job.trial_id, loss, job.to_resource);
  sampler_->Observe(bank_->Get(job.trial_id).config, job.to_resource, loss);
}

void RandomSearchScheduler::ReportLost(const Job& job) {
  HT_CHECK(jobs_in_flight_ > 0);
  --jobs_in_flight_;
  in_flight_.erase(job.trial_id);
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
}

bool RandomSearchScheduler::Finished() const {
  return options_.max_trials >= 0 && trials_created_ >= options_.max_trials &&
         jobs_in_flight_ == 0;
}

std::optional<Recommendation> RandomSearchScheduler::Current() const {
  return incumbent_.Current();
}

Json RandomSearchScheduler::Snapshot() const {
  Json json = JsonObject{};
  json.Set("R", Json(options_.R));
  json.Set("max_trials", Json(options_.max_trials));
  json.Set("trials", ToJson(*bank_));
  Json in_flight = JsonArray{};
  for (const auto& [id, job] : in_flight_) {
    (void)id;
    in_flight.PushBack(ToJson(job));
  }
  json.Set("in_flight", std::move(in_flight));
  json.Set("trials_created", Json(trials_created_));
  if (const auto rec = incumbent_.Current()) {
    Json entry = JsonObject{};
    entry.Set("trial", Json(rec->trial_id));
    entry.Set("loss", Json(rec->loss));
    entry.Set("resource", Json(rec->resource));
    json.Set("incumbent", std::move(entry));
  }
  Json rng_state = JsonArray{};
  for (std::uint64_t word : rng_.state()) {
    rng_state.PushBack(Json(static_cast<std::int64_t>(word)));
  }
  json.Set("rng", std::move(rng_state));
  return json;
}

void RandomSearchScheduler::Restore(const Json& snapshot,
                                    RestorePolicy policy) {
  HT_CHECK_MSG(bank_->size() == 0 && jobs_in_flight_ == 0,
               "Restore requires a freshly constructed scheduler");
  HT_CHECK_MSG(snapshot.at("R").AsDouble() == options_.R &&
                   snapshot.at("max_trials").AsInt() == options_.max_trials,
               "snapshot options do not match this scheduler");
  *bank_ = TrialBankFromJson(snapshot.at("trials"));
  for (const auto& entry : snapshot.at("in_flight").AsArray()) {
    Job job = JobFromJson(entry);
    in_flight_[job.trial_id] = job;
    ++jobs_in_flight_;
  }
  trials_created_ = snapshot.at("trials_created").AsInt();
  if (snapshot.Has("incumbent")) {
    const Json& rec = snapshot.at("incumbent");
    incumbent_.Offer(rec.at("trial").AsInt(), rec.at("loss").AsDouble(),
                     rec.at("resource").AsDouble());
  }
  std::array<std::uint64_t, 4> rng_state{};
  const auto& words = snapshot.at("rng").AsArray();
  HT_CHECK(words.size() == rng_state.size());
  for (std::size_t i = 0; i < rng_state.size(); ++i) {
    rng_state[i] = static_cast<std::uint64_t>(words[i].AsInt());
  }
  rng_.set_state(rng_state);
  if (policy == RestorePolicy::kDropInFlight) {
    while (!in_flight_.empty()) {
      // Copy: ReportLost erases this map entry and keeps using the job.
      const Job job = in_flight_.begin()->second;
      ReportLost(job);
    }
  }
}

}  // namespace hypertune
