// Random search: every job trains a freshly sampled configuration for the
// full resource R. The embarrassingly-parallel baseline of Figures 3 and 9.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/rng.h"
#include "core/incumbent.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct RandomSearchOptions {
  double R = 256;
  /// Optional cap on configurations (-1 = unlimited).
  std::int64_t max_trials = -1;
  std::uint64_t seed = 1;
};

class RandomSearchScheduler final : public Scheduler {
 public:
  RandomSearchScheduler(std::shared_ptr<ConfigSampler> sampler,
                        RandomSearchOptions options,
                        std::shared_ptr<TrialBank> bank = nullptr);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return "Random"; }

  /// Crash recovery: trials, in-flight jobs, counters, incumbent, and the
  /// sampling RNG (see Scheduler::Snapshot).
  bool SupportsSnapshot() const override { return true; }
  Json Snapshot() const override;
  void Restore(const Json& snapshot, RestorePolicy policy) override;
  using Scheduler::Restore;

 private:
  std::shared_ptr<ConfigSampler> sampler_;
  RandomSearchOptions options_;
  std::shared_ptr<TrialBank> bank_;
  IncumbentTracker incumbent_;
  Rng rng_;
  std::int64_t trials_created_ = 0;
  std::int64_t jobs_in_flight_ = 0;
  std::map<TrialId, Job> in_flight_;
};

}  // namespace hypertune
