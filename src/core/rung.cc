#include "core/rung.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hypertune {

void Rung::RebuildIndex(double eta) const {
  eta_ = eta;
  k_ = static_cast<std::size_t>(static_cast<double>(results_.size()) / eta);
  boundary_ = results_.begin();
  promotable_set_.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    if (!promoted_.contains(boundary_->second)) {
      promotable_set_.insert(*boundary_);
    }
    ++boundary_;
  }
  index_valid_ = true;
}

bool Rung::InPrefix(const std::pair<double, TrialId>& entry) const {
  if (k_ == 0) return false;
  if (boundary_ == results_.end()) return true;  // prefix covers everything
  return entry < *boundary_;
}

void Rung::Record(TrialId id, double loss) {
  HT_CHECK_MSG(!Contains(id), "trial " << id << " already recorded in rung");
  const std::pair<double, TrialId> entry{loss, id};
  results_.insert(entry);
  recorded_.emplace(id, loss);
  if (!index_valid_) return;

  if (k_ == 0) {
    // Empty prefix: keep the boundary at rank 0.
    boundary_ = results_.begin();
  } else if (InPrefix(entry)) {
    // The new entry displaced the old rank-(k_-1) element out of the prefix
    // (or is itself the new rank-k_ element). Either way the new boundary is
    // the predecessor of the old one, and the element now *at* the boundary
    // left the candidate set.
    --boundary_;
    promotable_set_.insert(entry);  // new (unpromoted) entry joins the prefix
    promotable_set_.erase(*boundary_);  // the boundary element leaves it
  }

  // k = floor(n / eta) can grow by one; the boundary element then joins the
  // candidate set.
  const auto new_k = static_cast<std::size_t>(
      static_cast<double>(results_.size()) / eta_);
  if (new_k == k_ + 1) {
    HT_CHECK(boundary_ != results_.end());
    if (!promoted_.contains(boundary_->second)) {
      promotable_set_.insert(*boundary_);
    }
    ++boundary_;
    k_ = new_k;
  }
}

void Rung::MarkPromoted(TrialId id) {
  const auto it = recorded_.find(id);
  HT_CHECK_MSG(it != recorded_.end(), "promoting trial " << id
                                                         << " not in rung");
  const bool inserted = promoted_.insert(id).second;
  HT_CHECK_MSG(inserted, "trial " << id << " promoted twice");
  if (index_valid_) {
    const std::pair<double, TrialId> entry{it->second, id};
    if (InPrefix(entry)) {
      const auto erased = promotable_set_.erase(entry);
      HT_CHECK(erased == 1);
    }
  }
}

std::optional<TrialId> Rung::FirstPromotable(double eta) const {
  HT_CHECK(eta >= 2.0);
  if (!index_valid_ || eta_ != eta) RebuildIndex(eta);
  if (promotable_set_.empty()) return std::nullopt;
  return promotable_set_.begin()->second;
}

bool Rung::HasPromotable(double eta) const {
  HT_CHECK(eta >= 2.0);
  if (!index_valid_ || eta_ != eta) RebuildIndex(eta);
  return !promotable_set_.empty();
}

std::vector<TrialId> Rung::PromotableTrials(double eta) const {
  HT_CHECK(eta >= 2.0);
  const auto k = static_cast<std::size_t>(
      static_cast<double>(results_.size()) / eta);
  std::vector<TrialId> out;
  std::size_t seen = 0;
  for (const auto& [loss, id] : results_) {
    if (seen++ >= k) break;
    if (!promoted_.contains(id)) out.push_back(id);
  }
  return out;
}

std::vector<TrialId> Rung::TopK(std::size_t k) const {
  std::vector<TrialId> out;
  out.reserve(std::min(k, results_.size()));
  for (const auto& [loss, id] : results_) {
    if (out.size() >= k) break;
    out.push_back(id);
  }
  return out;
}

double Rung::BestLoss() const {
  return results_.empty() ? std::numeric_limits<double>::infinity()
                          : results_.begin()->first;
}

TrialId Rung::BestTrial() const {
  return results_.empty() ? TrialId{-1} : results_.begin()->second;
}

}  // namespace hypertune
