// A rung: the set of configurations evaluated at one resource level of a
// successive-halving bracket, with promotion bookkeeping.
//
// Implementation notes: results live in an ordered set keyed by (loss, id),
// and the promotion candidate set — the best floor(n/eta) entries — is
// tracked *incrementally* with a boundary iterator plus a count of
// unpromoted candidates. Large-scale simulations push tens of thousands of
// results into the bottom rung and call FirstPromotable on every worker
// request; the incremental index makes that query O(1) when nothing is
// promotable (the common case in a worker storm) instead of a rescan of a
// nearly-fully-promoted prefix.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/types.h"

namespace hypertune {

class Rung {
 public:
  /// Records a completed evaluation. A trial may appear at most once.
  void Record(TrialId id, double loss);

  bool Contains(TrialId id) const { return recorded_.contains(id); }

  /// Number of recorded results ("|rung k|" in Algorithm 2).
  std::size_t NumRecorded() const { return results_.size(); }

  /// Marks a trial as promoted out of this rung. Requires it was recorded
  /// here and not already promoted.
  void MarkPromoted(TrialId id);

  bool IsPromoted(TrialId id) const { return promoted_.contains(id); }

  std::size_t NumPromoted() const { return promoted_.size(); }

  /// Algorithm 2 lines 14-17: the best not-yet-promoted trial among the top
  /// floor(NumRecorded()/eta), if any. `eta` must be >= 2 and must not vary
  /// across calls on one rung (successive halving uses a fixed eta).
  std::optional<TrialId> FirstPromotable(double eta) const;

  /// FirstPromotable(eta).has_value() without building the optional: O(1)
  /// amortized against the incremental index, allocation-free. Schedulers'
  /// Finished() checks run this on every worker-loop iteration.
  bool HasPromotable(double eta) const;

  /// All promotable trials (best first); used by tests as the oracle the
  /// incremental index is differential-tested against.
  std::vector<TrialId> PromotableTrials(double eta) const;

  /// The best `k` recorded trials (fewer if the rung is smaller), best
  /// first, regardless of promotion state — synchronous SHA's rung-
  /// completion elimination (Algorithm 1 line 10).
  std::vector<TrialId> TopK(std::size_t k) const;

  /// Lowest recorded loss; +inf when empty.
  double BestLoss() const;

  /// Trial id achieving BestLoss(); -1 when empty.
  TrialId BestTrial() const;

  /// (loss, trial) pairs in ascending loss order (ties by id).
  const std::set<std::pair<double, TrialId>>& results() const {
    return results_;
  }

 private:
  using ResultSet = std::set<std::pair<double, TrialId>>;

  /// (Re)builds the candidate index for the given eta.
  void RebuildIndex(double eta) const;
  /// True when the entry lies strictly inside the current candidate prefix.
  bool InPrefix(const std::pair<double, TrialId>& entry) const;

  ResultSet results_;
  std::map<TrialId, double> recorded_;  // id -> loss (for pair reconstruction)
  std::set<TrialId> promoted_;

  // Incremental candidate index (mutable: maintained lazily on first query).
  mutable bool index_valid_ = false;
  mutable double eta_ = 0;
  mutable std::size_t k_ = 0;  // floor(NumRecorded / eta)
  /// Iterator to the rank-k_ element (first non-candidate); results_.end()
  /// when the set is empty.
  mutable ResultSet::iterator boundary_;
  /// Unpromoted entries among the first k_, ordered — FirstPromotable is
  /// its begin().
  mutable ResultSet promotable_set_;
};

}  // namespace hypertune
