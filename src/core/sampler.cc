#include "core/sampler.h"

namespace hypertune {

std::shared_ptr<ConfigSampler> MakeRandomSampler(SearchSpace space) {
  return std::make_shared<RandomConfigSampler>(std::move(space));
}

}  // namespace hypertune
