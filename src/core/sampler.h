// Pluggable configuration proposal strategy.
//
// SHA/ASHA draw new configurations at the bottom rung; *how* they are drawn
// is orthogonal to the promotion scheme. Random sampling gives the paper's
// SHA/ASHA; plugging in the TPE-style model from src/bo gives BOHB (which
// "differs only in how configurations are sampled", Section 4.1).
#pragma once

#include <memory>

#include "common/rng.h"
#include "searchspace/space.h"

namespace hypertune {

class ConfigSampler {
 public:
  virtual ~ConfigSampler() = default;

  /// Proposes the next configuration to evaluate.
  virtual Configuration Sample(Rng& rng) = 0;

  /// Feeds back an evaluation so model-based samplers can adapt.
  /// Resource is the level the loss was measured at.
  virtual void Observe(const Configuration& config, double resource,
                       double loss) {
    (void)config;
    (void)resource;
    (void)loss;
  }
};

/// Uniform random sampling from the search space (the paper's default).
class RandomConfigSampler final : public ConfigSampler {
 public:
  explicit RandomConfigSampler(SearchSpace space) : space_(std::move(space)) {}

  Configuration Sample(Rng& rng) override { return space_.Sample(rng); }

  const SearchSpace& space() const { return space_; }

 private:
  SearchSpace space_;
};

std::shared_ptr<ConfigSampler> MakeRandomSampler(SearchSpace space);

}  // namespace hypertune
