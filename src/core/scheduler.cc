#include "core/scheduler.h"

#include "common/check.h"
#include "common/json.h"

namespace hypertune {

Json Scheduler::Snapshot() const {
  throw CheckError("scheduler '" + name() + "' does not support Snapshot()");
}

void Scheduler::Restore(const Json& snapshot, RestorePolicy policy) {
  (void)snapshot;
  (void)policy;
  throw CheckError("scheduler '" + name() + "' does not support Restore()");
}

}  // namespace hypertune
