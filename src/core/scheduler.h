// The pull-based scheduler interface shared by every tuner.
//
// Algorithm 2 of the paper is phrased exactly this way: whenever a worker is
// free, the tuner is asked for a job (`GetJob`); whenever a job finishes, the
// loss is reported back (`ReportResult`). Synchronous algorithms fit the same
// interface by returning std::nullopt while they wait for a rung to complete
// — which is precisely the idle time stragglers inflict on them.
#pragma once

#include <optional>
#include <string>

#include "core/trial.h"
#include "core/types.h"

namespace hypertune {

class Json;
class Telemetry;

/// What Restore does with jobs that were in flight when the snapshot was
/// taken (see DESIGN.md §7, "Durability contract").
enum class RestorePolicy {
  /// The workers died with the service: every in-flight job is resolved as
  /// lost (ReportLost) immediately after the state is rebuilt. This is the
  /// standalone-snapshot contract — the restored scheduler owes nothing to
  /// any lease.
  kDropInFlight,
  /// A durability layer (src/durability) still holds the leases: in-flight
  /// jobs stay in flight, and the layer later resolves each one — either by
  /// replaying journaled outcomes or by re-expiring the lease.
  kKeepInFlight,
};

/// Tuner-side overhead accounting: real wall-clock spent fitting the
/// tuner's surrogate model (GP, KDE, ...) and how often each fit path ran.
/// All zeros for model-free tuners. The experiment runner divides
/// model_fit_seconds by the run's wall-clock to report the tuner-overhead
/// share — the quantity that caps how many workers one tuner can feed.
struct SchedulerCost {
  std::int64_t model_full_fits = 0;
  std::int64_t model_incremental_fits = 0;
  double model_fit_seconds = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Attaches an observability sink (see src/telemetry). Null detaches.
  /// Implementations that emit nothing inherit this no-op; composite
  /// schedulers forward the sink to their inner brackets. Must be called
  /// before the scheduler is driven — sinks are not swapped mid-run.
  virtual void SetTelemetry(Telemetry* telemetry) { (void)telemetry; }

  /// Cumulative model-fitting cost (see SchedulerCost); zeros by default.
  virtual SchedulerCost Cost() const { return {}; }

  /// Next unit of work, or std::nullopt when no work is available right now
  /// (the caller should retry after the next completion event).
  virtual std::optional<Job> GetJob() = 0;

  /// Reports the validation loss measured at `job.to_resource`.
  virtual void ReportResult(const Job& job, double loss) = 0;

  /// Reports that the job was dropped by its worker and will never complete.
  virtual void ReportLost(const Job& job) = 0;

  /// True when the tuner will never produce work again (e.g. a fixed-size
  /// SHA bracket has fully completed). Open-ended tuners (ASHA, PBT with
  /// population spawning) return false forever.
  virtual bool Finished() const = 0;

  /// The tuner's current recommendation per its incumbent accounting policy;
  /// std::nullopt before the first recommendation is available.
  virtual std::optional<Recommendation> Current() const = 0;

  /// All trials created so far.
  virtual const TrialBank& trials() const = 0;

  /// Short human-readable name for reports ("ASHA", "SHA", ...).
  virtual std::string name() const = 0;

  /// True when this scheduler implements Snapshot/Restore. The successive-
  /// halving family (ASHA, SHA, both Hyperbands) and random search do;
  /// schedulers without support throw CheckError from Snapshot/Restore.
  virtual bool SupportsSnapshot() const { return false; }

  /// Service-style crash recovery: captures the scheduler's complete state
  /// (trials, rung results, promotion marks, in-flight jobs, counters, the
  /// sampling RNG) as a JSON document that Restore round-trips.
  virtual Json Snapshot() const;

  /// Restores a snapshot into a freshly constructed scheduler with
  /// identical options (validated) and an untouched trial bank. After
  /// Restore the scheduler continues deterministically from the snapshot
  /// point; `policy` decides the fate of jobs in flight at snapshot time.
  virtual void Restore(const Json& snapshot, RestorePolicy policy);

  /// Restore with the standalone contract (in-flight jobs are lost).
  void Restore(const Json& snapshot) {
    Restore(snapshot, RestorePolicy::kDropInFlight);
  }
};

}  // namespace hypertune
