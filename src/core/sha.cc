#include "core/sha.h"

#include <cmath>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

SyncShaScheduler::SyncShaScheduler(std::shared_ptr<ConfigSampler> sampler,
                                   ShaOptions options,
                                   std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      geometry_(BracketGeometry::Make(options.r, options.R, options.eta,
                                      options.s)),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  // Algorithm 1 line 3: at least one configuration must reach R.
  HT_CHECK_MSG(static_cast<double>(options_.n) >=
                   std::pow(options_.eta, geometry_.s_max - options_.s),
               "n=" << options_.n << " too small: need at least eta^(s_max-s)="
                    << std::pow(options_.eta, geometry_.s_max - options_.s));
}

SyncShaScheduler::BracketInstance SyncShaScheduler::MakeInstance() {
  const auto num_rungs = static_cast<std::size_t>(geometry_.NumRungs());
  BracketInstance inst;
  inst.queue.resize(num_rungs);
  inst.dispatched.assign(num_rungs, 0);
  inst.outstanding.assign(num_rungs, 0);
  inst.rungs.resize(num_rungs);
  // Algorithm 1 line 4: sample the initial cohort.
  inst.queue[0].reserve(options_.n);
  for (std::size_t i = 0; i < options_.n; ++i) {
    inst.queue[0].push_back(
        bank_->Create(sampler_->Sample(rng_), options_.s));
  }
  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("bracket", Json(options_.s));
    args.Set("instance", Json(static_cast<std::int64_t>(instances_.size())));
    args.Set("cohort", Json(static_cast<std::int64_t>(options_.n)));
    telemetry_->Event("bracket_started", "rung", std::move(args));
    telemetry_->Count("scheduler.trials_sampled",
                      static_cast<std::int64_t>(options_.n));
  }
  return inst;
}

Job SyncShaScheduler::MakeJob(std::size_t instance_idx, TrialId id, int rung) {
  Trial& trial = bank_->Get(id);
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource =
      options_.resume_from_checkpoint ? trial.resource_trained : 0.0;
  job.to_resource = geometry_.RungResource(rung);
  job.rung = rung;
  job.bracket = options_.s;
  job.tag = instance_idx;
  trial.status = TrialStatus::kRunning;
  resource_dispatched_ += job.to_resource - job.from_resource;
  return job;
}

std::optional<Job> SyncShaScheduler::DispatchFrom(std::size_t instance_idx) {
  BracketInstance& inst = instances_[instance_idx];
  if (inst.complete) return std::nullopt;
  // Only the frontier rung may dispatch: that is the synchronization.
  const auto k = static_cast<std::size_t>(inst.frontier);
  if (inst.dispatched[k] < inst.queue[k].size()) {
    const TrialId id = inst.queue[k][inst.dispatched[k]++];
    ++inst.outstanding[k];
    return MakeJob(instance_idx, id, inst.frontier);
  }
  return std::nullopt;
}

std::optional<Job> SyncShaScheduler::GetJob() {
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (auto job = DispatchFrom(i)) return job;
  }
  if (options_.spawn_new_brackets || instances_.empty()) {
    // No dispatchable work anywhere (stragglers hold the frontier rungs) —
    // keep the worker busy with a fresh bracket.
    if (!options_.spawn_new_brackets && !instances_.empty()) return std::nullopt;
    instances_.push_back(MakeInstance());
    return DispatchFrom(instances_.size() - 1);
  }
  return std::nullopt;
}

void SyncShaScheduler::OnRungSettled(std::size_t instance_idx) {
  // Called when every dispatched job of the frontier rung has been reported
  // (completed or lost) and the whole queue was dispatched.
  BracketInstance& inst = instances_[instance_idx];
  const auto k = static_cast<std::size_t>(inst.frontier);
  const Rung& rung = inst.rungs[k];

  if (options_.incumbent_policy == IncumbentPolicy::kByRung &&
      rung.NumRecorded() > 0) {
    incumbent_.Offer(rung.BestTrial(), rung.BestLoss(),
                     geometry_.RungResource(inst.frontier));
  }

  const bool is_top = inst.frontier == geometry_.NumRungs() - 1;
  // Algorithm 1 line 10 generalized to survivors: promote the best
  // floor(|completed|/eta). Dropped jobs shrink the pool — synchronous SHA
  // has no way to recover them.
  const auto promote_count = static_cast<std::size_t>(
      static_cast<double>(rung.NumRecorded()) / options_.eta);

  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("bracket", Json(options_.s));
    args.Set("instance", Json(static_cast<std::int64_t>(instance_idx)));
    args.Set("rung", Json(inst.frontier));
    args.Set("recorded", Json(static_cast<std::int64_t>(rung.NumRecorded())));
    args.Set("promoted",
             Json(static_cast<std::int64_t>(is_top ? 0 : promote_count)));
    telemetry_->Event("rung_settled", "rung", std::move(args));
    telemetry_->Count("scheduler.rungs_settled");
  }

  if (is_top || promote_count == 0) {
    inst.complete = true;
    ++completed_brackets_;
    if (telemetry_ != nullptr) {
      Json args = JsonObject{};
      args.Set("bracket", Json(options_.s));
      args.Set("instance", Json(static_cast<std::int64_t>(instance_idx)));
      telemetry_->Event("bracket_complete", "rung", std::move(args));
      telemetry_->Count("scheduler.brackets_completed");
    }
    if (rung.NumRecorded() > 0 &&
        (options_.incumbent_policy == IncumbentPolicy::kByBracket ||
         options_.incumbent_policy == IncumbentPolicy::kByRung)) {
      // The bracket's output is the best configuration of its final settled
      // rung (by-rung accounting already offered it above; Offer is
      // idempotent for equal candidates).
      incumbent_.Offer(rung.BestTrial(), rung.BestLoss(),
                       geometry_.RungResource(inst.frontier));
    }
    return;
  }

  auto winners = rung.TopK(promote_count);
  for (TrialId id : winners) {
    inst.rungs[k].MarkPromoted(id);
    bank_->Get(id).status = TrialStatus::kPaused;
    if (telemetry_ != nullptr) {
      Json args = JsonObject{};
      args.Set("trial", Json(id));
      args.Set("bracket", Json(options_.s));
      args.Set("from_rung", Json(inst.frontier));
      args.Set("to_rung", Json(inst.frontier + 1));
      telemetry_->Event("trial_promoted", "trial", std::move(args));
      telemetry_->Count("scheduler.promotions");
    }
  }
  inst.queue[k + 1] = std::move(winners);
  ++inst.frontier;
}

void SyncShaScheduler::ReportResult(const Job& job, double loss) {
  auto& inst = instances_.at(job.tag);
  const auto k = static_cast<std::size_t>(job.rung);
  HT_CHECK(inst.outstanding[k] > 0);
  --inst.outstanding[k];

  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  inst.rungs[k].Record(job.trial_id, loss);
  Trial& trial = bank_->Get(job.trial_id);
  trial.status = job.rung == geometry_.NumRungs() - 1
                     ? TrialStatus::kCompleted
                     : TrialStatus::kPaused;
  sampler_->Observe(trial.config, job.to_resource, loss);
  if (telemetry_ != nullptr) telemetry_->Count("scheduler.results");
  if (options_.incumbent_policy == IncumbentPolicy::kIntermediate) {
    incumbent_.Offer(job.trial_id, loss, job.to_resource);
  }

  if (inst.dispatched[k] == inst.queue[k].size() && inst.outstanding[k] == 0 &&
      static_cast<int>(k) == inst.frontier) {
    OnRungSettled(job.tag);
  }
}

void SyncShaScheduler::ReportLost(const Job& job) {
  auto& inst = instances_.at(job.tag);
  const auto k = static_cast<std::size_t>(job.rung);
  HT_CHECK(inst.outstanding[k] > 0);
  --inst.outstanding[k];
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("trial", Json(job.trial_id));
    args.Set("bracket", Json(options_.s));
    args.Set("rung", Json(job.rung));
    telemetry_->Event("trial_lost", "trial", std::move(args));
    telemetry_->Count("scheduler.jobs_lost");
  }

  if (inst.dispatched[k] == inst.queue[k].size() && inst.outstanding[k] == 0 &&
      static_cast<int>(k) == inst.frontier) {
    OnRungSettled(job.tag);
  }
}

bool SyncShaScheduler::Finished() const {
  if (options_.spawn_new_brackets) return false;
  if (instances_.empty()) return false;  // first bracket not yet started
  for (const auto& inst : instances_) {
    if (!inst.complete) return false;
  }
  return true;
}

std::optional<Recommendation> SyncShaScheduler::Current() const {
  return incumbent_.Current();
}

}  // namespace hypertune
