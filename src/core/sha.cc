#include "core/sha.h"

#include <array>
#include <cmath>

#include "common/check.h"
#include "core/trial_json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

SyncShaScheduler::SyncShaScheduler(std::shared_ptr<ConfigSampler> sampler,
                                   ShaOptions options,
                                   std::shared_ptr<TrialBank> bank)
    : sampler_(std::move(sampler)),
      options_(options),
      bank_(bank ? std::move(bank) : std::make_shared<TrialBank>()),
      geometry_(BracketGeometry::Make(options.r, options.R, options.eta,
                                      options.s)),
      rng_(options.seed) {
  HT_CHECK(sampler_ != nullptr);
  // Algorithm 1 line 3: at least one configuration must reach R.
  HT_CHECK_MSG(static_cast<double>(options_.n) >=
                   std::pow(options_.eta, geometry_.s_max - options_.s),
               "n=" << options_.n << " too small: need at least eta^(s_max-s)="
                    << std::pow(options_.eta, geometry_.s_max - options_.s));
}

SyncShaScheduler::BracketInstance SyncShaScheduler::MakeInstance() {
  const auto num_rungs = static_cast<std::size_t>(geometry_.NumRungs());
  BracketInstance inst;
  inst.queue.resize(num_rungs);
  inst.dispatched.assign(num_rungs, 0);
  inst.outstanding.assign(num_rungs, 0);
  inst.rungs.resize(num_rungs);
  // Algorithm 1 line 4: sample the initial cohort.
  inst.queue[0].reserve(options_.n);
  for (std::size_t i = 0; i < options_.n; ++i) {
    inst.queue[0].push_back(
        bank_->Create(sampler_->Sample(rng_), options_.s));
  }
  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("bracket", Json(options_.s));
    args.Set("instance", Json(static_cast<std::int64_t>(instances_.size())));
    args.Set("cohort", Json(static_cast<std::int64_t>(options_.n)));
    telemetry_->Event("bracket_started", "rung", std::move(args));
    telemetry_->Count("scheduler.trials_sampled",
                      static_cast<std::int64_t>(options_.n));
  }
  return inst;
}

Job SyncShaScheduler::MakeJob(std::size_t instance_idx, TrialId id, int rung) {
  Trial& trial = bank_->Get(id);
  Job job;
  job.trial_id = id;
  job.config = trial.config;
  job.from_resource =
      options_.resume_from_checkpoint ? trial.resource_trained : 0.0;
  job.to_resource = geometry_.RungResource(rung);
  job.rung = rung;
  job.bracket = options_.s;
  job.tag = instance_idx;
  trial.status = TrialStatus::kRunning;
  resource_dispatched_ += job.to_resource - job.from_resource;
  in_flight_[id] = job;
  return job;
}

std::optional<Job> SyncShaScheduler::DispatchFrom(std::size_t instance_idx) {
  BracketInstance& inst = instances_[instance_idx];
  if (inst.complete) return std::nullopt;
  // Only the frontier rung may dispatch: that is the synchronization.
  const auto k = static_cast<std::size_t>(inst.frontier);
  if (inst.dispatched[k] < inst.queue[k].size()) {
    const TrialId id = inst.queue[k][inst.dispatched[k]++];
    ++inst.outstanding[k];
    return MakeJob(instance_idx, id, inst.frontier);
  }
  return std::nullopt;
}

std::optional<Job> SyncShaScheduler::GetJob() {
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (auto job = DispatchFrom(i)) return job;
  }
  if (options_.spawn_new_brackets || instances_.empty()) {
    // No dispatchable work anywhere (stragglers hold the frontier rungs) —
    // keep the worker busy with a fresh bracket.
    if (!options_.spawn_new_brackets && !instances_.empty()) return std::nullopt;
    instances_.push_back(MakeInstance());
    return DispatchFrom(instances_.size() - 1);
  }
  return std::nullopt;
}

void SyncShaScheduler::OnRungSettled(std::size_t instance_idx) {
  // Called when every dispatched job of the frontier rung has been reported
  // (completed or lost) and the whole queue was dispatched.
  BracketInstance& inst = instances_[instance_idx];
  const auto k = static_cast<std::size_t>(inst.frontier);
  const Rung& rung = inst.rungs[k];

  if (options_.incumbent_policy == IncumbentPolicy::kByRung &&
      rung.NumRecorded() > 0) {
    incumbent_.Offer(rung.BestTrial(), rung.BestLoss(),
                     geometry_.RungResource(inst.frontier));
  }

  const bool is_top = inst.frontier == geometry_.NumRungs() - 1;
  // Algorithm 1 line 10 generalized to survivors: promote the best
  // floor(|completed|/eta). Dropped jobs shrink the pool — synchronous SHA
  // has no way to recover them.
  const auto promote_count = static_cast<std::size_t>(
      static_cast<double>(rung.NumRecorded()) / options_.eta);

  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("bracket", Json(options_.s));
    args.Set("instance", Json(static_cast<std::int64_t>(instance_idx)));
    args.Set("rung", Json(inst.frontier));
    args.Set("recorded", Json(static_cast<std::int64_t>(rung.NumRecorded())));
    args.Set("promoted",
             Json(static_cast<std::int64_t>(is_top ? 0 : promote_count)));
    telemetry_->Event("rung_settled", "rung", std::move(args));
    telemetry_->Count("scheduler.rungs_settled");
  }

  if (is_top || promote_count == 0) {
    inst.complete = true;
    ++completed_brackets_;
    if (telemetry_ != nullptr) {
      Json args = JsonObject{};
      args.Set("bracket", Json(options_.s));
      args.Set("instance", Json(static_cast<std::int64_t>(instance_idx)));
      telemetry_->Event("bracket_complete", "rung", std::move(args));
      telemetry_->Count("scheduler.brackets_completed");
    }
    if (rung.NumRecorded() > 0 &&
        (options_.incumbent_policy == IncumbentPolicy::kByBracket ||
         options_.incumbent_policy == IncumbentPolicy::kByRung)) {
      // The bracket's output is the best configuration of its final settled
      // rung (by-rung accounting already offered it above; Offer is
      // idempotent for equal candidates).
      incumbent_.Offer(rung.BestTrial(), rung.BestLoss(),
                       geometry_.RungResource(inst.frontier));
    }
    return;
  }

  auto winners = rung.TopK(promote_count);
  for (TrialId id : winners) {
    inst.rungs[k].MarkPromoted(id);
    bank_->Get(id).status = TrialStatus::kPaused;
    if (telemetry_ != nullptr) {
      Json args = JsonObject{};
      args.Set("trial", Json(id));
      args.Set("bracket", Json(options_.s));
      args.Set("from_rung", Json(inst.frontier));
      args.Set("to_rung", Json(inst.frontier + 1));
      telemetry_->Event("trial_promoted", "trial", std::move(args));
      telemetry_->Count("scheduler.promotions");
    }
  }
  inst.queue[k + 1] = std::move(winners);
  ++inst.frontier;
}

void SyncShaScheduler::ReportResult(const Job& job, double loss) {
  auto& inst = instances_.at(job.tag);
  const auto k = static_cast<std::size_t>(job.rung);
  HT_CHECK(inst.outstanding[k] > 0);
  --inst.outstanding[k];
  in_flight_.erase(job.trial_id);

  bank_->RecordObservation(job.trial_id, job.to_resource, loss);
  inst.rungs[k].Record(job.trial_id, loss);
  Trial& trial = bank_->Get(job.trial_id);
  trial.status = job.rung == geometry_.NumRungs() - 1
                     ? TrialStatus::kCompleted
                     : TrialStatus::kPaused;
  sampler_->Observe(trial.config, job.to_resource, loss);
  if (telemetry_ != nullptr) telemetry_->Count("scheduler.results");
  if (options_.incumbent_policy == IncumbentPolicy::kIntermediate) {
    incumbent_.Offer(job.trial_id, loss, job.to_resource);
  }

  if (inst.dispatched[k] == inst.queue[k].size() && inst.outstanding[k] == 0 &&
      static_cast<int>(k) == inst.frontier) {
    OnRungSettled(job.tag);
  }
}

void SyncShaScheduler::ReportLost(const Job& job) {
  auto& inst = instances_.at(job.tag);
  const auto k = static_cast<std::size_t>(job.rung);
  HT_CHECK(inst.outstanding[k] > 0);
  --inst.outstanding[k];
  in_flight_.erase(job.trial_id);
  bank_->Get(job.trial_id).status = TrialStatus::kLost;
  if (telemetry_ != nullptr) {
    Json args = JsonObject{};
    args.Set("trial", Json(job.trial_id));
    args.Set("bracket", Json(options_.s));
    args.Set("rung", Json(job.rung));
    telemetry_->Event("trial_lost", "trial", std::move(args));
    telemetry_->Count("scheduler.jobs_lost");
  }

  if (inst.dispatched[k] == inst.queue[k].size() && inst.outstanding[k] == 0 &&
      static_cast<int>(k) == inst.frontier) {
    OnRungSettled(job.tag);
  }
}

bool SyncShaScheduler::Finished() const {
  if (options_.spawn_new_brackets) return false;
  if (instances_.empty()) return false;  // first bracket not yet started
  for (const auto& inst : instances_) {
    if (!inst.complete) return false;
  }
  return true;
}

std::optional<Recommendation> SyncShaScheduler::Current() const {
  return incumbent_.Current();
}

Json SyncShaScheduler::Snapshot() const { return SnapshotState(true); }

void SyncShaScheduler::Restore(const Json& snapshot, RestorePolicy policy) {
  RestoreState(snapshot, policy, true);
}

Json SyncShaScheduler::SnapshotState(bool include_bank) const {
  Json json = JsonObject{};
  // Bracket identity, validated on Restore.
  Json bracket = JsonObject{};
  bracket.Set("n", Json(static_cast<std::int64_t>(options_.n)));
  bracket.Set("r", Json(options_.r));
  bracket.Set("R", Json(options_.R));
  bracket.Set("eta", Json(options_.eta));
  bracket.Set("s", Json(options_.s));
  bracket.Set("spawn_new_brackets", Json(options_.spawn_new_brackets));
  bracket.Set("incumbent_policy",
              Json(static_cast<std::int64_t>(options_.incumbent_policy)));
  json.Set("bracket", std::move(bracket));

  if (include_bank) json.Set("trials", ToJson(*bank_));

  Json instances = JsonArray{};
  for (const auto& inst : instances_) {
    Json entry = JsonObject{};
    Json queue = JsonArray{};
    for (const auto& rung_queue : inst.queue) {
      Json ids = JsonArray{};
      for (TrialId id : rung_queue) ids.PushBack(Json(id));
      queue.PushBack(std::move(ids));
    }
    entry.Set("queue", std::move(queue));
    Json dispatched = JsonArray{};
    for (std::size_t d : inst.dispatched) {
      dispatched.PushBack(Json(static_cast<std::int64_t>(d)));
    }
    entry.Set("dispatched", std::move(dispatched));
    Json outstanding = JsonArray{};
    for (std::size_t o : inst.outstanding) {
      outstanding.PushBack(Json(static_cast<std::int64_t>(o)));
    }
    entry.Set("outstanding", std::move(outstanding));
    Json rungs = JsonArray{};
    for (const auto& rung : inst.rungs) {
      Json rung_entry = JsonObject{};
      Json results = JsonArray{};
      Json promoted = JsonArray{};
      for (const auto& [loss, id] : rung.results()) {
        Json pair = JsonObject{};
        pair.Set("trial", Json(id));
        pair.Set("loss", Json(loss));
        results.PushBack(std::move(pair));
        if (rung.IsPromoted(id)) promoted.PushBack(Json(id));
      }
      rung_entry.Set("results", std::move(results));
      rung_entry.Set("promoted", std::move(promoted));
      rungs.PushBack(std::move(rung_entry));
    }
    entry.Set("rungs", std::move(rungs));
    entry.Set("frontier", Json(inst.frontier));
    entry.Set("complete", Json(inst.complete));
    instances.PushBack(std::move(entry));
  }
  json.Set("instances", std::move(instances));

  Json in_flight = JsonArray{};
  for (const auto& [id, job] : in_flight_) {
    (void)id;
    in_flight.PushBack(ToJson(job));
  }
  json.Set("in_flight", std::move(in_flight));

  json.Set("completed_brackets",
           Json(static_cast<std::int64_t>(completed_brackets_)));
  json.Set("resource_dispatched", Json(resource_dispatched_));
  if (const auto rec = incumbent_.Current()) {
    Json entry = JsonObject{};
    entry.Set("trial", Json(rec->trial_id));
    entry.Set("loss", Json(rec->loss));
    entry.Set("resource", Json(rec->resource));
    json.Set("incumbent", std::move(entry));
  }
  Json rng_state = JsonArray{};
  for (std::uint64_t word : rng_.state()) {
    rng_state.PushBack(Json(static_cast<std::int64_t>(word)));
  }
  json.Set("rng", std::move(rng_state));
  return json;
}

void SyncShaScheduler::RestoreState(const Json& snapshot, RestorePolicy policy,
                                    bool restore_bank) {
  HT_CHECK_MSG(instances_.empty() && in_flight_.empty(),
               "Restore requires a freshly constructed scheduler");
  if (restore_bank) {
    HT_CHECK_MSG(bank_->size() == 0,
                 "Restore requires an untouched trial bank");
  }
  const Json& bracket = snapshot.at("bracket");
  HT_CHECK_MSG(
      bracket.at("n").AsInt() == static_cast<std::int64_t>(options_.n) &&
          bracket.at("r").AsDouble() == options_.r &&
          bracket.at("R").AsDouble() == options_.R &&
          bracket.at("eta").AsDouble() == options_.eta &&
          bracket.at("s").AsInt() == options_.s &&
          bracket.at("spawn_new_brackets").AsBool() ==
              options_.spawn_new_brackets &&
          bracket.at("incumbent_policy").AsInt() ==
              static_cast<std::int64_t>(options_.incumbent_policy),
      "snapshot bracket options do not match this scheduler");

  if (restore_bank) *bank_ = TrialBankFromJson(snapshot.at("trials"));

  for (const auto& entry : snapshot.at("instances").AsArray()) {
    BracketInstance inst;
    for (const auto& ids : entry.at("queue").AsArray()) {
      std::vector<TrialId> rung_queue;
      for (const auto& id : ids.AsArray()) rung_queue.push_back(id.AsInt());
      inst.queue.push_back(std::move(rung_queue));
    }
    for (const auto& d : entry.at("dispatched").AsArray()) {
      inst.dispatched.push_back(static_cast<std::size_t>(d.AsInt()));
    }
    for (const auto& o : entry.at("outstanding").AsArray()) {
      inst.outstanding.push_back(static_cast<std::size_t>(o.AsInt()));
    }
    for (const auto& rung_entry : entry.at("rungs").AsArray()) {
      Rung rung;
      for (const auto& pair : rung_entry.at("results").AsArray()) {
        rung.Record(pair.at("trial").AsInt(), pair.at("loss").AsDouble());
      }
      for (const auto& id : rung_entry.at("promoted").AsArray()) {
        rung.MarkPromoted(id.AsInt());
      }
      inst.rungs.push_back(std::move(rung));
    }
    inst.frontier = static_cast<int>(entry.at("frontier").AsInt());
    inst.complete = entry.at("complete").AsBool();
    instances_.push_back(std::move(inst));
  }

  for (const auto& entry : snapshot.at("in_flight").AsArray()) {
    Job job = JobFromJson(entry);
    in_flight_[job.trial_id] = job;
  }

  completed_brackets_ =
      static_cast<std::size_t>(snapshot.at("completed_brackets").AsInt());
  resource_dispatched_ = snapshot.at("resource_dispatched").AsDouble();
  if (snapshot.Has("incumbent")) {
    const Json& rec = snapshot.at("incumbent");
    incumbent_.Offer(rec.at("trial").AsInt(), rec.at("loss").AsDouble(),
                     rec.at("resource").AsDouble());
  }
  std::array<std::uint64_t, 4> rng_state{};
  const auto& words = snapshot.at("rng").AsArray();
  HT_CHECK(words.size() == rng_state.size());
  for (std::size_t i = 0; i < rng_state.size(); ++i) {
    rng_state[i] = static_cast<std::uint64_t>(words[i].AsInt());
  }
  rng_.set_state(rng_state);

  if (policy == RestorePolicy::kDropInFlight) {
    // The workers died with the service: every in-flight job is lost.
    // ReportLost shrinks the rung pool and settles frontiers exactly as
    // live worker deaths would (ascending trial order for determinism).
    while (!in_flight_.empty()) {
      // Copy: ReportLost erases this map entry and keeps using the job.
      const Job job = in_flight_.begin()->second;
      ReportLost(job);
    }
  }
}

}  // namespace hypertune
