// Synchronous Successive Halving (Algorithm 1), parallelized the "naive" way
// the paper critiques (Section 3.1, after Falkner et al. 2018): the surviving
// configurations of each rung are distributed across workers, every
// configuration in a rung must complete before the next rung starts, and a
// new bracket instance is spawned when no jobs are available in existing
// instances. Stragglers therefore stall promotions and dropped jobs shrink
// rungs — the failure modes Figures 7-8 quantify.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/geometry.h"
#include "core/incumbent.h"
#include "core/rung.h"
#include "core/sampler.h"
#include "core/scheduler.h"

namespace hypertune {

struct ShaOptions {
  /// Number of configurations in the bottom rung of each bracket.
  std::size_t n = 256;
  double r = 1;
  double R = 256;
  double eta = 4;
  int s = 0;
  bool resume_from_checkpoint = true;
  /// Spawn a fresh bracket instance when existing instances have no
  /// dispatchable work (keeps workers busy; the Falkner et al. scheme).
  /// When false the scheduler runs exactly one bracket and then finishes.
  bool spawn_new_brackets = true;
  /// When the incumbent is committed: at bracket completion (how SHA's
  /// output is defined) or at each rung completion (Appendix A.2's
  /// "by rung" accounting). kIntermediate offers after every result.
  IncumbentPolicy incumbent_policy = IncumbentPolicy::kByBracket;
  std::uint64_t seed = 1;
  /// Reported by name(); lets wrappers (BOHB = SHA + TPE sampler) label
  /// themselves.
  std::string display_name = "SHA";
};

class SyncShaScheduler final : public Scheduler {
 public:
  SyncShaScheduler(std::shared_ptr<ConfigSampler> sampler, ShaOptions options,
                   std::shared_ptr<TrialBank> bank = nullptr);

  std::optional<Job> GetJob() override;
  void ReportResult(const Job& job, double loss) override;
  void ReportLost(const Job& job) override;
  bool Finished() const override;
  std::optional<Recommendation> Current() const override;
  const TrialBank& trials() const override { return *bank_; }
  std::string name() const override { return options_.display_name; }
  void SetTelemetry(Telemetry* telemetry) override { telemetry_ = telemetry; }

  const ShaOptions& options() const { return options_; }
  const BracketGeometry& geometry() const { return geometry_; }

  std::size_t NumBracketInstances() const { return instances_.size(); }
  std::size_t NumCompletedBrackets() const { return completed_brackets_; }

  /// Resource units dispatched so far across all bracket instances.
  double ResourceDispatched() const { return resource_dispatched_; }

  /// Crash recovery: bracket instances (queues, dispatch cursors, rung
  /// results, promotion marks, frontiers), in-flight jobs, counters, the
  /// incumbent, and the sampling RNG. With kDropInFlight, dropping the
  /// in-flight jobs runs through ReportLost — shrinking rungs and settling
  /// frontiers exactly as live worker deaths would.
  bool SupportsSnapshot() const override { return true; }
  Json Snapshot() const override;
  void Restore(const Json& snapshot, RestorePolicy policy) override;
  using Scheduler::Restore;

  /// Composite-scheduler hooks (synchronous Hyperband): snapshot without
  /// the shared trial bank / restore assuming the composite already
  /// restored it.
  Json SnapshotState(bool include_bank) const;
  void RestoreState(const Json& snapshot, RestorePolicy policy,
                    bool restore_bank);

 private:
  /// One in-flight copy of the bracket.
  struct BracketInstance {
    /// Trials scheduled to run at each rung (rung 0 is the initial sample;
    /// later rungs are filled on promotion).
    std::vector<std::vector<TrialId>> queue;
    /// Per rung: how many of `queue[k]` have been dispatched.
    std::vector<std::size_t> dispatched;
    /// Per rung: dispatched jobs not yet reported (completed or lost).
    std::vector<std::size_t> outstanding;
    /// Per rung: completed results.
    std::vector<Rung> rungs;
    /// Lowest rung that has not completed.
    int frontier = 0;
    bool complete = false;
  };

  BracketInstance MakeInstance();
  std::optional<Job> DispatchFrom(std::size_t instance_idx);
  void OnRungSettled(std::size_t instance_idx);
  Job MakeJob(std::size_t instance_idx, TrialId id, int rung);

  std::shared_ptr<ConfigSampler> sampler_;
  ShaOptions options_;
  std::shared_ptr<TrialBank> bank_;
  BracketGeometry geometry_;
  std::vector<BracketInstance> instances_;
  IncumbentTracker incumbent_;
  Telemetry* telemetry_ = nullptr;
  Rng rng_;
  std::size_t completed_brackets_ = 0;
  double resource_dispatched_ = 0;
  /// Jobs dispatched but not yet reported, keyed by trial (a trial runs in
  /// exactly one instance at a time). Captured by Snapshot.
  std::map<TrialId, Job> in_flight_;
};

}  // namespace hypertune
