#include "core/trial.h"

#include <algorithm>

#include "common/check.h"

namespace hypertune {

TrialId TrialBank::Create(Configuration config, int bracket) {
  const auto id = static_cast<TrialId>(trials_.size());
  Trial trial;
  trial.id = id;
  trial.config = std::move(config);
  trial.bracket = bracket;
  trials_.push_back(std::move(trial));
  return id;
}

Trial& TrialBank::Get(TrialId id) {
  HT_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < trials_.size(),
               "unknown trial id " << id);
  return trials_[static_cast<std::size_t>(id)];
}

const Trial& TrialBank::Get(TrialId id) const {
  HT_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < trials_.size(),
               "unknown trial id " << id);
  return trials_[static_cast<std::size_t>(id)];
}

void TrialBank::RecordObservation(TrialId id, Resource resource, double loss) {
  Trial& trial = Get(id);
  trial.observations.push_back({resource, loss});
  trial.resource_trained = std::max(trial.resource_trained, resource);
}

}  // namespace hypertune
