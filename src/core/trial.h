// Trial records and the TrialBank that owns them.
#pragma once

#include <limits>
#include <vector>

#include "core/types.h"

namespace hypertune {

/// One validation-loss measurement at a resource level.
struct Observation {
  Resource resource = 0;
  double loss = 0.0;
};

/// A hyperparameter configuration under evaluation, with its full
/// measurement history.
struct Trial {
  TrialId id = -1;
  Configuration config;
  int bracket = 0;
  TrialStatus status = TrialStatus::kPending;
  /// Highest resource this trial has been trained to (checkpoint position).
  Resource resource_trained = 0;
  std::vector<Observation> observations;

  /// Lowest loss over all observations; +inf when none. ASHA's incumbent
  /// accounting uses intermediate losses, i.e. exactly this quantity
  /// (Section 3.3).
  double BestLoss() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& ob : observations) best = std::min(best, ob.loss);
    return best;
  }

  /// Loss of the most recent observation; +inf when none.
  double LatestLoss() const {
    return observations.empty() ? std::numeric_limits<double>::infinity()
                                : observations.back().loss;
  }
};

/// Owns all trials of a tuning run. Ids are dense indices, so lookups are
/// O(1). Schedulers composed of sub-schedulers (asynchronous Hyperband)
/// share one bank so ids stay globally unique.
class TrialBank {
 public:
  TrialId Create(Configuration config, int bracket);

  Trial& Get(TrialId id);
  const Trial& Get(TrialId id) const;

  std::size_t size() const { return trials_.size(); }
  auto begin() const { return trials_.begin(); }
  auto end() const { return trials_.end(); }

  /// Appends an observation and updates the trial's checkpoint position.
  void RecordObservation(TrialId id, Resource resource, double loss);

 private:
  std::vector<Trial> trials_;
};

}  // namespace hypertune
