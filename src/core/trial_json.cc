#include "core/trial_json.h"

#include "common/check.h"
#include "searchspace/config_json.h"

namespace hypertune {

const char* StatusName(TrialStatus status) {
  switch (status) {
    case TrialStatus::kPending: return "pending";
    case TrialStatus::kRunning: return "running";
    case TrialStatus::kPaused: return "paused";
    case TrialStatus::kCompleted: return "completed";
    case TrialStatus::kLost: return "lost";
    case TrialStatus::kStopped: return "stopped";
  }
  return "unknown";
}

TrialStatus StatusFromName(const std::string& name) {
  if (name == "pending") return TrialStatus::kPending;
  if (name == "running") return TrialStatus::kRunning;
  if (name == "paused") return TrialStatus::kPaused;
  if (name == "completed") return TrialStatus::kCompleted;
  if (name == "lost") return TrialStatus::kLost;
  if (name == "stopped") return TrialStatus::kStopped;
  throw CheckError("unknown trial status '" + name + "'");
}

Json ToJson(const Trial& trial) {
  Json json = JsonObject{};
  json.Set("id", Json(trial.id));
  json.Set("config", ToJson(trial.config));
  json.Set("bracket", Json(trial.bracket));
  json.Set("status", Json(StatusName(trial.status)));
  json.Set("resource_trained", Json(trial.resource_trained));
  Json observations = JsonArray{};
  for (const auto& ob : trial.observations) {
    Json entry = JsonObject{};
    entry.Set("resource", Json(ob.resource));
    entry.Set("loss", Json(ob.loss));
    observations.PushBack(std::move(entry));
  }
  json.Set("observations", std::move(observations));
  return json;
}

Trial TrialFromJson(const Json& json) {
  Trial trial;
  trial.id = json.at("id").AsInt();
  trial.config = ConfigurationFromJson(json.at("config"));
  trial.bracket = static_cast<int>(json.at("bracket").AsInt());
  trial.status = StatusFromName(json.at("status").AsString());
  trial.resource_trained = json.at("resource_trained").AsDouble();
  for (const auto& entry : json.at("observations").AsArray()) {
    trial.observations.push_back(
        {entry.at("resource").AsDouble(), entry.at("loss").AsDouble()});
  }
  return trial;
}

Json ToJson(const TrialBank& bank) {
  Json array = JsonArray{};
  for (const auto& trial : bank) array.PushBack(ToJson(trial));
  return array;
}

TrialBank TrialBankFromJson(const Json& json) {
  TrialBank bank;
  for (const auto& entry : json.AsArray()) {
    Trial restored = TrialFromJson(entry);
    const TrialId id = bank.Create(restored.config, restored.bracket);
    HT_CHECK_MSG(id == restored.id, "trial ids must be dense and ordered; got "
                                        << restored.id << " at slot " << id);
    Trial& trial = bank.Get(id);
    trial.status = restored.status;
    trial.resource_trained = restored.resource_trained;
    trial.observations = std::move(restored.observations);
  }
  return bank;
}

Json ToJson(const Job& job) {
  Json json = JsonObject{};
  json.Set("trial", Json(job.trial_id));
  json.Set("config", ToJson(job.config));
  json.Set("from", Json(job.from_resource));
  json.Set("to", Json(job.to_resource));
  json.Set("rung", Json(job.rung));
  json.Set("bracket", Json(job.bracket));
  json.Set("tag", Json(static_cast<std::int64_t>(job.tag)));
  return json;
}

Job JobFromJson(const Json& json) {
  Job job;
  job.trial_id = json.at("trial").AsInt();
  job.config = ConfigurationFromJson(json.at("config"));
  job.from_resource = json.at("from").AsDouble();
  job.to_resource = json.at("to").AsDouble();
  job.rung = static_cast<int>(json.at("rung").AsInt());
  job.bracket = static_cast<int>(json.at("bracket").AsInt());
  job.tag = static_cast<std::uint64_t>(json.at("tag").AsInt());
  return job;
}

}  // namespace hypertune
