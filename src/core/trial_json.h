// JSON (de)serialization of trials and trial banks, used both for result
// export and for scheduler snapshot/restore.
#pragma once

#include <string>

#include "common/json.h"
#include "core/trial.h"

namespace hypertune {

const char* StatusName(TrialStatus status);
TrialStatus StatusFromName(const std::string& name);

Json ToJson(const Trial& trial);
Trial TrialFromJson(const Json& json);

Json ToJson(const TrialBank& bank);
/// Rebuilds a bank; trial ids must be dense and in order (as produced by
/// ToJson).
TrialBank TrialBankFromJson(const Json& json);

/// Wire format for jobs (the tuning service sends these to workers).
Json ToJson(const Job& job);
Job JobFromJson(const Json& json);

}  // namespace hypertune
