// Shared vocabulary types for the tuner core.
#pragma once

#include <cstdint>
#include <string>

#include "searchspace/configuration.h"

namespace hypertune {

/// Identifies a trial within one tuning run (dense, starting at 0).
using TrialId = std::int64_t;

/// Training resource in the paper's abstract units: SGD iterations, epochs,
/// training examples, ... Tuners are agnostic to the unit (Section 3.1).
using Resource = double;

enum class TrialStatus {
  kPending,    // created, never dispatched
  kRunning,    // a job for this trial is in flight
  kPaused,     // trained to some rung, awaiting promotion
  kCompleted,  // trained to the maximum resource
  kLost,       // its in-flight job was dropped by a worker
  kStopped,    // abandoned by the tuner (e.g. replaced by a PBT exploit)
};

/// One unit of work handed to a worker: train `config` from a checkpoint at
/// `from_resource` up to `to_resource` and report the validation loss there.
///
/// `from_resource` encodes checkpoint semantics: schedulers that resume
/// incrementally-trained models set it to the trial's previously trained
/// resource; schedulers that retrain from scratch set 0. The simulator
/// charges time proportional to (to_resource - from_resource).
struct Job {
  TrialId trial_id = -1;
  Configuration config;
  Resource from_resource = 0;
  Resource to_resource = 0;
  /// Rung index the result will be recorded in (successive-halving family);
  /// step index for PBT; 0 otherwise.
  int rung = 0;
  /// Early-stopping rate s of the owning bracket (Hyperband family).
  int bracket = 0;
  /// Scheduler-internal routing tag (e.g. which bracket *instance* of
  /// synchronous SHA spawned this job). Opaque to workers.
  std::uint64_t tag = 0;
};

/// The configuration a tuner currently recommends, together with the
/// validation loss and resource at which that judgement was formed.
struct Recommendation {
  TrialId trial_id = -1;
  double loss = 0.0;
  Resource resource = 0;
};

}  // namespace hypertune
