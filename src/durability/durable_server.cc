#include "durability/durable_server.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/table.h"

namespace hypertune {

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), "cannot read '" << path << "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string GenerationName(const char* prefix, std::uint64_t generation,
                           const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", prefix,
                static_cast<unsigned long long>(generation), suffix);
  return buf;
}

/// Parses "<prefix>NNNNNN<suffix>" into NNNNNN, or nullopt.
std::optional<std::uint64_t> ParseGeneration(const std::string& name,
                                             std::string_view prefix,
                                             std::string_view suffix) {
  if (name.size() != prefix.size() + 6 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t generation = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 6; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    generation = generation * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return generation;
}

}  // namespace

ServerOptions DurableServer::WithJournal(ServerOptions options,
                                         LeaseEventSink* sink) {
  HT_CHECK_MSG(options.journal == nullptr,
               "DurableServer installs its own journal sink");
  options.journal = sink;
  return options;
}

DurableServer::DurableServer(Scheduler& scheduler,
                             ServerOptions server_options,
                             DurabilityOptions durability)
    : server_(scheduler, WithJournal(std::move(server_options), this)),
      durability_(std::move(durability)) {
  HT_CHECK_MSG(!durability_.dir.empty(), "DurabilityOptions::dir is required");
  HT_CHECK(durability_.snapshot_every > 0);
  std::filesystem::create_directories(durability_.dir);
  recovered_ = Recover();
  if (!recovered_) {
    // Fresh start: generation 0 has no snapshot, only a journal.
    writer_.emplace(JournalWriter::Create(
        JournalPath(0), WalWriteOptions{durability_.sync,
                                        durability_.sync_every}));
  }
}

std::string DurableServer::SnapshotPath(std::uint64_t generation) const {
  return (std::filesystem::path(durability_.dir) /
          GenerationName("snapshot-", generation, ".json"))
      .string();
}

std::string DurableServer::JournalPath(std::uint64_t generation) const {
  return (std::filesystem::path(durability_.dir) /
          GenerationName("wal-", generation, ".log"))
      .string();
}

bool DurableServer::Recover() {
  // The highest generation wins, whether it is identified by its snapshot
  // or its journal: a crash between writing snapshot-(g+1) and creating
  // wal-(g+1) leaves the snapshot as the only witness of the generation.
  std::optional<std::uint64_t> latest;
  for (const auto& entry :
       std::filesystem::directory_iterator(durability_.dir)) {
    const std::string name = entry.path().filename().string();
    auto generation = ParseGeneration(name, "snapshot-", ".json");
    if (!generation) generation = ParseGeneration(name, "wal-", ".log");
    if (!generation) continue;
    if (!latest || *generation > *latest) latest = *generation;
  }
  if (!latest) return false;

  generation_ = *latest;
  const std::string snapshot_path = SnapshotPath(generation_);
  if (std::filesystem::exists(snapshot_path)) {
    server_.Restore(Json::Parse(ReadWholeFile(snapshot_path)));
  } else {
    HT_CHECK_MSG(generation_ == 0,
                 "generation " << generation_
                               << " has a journal but no snapshot");
  }

  const WalWriteOptions wal_options{durability_.sync, durability_.sync_every};
  const std::string journal_path = JournalPath(generation_);
  if (!std::filesystem::exists(journal_path)) {
    // Crash window between snapshot write and journal creation: the
    // snapshot already holds everything, so the generation starts with an
    // empty journal.
    writer_.emplace(JournalWriter::Create(journal_path, wal_options));
    return true;
  }

  JournalReadResult journal = ReadJournal(journal_path);
  journal_tail_truncated_ = journal.truncated_tail;
  for (const std::string& payload : journal.payloads) {
    server_.ReplayJournalEvent(Json::Parse(payload));
    ++replayed_events_;
  }
  // Reopen for appending; a torn tail is truncated here, so the events the
  // crash half-wrote never exist as far as any future reader can tell.
  writer_.emplace(
      JournalWriter::Append(journal_path, wal_options, journal.valid_bytes));
  return true;
}

Json DurableServer::HandleMessage(const Json& message, double now) {
  Json reply = server_.HandleMessage(message, now);
  MaybeSnapshot();
  return reply;
}

void DurableServer::Tick(double now) {
  server_.Tick(now);
  MaybeSnapshot();
}

void DurableServer::JournalRecord(Json record) {
  if (!writer_) return;  // only during recovery, which never journals
  writer_->Append(record.Dump());
  ++records_since_snapshot_;
}

void DurableServer::JournalAuxiliary(const Json& event) {
  HT_CHECK_MSG(event.Has("kind") && event.at("kind").AsString() == "hazard",
               "auxiliary journal records must carry kind \"hazard\"");
  JournalRecord(event);
}

void DurableServer::JournalControl(const Json& event) {
  HT_CHECK_MSG(event.Has("kind") && event.at("kind").AsString() == "shift",
               "control journal records must carry kind \"shift\"");
  // Journal first, then mutate: matches the write path's "in-memory first,
  // journaled within the same message" ordering closely enough — a crash
  // between the two replays the shift on recovery, which is the state the
  // live server was about to reach.
  JournalRecord(event);
  server_.ShiftDeadlines(event.at("delta").AsDouble());
  MaybeSnapshot();
}

void DurableServer::MaybeSnapshot() {
  if (records_since_snapshot_ >= durability_.snapshot_every) TakeSnapshot();
}

void DurableServer::TakeSnapshot() {
  HT_CHECK(writer_.has_value());
  // Make the current journal durable before superseding it: until the new
  // generation's files both exist, recovery still runs through this one.
  writer_->Sync();
  const std::uint64_t next = generation_ + 1;
  HT_CHECK_MSG(WriteFile(SnapshotPath(next), server_.Snapshot().Dump()),
               "cannot write snapshot " << SnapshotPath(next));
  writer_.emplace(JournalWriter::Create(
      JournalPath(next),
      WalWriteOptions{durability_.sync, durability_.sync_every}));
  generation_ = next;
  records_since_snapshot_ = 0;
  PruneBefore(next);
}

void DurableServer::PruneBefore(std::uint64_t keep) {
  std::error_code ec;
  std::vector<std::filesystem::path> stale;
  for (const auto& entry :
       std::filesystem::directory_iterator(durability_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    auto generation = ParseGeneration(name, "snapshot-", ".json");
    if (!generation) generation = ParseGeneration(name, "wal-", ".log");
    if (generation && *generation < keep) stale.push_back(entry.path());
  }
  for (const auto& path : stale) std::filesystem::remove(path, ec);
}

void DurableServer::OnGrant(std::uint64_t job_id, std::uint64_t worker,
                            const Job& job, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("grant"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("worker", Json(static_cast<std::int64_t>(worker)));
  // The job itself is re-derived from the restored scheduler on replay;
  // the trial id rides along so divergence fails loudly.
  record.Set("trial", Json(job.trial_id));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnReport(std::uint64_t job_id, double loss, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("report"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("loss", Json(loss));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnRenew(std::uint64_t job_id, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("renew"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnExpire(std::uint64_t job_id, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("expire"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

}  // namespace hypertune
