#include "durability/durable_server.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), "cannot read '" << path << "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string GenerationName(const char* prefix, std::uint64_t generation,
                           const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", prefix,
                static_cast<unsigned long long>(generation), suffix);
  return buf;
}

/// Parses "<prefix>NNNNNN<suffix>" into NNNNNN, or nullopt.
std::optional<std::uint64_t> ParseGeneration(const std::string& name,
                                             std::string_view prefix,
                                             std::string_view suffix) {
  if (name.size() != prefix.size() + 6 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t generation = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 6; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    generation = generation * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return generation;
}

}  // namespace

ServerOptions DurableServer::WithJournal(ServerOptions options,
                                         LeaseEventSink* sink) {
  HT_CHECK_MSG(options.journal == nullptr,
               "DurableServer installs its own journal sink");
  options.journal = sink;
  return options;
}

DurableServer::DurableServer(Scheduler& scheduler,
                             ServerOptions server_options,
                             DurabilityOptions durability)
    : server_(scheduler, WithJournal(std::move(server_options), this)),
      durability_(std::move(durability)) {
  HT_CHECK_MSG(!durability_.dir.empty(), "DurabilityOptions::dir is required");
  HT_CHECK(durability_.snapshot_every > 0);
  std::filesystem::create_directories(durability_.dir);
  recovered_ = Recover();
  if (!recovered_) {
    // Fresh start: generation 0 has no snapshot, only a journal.
    writer_.emplace(JournalWriter::Create(JournalPath(0), WalOptions()));
  }
}

WalWriteOptions DurableServer::WalOptions() const {
  return WalWriteOptions{durability_.sync, durability_.sync_every,
                         durability_.file_ops};
}

void DurableServer::Count(const char* name) {
  if (durability_.telemetry != nullptr) durability_.telemetry->Count(name);
}

bool DurableServer::IsGrantRequest(const Json& message) {
  try {
    if (!message.Has("type")) return false;
    const std::string& type = message.at("type").AsString();
    return type == "request_job" || type == "request_jobs";
  } catch (const std::exception&) {
    return false;  // not even an object; the server will reject it
  }
}

std::string DurableServer::SnapshotPath(std::uint64_t generation) const {
  return (std::filesystem::path(durability_.dir) /
          GenerationName("snapshot-", generation, ".json"))
      .string();
}

std::string DurableServer::JournalPath(std::uint64_t generation) const {
  return (std::filesystem::path(durability_.dir) /
          GenerationName("wal-", generation, ".log"))
      .string();
}

bool DurableServer::Recover() {
  // The highest generation wins, whether it is identified by its snapshot
  // or its journal: a crash between writing snapshot-(g+1) and creating
  // wal-(g+1) leaves the snapshot as the only witness of the generation.
  std::optional<std::uint64_t> latest;
  for (const auto& entry :
       std::filesystem::directory_iterator(durability_.dir)) {
    const std::string name = entry.path().filename().string();
    auto generation = ParseGeneration(name, "snapshot-", ".json");
    if (!generation) generation = ParseGeneration(name, "wal-", ".log");
    if (!generation) continue;
    if (!latest || *generation > *latest) latest = *generation;
  }
  if (!latest) return false;

  generation_ = *latest;
  const std::string snapshot_path = SnapshotPath(generation_);
  if (std::filesystem::exists(snapshot_path)) {
    server_.Restore(Json::Parse(ReadWholeFile(snapshot_path)));
  } else {
    HT_CHECK_MSG(generation_ == 0,
                 "generation " << generation_
                               << " has a journal but no snapshot");
  }

  const WalWriteOptions wal_options = WalOptions();
  const std::string journal_path = JournalPath(generation_);
  if (!std::filesystem::exists(journal_path)) {
    // Crash window between snapshot write and journal creation: the
    // snapshot already holds everything, so the generation starts with an
    // empty journal.
    writer_.emplace(JournalWriter::Create(journal_path, wal_options));
    return true;
  }

  JournalReadResult journal = ReadJournal(journal_path);
  journal_tail_truncated_ = journal.truncated_tail;
  for (const std::string& payload : journal.payloads) {
    server_.ReplayJournalEvent(Json::Parse(payload));
    ++replayed_events_;
  }
  // Reopen for appending; a torn tail is truncated here, so the events the
  // crash half-wrote never exist as far as any future reader can tell.
  writer_.emplace(
      JournalWriter::Append(journal_path, wal_options, journal.valid_bytes));
  return true;
}

Json DurableServer::HandleMessage(const Json& message, double now) {
  TryResumeJournal();
  if (degraded_ && IsGrantRequest(message)) {
    // Read-only: a grant the journal cannot record would be a decision the
    // recovered server never made. Heartbeats and reports still flow —
    // their records buffer — so in-flight work is not thrown away.
    ++stats_.grants_denied;
    Count("durability.grants_denied");
    Json reply = JsonObject{};
    reply.Set("type", Json("no_job"));
    reply.Set("retry_after", Json(durability_.degraded_retry_after));
    reply.Set("degraded", Json(true));
    return reply;
  }
  Json reply = server_.HandleMessage(message, now);
  MaybeSnapshot();
  return reply;
}

void DurableServer::Tick(double now) {
  TryResumeJournal();
  server_.Tick(now);
  MaybeSnapshot();
}

void DurableServer::EnterDegraded() {
  if (degraded_) return;
  degraded_ = true;
  ++stats_.degraded_entered;
  Count("durability.degraded_entered");
}

void DurableServer::TryResumeJournal() {
  if (!degraded_ || !writer_) return;
  while (!buffered_.empty()) {
    switch (writer_->TryAppend(buffered_.front())) {
      case AppendResult::kOk:
        buffered_.pop_front();
        ++records_since_snapshot_;
        continue;
      case AppendResult::kSyncFailed:
        // The frame's bytes landed (pop it — re-appending would duplicate
        // it on replay) but durability is still pending; stay degraded.
        buffered_.pop_front();
        ++records_since_snapshot_;
        ++stats_.journal_sync_failures;
        Count("durability.journal_sync_failures");
        return;
      case AppendResult::kWriteFailed:
        ++stats_.journal_write_failures;
        Count("durability.journal_write_failures");
        return;  // still unwritable; probe again on the next message/tick
    }
  }
  if (!writer_->TrySync()) {
    ++stats_.journal_sync_failures;
    Count("durability.journal_sync_failures");
    return;
  }
  degraded_ = false;
  ++stats_.degraded_exited;
  Count("durability.degraded_exited");
}

void DurableServer::JournalRecord(Json record) {
  if (!writer_) return;  // only during recovery, which never journals
  std::string payload = record.Dump();
  if (degraded_) {
    buffered_.push_back(std::move(payload));
    ++stats_.records_buffered;
    Count("durability.records_buffered");
    return;
  }
  switch (writer_->TryAppend(payload)) {
    case AppendResult::kOk:
      ++records_since_snapshot_;
      return;
    case AppendResult::kWriteFailed:
      // The frame never reached the journal: buffer it (order preserved)
      // and degrade instead of crashing mid-message.
      ++stats_.journal_write_failures;
      Count("durability.journal_write_failures");
      EnterDegraded();
      buffered_.push_back(std::move(payload));
      ++stats_.records_buffered;
      Count("durability.records_buffered");
      return;
    case AppendResult::kSyncFailed:
      // The frame is appended but not yet durable; degrade until an fsync
      // succeeds. Nothing to buffer.
      ++stats_.journal_sync_failures;
      Count("durability.journal_sync_failures");
      ++records_since_snapshot_;
      EnterDegraded();
      return;
  }
}

void DurableServer::JournalAuxiliary(const Json& event) {
  HT_CHECK_MSG(event.Has("kind") && event.at("kind").AsString() == "hazard",
               "auxiliary journal records must carry kind \"hazard\"");
  JournalRecord(event);
}

void DurableServer::JournalControl(const Json& event) {
  HT_CHECK_MSG(event.Has("kind") && event.at("kind").AsString() == "shift",
               "control journal records must carry kind \"shift\"");
  // Journal first, then mutate: matches the write path's "in-memory first,
  // journaled within the same message" ordering closely enough — a crash
  // between the two replays the shift on recovery, which is the state the
  // live server was about to reach.
  JournalRecord(event);
  server_.ShiftDeadlines(event.at("delta").AsDouble());
  MaybeSnapshot();
}

void DurableServer::MaybeSnapshot() {
  // While degraded the current snapshot+journal are the only recovery
  // story; compaction resumes with durability.
  if (degraded_) return;
  if (records_since_snapshot_ >= durability_.snapshot_every) TakeSnapshot();
}

bool DurableServer::WriteSnapshotFile(const std::string& path,
                                      const std::string& content) {
  FileOps& ops = durability_.file_ops != nullptr ? *durability_.file_ops
                                                 : FileOps::Real();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  // Write-then-fsync-then-rename: the destination is only ever replaced by
  // a fully durable file, so neither a crash nor an injected ENOSPC can
  // leave a torn snapshot where recovery would trust one.
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ops.Write(fd, content.data() + written,
                                content.size() - written);
    if (n <= 0) break;
    written += static_cast<std::size_t>(n);
  }
  const bool durable = written == content.size() && ops.Fsync(fd) == 0;
  ::close(fd);
  if (!durable || ops.Rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

void DurableServer::TakeSnapshot() {
  HT_CHECK(writer_.has_value());
  // Make the current journal durable before superseding it: until the new
  // generation's files both exist, recovery still runs through this one.
  if (!writer_->TrySync()) {
    ++stats_.journal_sync_failures;
    Count("durability.journal_sync_failures");
    EnterDegraded();
    return;
  }
  const std::uint64_t next = generation_ + 1;
  if (!WriteSnapshotFile(SnapshotPath(next), server_.Snapshot().Dump())) {
    // Non-fatal: the current generation still recovers everything. Counted
    // and retried at the next snapshot boundary.
    ++stats_.snapshot_failures;
    Count("durability.snapshot_failures");
    return;
  }
  auto writer = JournalWriter::TryCreate(JournalPath(next), WalOptions());
  if (!writer) {
    // The snapshot exists but its journal does not — and this server will
    // keep appending to the OLD generation, which recovery would ignore in
    // favor of the newer snapshot. Remove the snapshot to keep the highest
    // generation on disk the one being written to.
    std::error_code ec;
    std::filesystem::remove(SnapshotPath(next), ec);
    HT_CHECK_MSG(!ec, "cannot remove orphaned snapshot "
                          << SnapshotPath(next));
    ++stats_.snapshot_failures;
    Count("durability.snapshot_failures");
    return;
  }
  writer_.emplace(std::move(*writer));
  generation_ = next;
  records_since_snapshot_ = 0;
  PruneBefore(next);
}

void DurableServer::PruneBefore(std::uint64_t keep) {
  std::error_code ec;
  std::vector<std::filesystem::path> stale;
  for (const auto& entry :
       std::filesystem::directory_iterator(durability_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    auto generation = ParseGeneration(name, "snapshot-", ".json");
    if (!generation) generation = ParseGeneration(name, "wal-", ".log");
    if (generation && *generation < keep) stale.push_back(entry.path());
  }
  for (const auto& path : stale) std::filesystem::remove(path, ec);
}

void DurableServer::OnGrant(std::uint64_t job_id, std::uint64_t worker,
                            const Job& job, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("grant"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("worker", Json(static_cast<std::int64_t>(worker)));
  // The job itself is re-derived from the restored scheduler on replay;
  // the trial id rides along so divergence fails loudly.
  record.Set("trial", Json(job.trial_id));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnReport(std::uint64_t job_id, double loss, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("report"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("loss", Json(loss));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnRenew(std::uint64_t job_id, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("renew"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

void DurableServer::OnExpire(std::uint64_t job_id, double now) {
  Json record = JsonObject{};
  record.Set("kind", Json("expire"));
  record.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  record.Set("now", Json(now));
  JournalRecord(std::move(record));
}

}  // namespace hypertune
