// DurableServer: crash recovery for the tuning service.
//
// Wraps a TuningServer with the snapshot + write-ahead-journal scheme from
// DESIGN.md §7. On-disk layout inside DurabilityOptions::dir:
//
//   snapshot-%06u.json   full server state at the start of generation g
//                        (absent for generation 0 — a fresh server)
//   wal-%06u.log         every scheduler-mutating event since that snapshot
//
// The invariant: snapshot(g) + replay(wal(g)) == the live server at the
// moment of the last journaled event. Every mutation is applied to the
// in-memory server first and journaled immediately after (within the same
// message), so a crash loses at most the mutations of the message being
// handled — and the chaos harness (tools/chaos_recovery.cc) kills servers
// at message boundaries to prove the recovered decision sequence is
// byte-identical to an uninterrupted run.
//
// Snapshots compact the journal: after `snapshot_every` journaled records
// the server state is written to snapshot-(g+1) (atomically, via
// write-then-rename), a fresh wal-(g+1) is started, and older generations
// are pruned. Recovery picks the highest generation present, restores its
// snapshot (if any), replays its journal tail — truncating a torn or
// CRC-corrupt tail rather than parsing it — and reopens the journal for
// appending. A crash between writing snapshot-(g+1) and creating
// wal-(g+1) is also covered: the snapshot alone identifies the
// generation, and recovery starts it an empty journal.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/json.h"
#include "durability/wal.h"
#include "service/server.h"

namespace hypertune {

class Telemetry;

struct DurabilityOptions {
  /// Directory holding snapshots and journals. Created if absent.
  std::string dir;
  /// Journal fsync policy (see wal.h).
  SyncPolicy sync = SyncPolicy::kEveryN;
  std::size_t sync_every = 64;
  /// Take a compacting snapshot after this many journaled records.
  std::size_t snapshot_every = 1024;
  /// retry_after (seconds) in grant denials while degraded.
  double degraded_retry_after = 5.0;
  /// File-op seam for journal + snapshot writes (fault injection); null =
  /// real syscalls.
  FileOps* file_ops = nullptr;
  /// Optional observability sink for degraded-mode counters (not owned).
  Telemetry* telemetry = nullptr;
};

/// Counters for the degraded read-only mode (see class comment).
struct DurabilityStats {
  std::size_t journal_write_failures = 0;
  std::size_t journal_sync_failures = 0;
  std::size_t snapshot_failures = 0;
  std::size_t degraded_entered = 0;
  std::size_t degraded_exited = 0;
  /// Records buffered in memory while the journal was unwritable (each is
  /// re-appended when the journal resumes).
  std::size_t records_buffered = 0;
  /// request_job / request_jobs denied while degraded.
  std::size_t grants_denied = 0;
};

/// A TuningServer that survives crashes. Construction either starts fresh
/// (empty state dir) or recovers: restore the latest snapshot, replay the
/// journal tail, reopen the journal. The wrapped server and scheduler must
/// be freshly constructed with the same deterministic configuration the
/// crashed process used — the journal stores decisions, not configuration.
///
/// Degraded read-only mode: when a journal write or fsync fails (full
/// disk, dying device), the server does NOT crash. It stops granting new
/// work (request_job[s] get {"type":"no_job","degraded":true} with a
/// retry_after), keeps absorbing heartbeats and reports — their journal
/// records are buffered in memory, in order — and probes the journal at
/// every subsequent message/tick. Once an append succeeds again the
/// buffered records are flushed, the journal is fsynced, and the server
/// exits degraded mode. The mode trades the no-loss guarantee for
/// availability *of already-leased work only*: a crash while degraded
/// loses the buffered records, which is why nothing new is granted until
/// durability returns. Snapshot-write failures are softer — counted and
/// retried at the next boundary — because the current generation's
/// snapshot+journal remain the recovery story throughout.
class DurableServer final : public MessageService, public LeaseEventSink {
 public:
  /// `server_options.journal` must be unset; DurableServer installs itself.
  DurableServer(Scheduler& scheduler, ServerOptions server_options,
                DurabilityOptions durability);

  /// Forwards to TuningServer::HandleMessage, then snapshots if due.
  Json HandleMessage(const Json& message, double now) override;
  /// Forwards to TuningServer::Tick (expiries get journaled via the sink),
  /// then snapshots if due.
  void Tick(double now) override;

  /// Journals an auxiliary (audit-only) record — e.g. the simulator's
  /// hazard fate draws. Replay ignores these; they exist so a post-mortem
  /// can reconstruct *why* a run unfolded as it did, not just *what* the
  /// scheduler decided.
  void JournalAuxiliary(const Json& event);

  /// Journals a control record that IS replayed (unlike auxiliaries) and
  /// applies it to the live server. The only kind today is the study
  /// manager's "shift" (a resume-time lease-deadline shift; see
  /// TuningServer::ShiftDeadlines) — journaled so a post-crash replay
  /// reproduces the shifted deadlines instead of expiring frozen leases.
  void JournalControl(const Json& event);

  /// Forces a compacting snapshot now (also fsyncs the journal first).
  void TakeSnapshot();

  TuningServer& server() { return server_; }
  const TuningServer& server() const { return server_; }

  /// True when construction found prior state and recovered from it.
  bool recovered() const { return recovered_; }
  /// Current snapshot generation (0 = never snapshotted).
  std::uint64_t generation() const { return generation_; }
  /// Journal events replayed during recovery (0 when starting fresh).
  std::size_t replayed_events() const { return replayed_events_; }
  /// True when recovery found (and truncated) a torn/corrupt journal tail.
  bool journal_tail_truncated() const { return journal_tail_truncated_; }

  /// True while the journal is unwritable and grants are being denied.
  bool degraded() const { return degraded_; }
  /// Journal records currently buffered in memory (degraded mode only).
  std::size_t buffered_records() const { return buffered_.size(); }
  DurabilityStats durability_stats() const { return stats_; }

  // LeaseEventSink — invoked by the wrapped server after each mutation.
  void OnGrant(std::uint64_t job_id, std::uint64_t worker, const Job& job,
               double now) override;
  void OnReport(std::uint64_t job_id, double loss, double now) override;
  void OnRenew(std::uint64_t job_id, double now) override;
  void OnExpire(std::uint64_t job_id, double now) override;

 private:
  std::string SnapshotPath(std::uint64_t generation) const;
  std::string JournalPath(std::uint64_t generation) const;
  /// Restores snapshot + journal tail from the highest generation on disk;
  /// returns false when the dir holds no prior state.
  bool Recover();
  void JournalRecord(Json record);
  void MaybeSnapshot();
  /// Deletes snapshots/journals of generations before `keep`.
  void PruneBefore(std::uint64_t keep);

  /// True for request_job / request_jobs — what degraded mode denies.
  static bool IsGrantRequest(const Json& message);
  void Count(const char* name);
  void EnterDegraded();
  /// Degraded-mode probe: re-append buffered records, fsync, and exit the
  /// mode once everything lands. Cheap no-op when not degraded.
  void TryResumeJournal();
  /// Atomic fault-aware snapshot write (tmp + fsync + rename through the
  /// FileOps seam); false on failure, with the tmp file removed.
  bool WriteSnapshotFile(const std::string& path, const std::string& content);
  WalWriteOptions WalOptions() const;

  static ServerOptions WithJournal(ServerOptions options,
                                   LeaseEventSink* sink);

  TuningServer server_;
  DurabilityOptions durability_;
  std::optional<JournalWriter> writer_;
  std::uint64_t generation_ = 0;
  std::size_t records_since_snapshot_ = 0;
  bool recovered_ = false;
  std::size_t replayed_events_ = 0;
  bool journal_tail_truncated_ = false;
  bool degraded_ = false;
  /// Journal payloads awaiting re-append, oldest first (order is the
  /// replay order, so it must be preserved exactly).
  std::deque<std::string> buffered_;
  DurabilityStats stats_;
};

}  // namespace hypertune
