#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"

namespace hypertune {

namespace {

constexpr char kMagic[8] = {'H', 'T', 'W', 'A', 'L', '0', '0', '1'};
constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

void PutU32(unsigned char* out, std::uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xFF);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xFF);
}

std::uint32_t GetU32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void WriteAll(int fd, const void* data, std::size_t size,
              const char* what) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd, bytes, size);
    HT_CHECK_MSG(written > 0, "journal write failed (" << what << "): "
                                  << std::strerror(errno));
    bytes += written;
    size -= static_cast<std::size_t>(written);
  }
}

}  // namespace

std::string_view JournalMagic() { return {kMagic, sizeof(kMagic)}; }

JournalWriter::JournalWriter(int fd, WalWriteOptions options)
    : fd_(fd), options_(options) {
  HT_CHECK(options_.sync != SyncPolicy::kEveryN || options_.sync_every > 0);
}

JournalWriter JournalWriter::Create(const std::string& path,
                                    WalWriteOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HT_CHECK_MSG(fd >= 0, "cannot create journal '" << path
                            << "': " << std::strerror(errno));
  JournalWriter writer(fd, options);
  WriteAll(fd, kMagic, sizeof(kMagic), "header");
  return writer;
}

JournalWriter JournalWriter::Append(const std::string& path,
                                    WalWriteOptions options,
                                    std::uint64_t valid_bytes) {
  HT_CHECK(valid_bytes >= sizeof(kMagic));
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  HT_CHECK_MSG(fd >= 0, "cannot open journal '" << path
                            << "': " << std::strerror(errno));
  // Drop any torn tail first: appending after garbage would strand every
  // subsequent frame behind an unreadable one.
  HT_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(valid_bytes)) == 0,
               "cannot truncate journal '" << path
                                           << "': " << std::strerror(errno));
  HT_CHECK_MSG(::lseek(fd, 0, SEEK_END) >= 0,
               "cannot seek journal '" << path
                                       << "': " << std::strerror(errno));
  return JournalWriter(fd, options);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      frames_written_(other.frames_written_),
      frames_since_sync_(other.frames_since_sync_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    frames_written_ = other.frames_written_;
    frames_since_sync_ = other.frames_since_sync_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ < 0) return;
  if (options_.sync != SyncPolicy::kNone) ::fsync(fd_);
  ::close(fd_);
}

void JournalWriter::Append(std::string_view payload) {
  HT_CHECK(fd_ >= 0);
  unsigned char header[kFrameHeader];
  PutU32(header, static_cast<std::uint32_t>(payload.size()));
  PutU32(header + 4, Crc32(payload));
  // One write per frame (header + payload) so a crash tears at most the
  // frame being appended, never an earlier one.
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.append(reinterpret_cast<const char*>(header), kFrameHeader);
  frame.append(payload.data(), payload.size());
  WriteAll(fd_, frame.data(), frame.size(), "frame");
  ++frames_written_;
  switch (options_.sync) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kEveryN:
      if (++frames_since_sync_ >= options_.sync_every) Sync();
      break;
    case SyncPolicy::kAlways:
      Sync();
      break;
  }
}

void JournalWriter::Sync() {
  HT_CHECK(fd_ >= 0);
  HT_CHECK_MSG(::fsync(fd_) == 0,
               "journal fsync failed: " << std::strerror(errno));
  frames_since_sync_ = 0;
}

JournalReadResult ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), "cannot read journal '" << path << "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  HT_CHECK_MSG(bytes.size() >= sizeof(kMagic) &&
                   std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
               "'" << path << "' is not a write-ahead journal");

  JournalReadResult result;
  std::size_t offset = sizeof(kMagic);
  result.valid_bytes = offset;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameHeader) break;  // torn frame header
    const auto* frame =
        reinterpret_cast<const unsigned char*>(bytes.data() + offset);
    const std::uint32_t length = GetU32(frame);
    const std::uint32_t crc = GetU32(frame + 4);
    if (bytes.size() - offset - kFrameHeader < length) break;  // torn payload
    const std::string_view payload(bytes.data() + offset + kFrameHeader,
                                   length);
    if (Crc32(payload) != crc) break;  // bit rot or torn overwrite
    result.payloads.emplace_back(payload);
    offset += kFrameHeader + length;
    result.valid_bytes = offset;
  }
  result.truncated_tail = result.valid_bytes < bytes.size();
  return result;
}

}  // namespace hypertune
