#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"

namespace hypertune {

namespace {

constexpr char kMagic[8] = {'H', 'T', 'W', 'A', 'L', '0', '0', '1'};
constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

void PutU32(unsigned char* out, std::uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xFF);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xFF);
}

std::uint32_t GetU32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

/// Writes all of `size` through `ops`; returns bytes written (< size on
/// failure, with errno set by the failing op).
std::size_t WriteSome(FileOps& ops, int fd, const void* data,
                      std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ops.Write(fd, bytes + written, size - written);
    if (n <= 0) return written;
    written += static_cast<std::size_t>(n);
  }
  return written;
}

}  // namespace

std::string_view JournalMagic() { return {kMagic, sizeof(kMagic)}; }

JournalWriter::JournalWriter(int fd, WalWriteOptions options)
    : fd_(fd), options_(options),
      ops_(options.file_ops != nullptr ? options.file_ops : &FileOps::Real()) {
  HT_CHECK(options_.sync != SyncPolicy::kEveryN || options_.sync_every > 0);
}

std::optional<JournalWriter> JournalWriter::TryCreate(
    const std::string& path, WalWriteOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return std::nullopt;
  JournalWriter writer(fd, options);
  if (WriteSome(*writer.ops_, fd, kMagic, sizeof(kMagic)) != sizeof(kMagic)) {
    // A truncated header is not a journal; remove the stump so recovery
    // never mistakes it for one.
    const int saved = errno;
    ::close(std::exchange(writer.fd_, -1));
    ::unlink(path.c_str());
    errno = saved;
    return std::nullopt;
  }
  writer.good_bytes_ = sizeof(kMagic);
  return writer;
}

JournalWriter JournalWriter::Create(const std::string& path,
                                    WalWriteOptions options) {
  auto writer = TryCreate(path, options);
  HT_CHECK_MSG(writer.has_value(), "cannot create journal '"
                                       << path << "': "
                                       << std::strerror(errno));
  return std::move(*writer);
}

JournalWriter JournalWriter::Append(const std::string& path,
                                    WalWriteOptions options,
                                    std::uint64_t valid_bytes) {
  HT_CHECK(valid_bytes >= sizeof(kMagic));
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  HT_CHECK_MSG(fd >= 0, "cannot open journal '" << path
                            << "': " << std::strerror(errno));
  JournalWriter writer(fd, options);
  // Drop any torn tail first: appending after garbage would strand every
  // subsequent frame behind an unreadable one.
  HT_CHECK_MSG(writer.ops_->Truncate(fd, static_cast<off_t>(valid_bytes)) == 0,
               "cannot truncate journal '" << path
                                           << "': " << std::strerror(errno));
  HT_CHECK_MSG(::lseek(fd, 0, SEEK_END) >= 0,
               "cannot seek journal '" << path
                                       << "': " << std::strerror(errno));
  writer.good_bytes_ = valid_bytes;
  return writer;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      ops_(other.ops_),
      frames_written_(other.frames_written_),
      frames_since_sync_(other.frames_since_sync_),
      good_bytes_(other.good_bytes_),
      tail_dirty_(other.tail_dirty_),
      last_errno_(other.last_errno_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    ops_ = other.ops_;
    frames_written_ = other.frames_written_;
    frames_since_sync_ = other.frames_since_sync_;
    good_bytes_ = other.good_bytes_;
    tail_dirty_ = other.tail_dirty_;
    last_errno_ = other.last_errno_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ < 0) return;
  // Best-effort: a destructor cannot degrade or throw. Callers with a
  // durability contract (DurableServer) sync explicitly via TrySync and
  // route failures into degraded mode before ever reaching this.
  if (options_.sync != SyncPolicy::kNone) (void)TrySync();
  ::close(fd_);
}

void JournalWriter::Append(std::string_view payload) {
  HT_CHECK_MSG(TryAppend(payload) == AppendResult::kOk,
               "journal write failed: " << std::strerror(last_errno_));
}

void JournalWriter::Sync() {
  HT_CHECK_MSG(TrySync(),
               "journal fsync failed: " << std::strerror(last_errno_));
}

bool JournalWriter::RepairTail() {
  if (!tail_dirty_) return true;
  if (ops_->Truncate(fd_, static_cast<off_t>(good_bytes_)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    last_errno_ = errno;
    return false;
  }
  tail_dirty_ = false;
  return true;
}

AppendResult JournalWriter::TryAppend(std::string_view payload) {
  HT_CHECK(fd_ >= 0);
  if (!RepairTail()) return AppendResult::kWriteFailed;
  unsigned char header[kFrameHeader];
  PutU32(header, static_cast<std::uint32_t>(payload.size()));
  PutU32(header + 4, Crc32(payload));
  // One write per frame (header + payload) so a crash tears at most the
  // frame being appended, never an earlier one.
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.append(reinterpret_cast<const char*>(header), kFrameHeader);
  frame.append(payload.data(), payload.size());
  const std::size_t written = WriteSome(*ops_, fd_, frame.data(), frame.size());
  if (written != frame.size()) {
    last_errno_ = errno;
    tail_dirty_ = written > 0;
    return AppendResult::kWriteFailed;
  }
  good_bytes_ += frame.size();
  ++frames_written_;
  switch (options_.sync) {
    case SyncPolicy::kNone:
      return AppendResult::kOk;
    case SyncPolicy::kEveryN:
      if (++frames_since_sync_ < options_.sync_every) return AppendResult::kOk;
      break;
    case SyncPolicy::kAlways:
      break;
  }
  return TrySync() ? AppendResult::kOk : AppendResult::kSyncFailed;
}

bool JournalWriter::TrySync() {
  HT_CHECK(fd_ >= 0);
  if (ops_->Fsync(fd_) != 0) {
    last_errno_ = errno;
    return false;
  }
  frames_since_sync_ = 0;
  return true;
}

JournalReadResult ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), "cannot read journal '" << path << "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  HT_CHECK_MSG(bytes.size() >= sizeof(kMagic) &&
                   std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
               "'" << path << "' is not a write-ahead journal");

  JournalReadResult result;
  std::size_t offset = sizeof(kMagic);
  result.valid_bytes = offset;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameHeader) break;  // torn frame header
    const auto* frame =
        reinterpret_cast<const unsigned char*>(bytes.data() + offset);
    const std::uint32_t length = GetU32(frame);
    const std::uint32_t crc = GetU32(frame + 4);
    if (bytes.size() - offset - kFrameHeader < length) break;  // torn payload
    const std::string_view payload(bytes.data() + offset + kFrameHeader,
                                   length);
    if (Crc32(payload) != crc) break;  // bit rot or torn overwrite
    result.payloads.emplace_back(payload);
    offset += kFrameHeader + length;
    result.valid_bytes = offset;
  }
  result.truncated_tail = result.valid_bytes < bytes.size();
  return result;
}

}  // namespace hypertune
