// The write-ahead journal: an append-only log of scheduler-mutating events.
//
// File layout:
//
//   [8-byte magic "HTWAL001"]
//   [frame]*          frame = u32 LE payload length
//                           | u32 LE CRC-32 of the payload
//                           | payload bytes (a compact JSON event)
//
// The CRC frames are what make recovery safe: a crash mid-append leaves a
// torn tail (short header, short payload, or checksum mismatch), and the
// reader detects it and reports the last valid byte offset instead of
// parsing garbage. Recovery truncates the file there and appends onward —
// the contract tests/durability_test.cc pins down to the byte.
//
// Durability is tunable per deployment (SyncPolicy): fsync never (the OS
// page cache decides), every N frames (bounded loss window), or on every
// frame (no loss, one fsync per scheduler mutation). See
// bench/micro_durability.cc for what each costs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hypertune {

/// When the journal writer fsyncs.
enum class SyncPolicy {
  /// Never fsync explicitly; a machine crash can lose buffered frames (a
  /// process crash cannot — frames are written straight to the fd).
  kNone,
  /// fsync every `sync_every` frames: bounded loss window, amortized cost.
  kEveryN,
  /// fsync after every frame: no loss window, one fsync per mutation.
  kAlways,
};

struct WalWriteOptions {
  SyncPolicy sync = SyncPolicy::kEveryN;
  /// Frames between fsyncs under SyncPolicy::kEveryN.
  std::size_t sync_every = 64;
};

/// Append-only journal writer over a POSIX fd. Move-only; the destructor
/// syncs (per policy) and closes. Throws CheckError on I/O failure — a
/// journal that silently drops events is worse than a dead server.
class JournalWriter {
 public:
  /// Creates a fresh journal (truncating any existing file) and writes the
  /// header.
  static JournalWriter Create(const std::string& path,
                              WalWriteOptions options);
  /// Opens an existing journal for appending at `valid_bytes` (as reported
  /// by ReadJournal), truncating any torn tail past it first.
  static JournalWriter Append(const std::string& path,
                              WalWriteOptions options,
                              std::uint64_t valid_bytes);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one CRC-framed payload and applies the sync policy.
  void Append(std::string_view payload);

  /// Forces an fsync now (e.g. right before taking a snapshot).
  void Sync();

  std::size_t frames_written() const { return frames_written_; }

 private:
  JournalWriter(int fd, WalWriteOptions options);

  int fd_ = -1;
  WalWriteOptions options_;
  std::size_t frames_written_ = 0;
  std::size_t frames_since_sync_ = 0;
};

/// What ReadJournal recovered from a journal file.
struct JournalReadResult {
  /// Every fully valid frame payload, in append order.
  std::vector<std::string> payloads;
  /// Byte offset just past the last valid frame (>= header size). The file
  /// is safe to truncate here and append onward.
  std::uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes were torn or checksum-corrupt (they
  /// are ignored, never parsed).
  bool truncated_tail = false;
};

/// Reads a journal, stopping at the first torn or corrupt frame. Throws
/// CheckError when the file is missing or its header is not a journal's.
JournalReadResult ReadJournal(const std::string& path);

/// The 8-byte journal file magic ("HTWAL001").
std::string_view JournalMagic();

}  // namespace hypertune
