// The write-ahead journal: an append-only log of scheduler-mutating events.
//
// File layout:
//
//   [8-byte magic "HTWAL001"]
//   [frame]*          frame = u32 LE payload length
//                           | u32 LE CRC-32 of the payload
//                           | payload bytes (a compact JSON event)
//
// The CRC frames are what make recovery safe: a crash mid-append leaves a
// torn tail (short header, short payload, or checksum mismatch), and the
// reader detects it and reports the last valid byte offset instead of
// parsing garbage. Recovery truncates the file there and appends onward —
// the contract tests/durability_test.cc pins down to the byte.
//
// Durability is tunable per deployment (SyncPolicy): fsync never (the OS
// page cache decides), every N frames (bounded loss window), or on every
// frame (no loss, one fsync per scheduler mutation). See
// bench/micro_durability.cc for what each costs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_fs.h"

namespace hypertune {

/// When the journal writer fsyncs.
enum class SyncPolicy {
  /// Never fsync explicitly; a machine crash can lose buffered frames (a
  /// process crash cannot — frames are written straight to the fd).
  kNone,
  /// fsync every `sync_every` frames: bounded loss window, amortized cost.
  kEveryN,
  /// fsync after every frame: no loss window, one fsync per mutation.
  kAlways,
};

struct WalWriteOptions {
  SyncPolicy sync = SyncPolicy::kEveryN;
  /// Frames between fsyncs under SyncPolicy::kEveryN.
  std::size_t sync_every = 64;
  /// File-op seam (fault injection); null = FileOps::Real().
  FileOps* file_ops = nullptr;
};

/// What one TryAppend did. The distinction matters to the caller: a failed
/// *write* means the frame is not in the journal (buffer and re-append it
/// later), a failed *fsync* means the frame's bytes are appended but not
/// yet durable (never re-append — that would duplicate it on replay).
enum class AppendResult { kOk, kWriteFailed, kSyncFailed };

/// Append-only journal writer over a POSIX fd. Move-only; the destructor
/// best-effort-syncs (per policy) and closes.
///
/// Two API levels: Append/Sync throw CheckError on I/O failure (a journal
/// that silently drops events is worse than a dead server), while
/// TryAppend/TrySync report failure for callers with a degradation path —
/// DurableServer buffers records through an ENOSPC window and replays them
/// into the journal when space returns. A partially written frame leaves a
/// dirty tail; the next TryAppend truncates back to the last good byte
/// before writing, so a mid-frame failure can never strand later frames
/// behind garbage.
class JournalWriter {
 public:
  /// Creates a fresh journal (truncating any existing file) and writes the
  /// header. Throws CheckError on failure.
  static JournalWriter Create(const std::string& path,
                              WalWriteOptions options);
  /// Create, but reporting failure instead of throwing (the degraded-mode
  /// snapshot path must survive a full disk).
  static std::optional<JournalWriter> TryCreate(const std::string& path,
                                                WalWriteOptions options);
  /// Opens an existing journal for appending at `valid_bytes` (as reported
  /// by ReadJournal), truncating any torn tail past it first.
  static JournalWriter Append(const std::string& path,
                              WalWriteOptions options,
                              std::uint64_t valid_bytes);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one CRC-framed payload and applies the sync policy. Throws
  /// CheckError on failure.
  void Append(std::string_view payload);

  /// Forces an fsync now (e.g. right before taking a snapshot). Throws
  /// CheckError on failure.
  void Sync();

  /// Non-throwing Append; see AppendResult for what each outcome obliges
  /// the caller to do.
  AppendResult TryAppend(std::string_view payload);

  /// Non-throwing Sync: true when the journal is durable up to its last
  /// appended frame.
  bool TrySync();

  std::size_t frames_written() const { return frames_written_; }
  /// errno of the last failed file op (0 when none failed yet).
  int last_errno() const { return last_errno_; }

 private:
  JournalWriter(int fd, WalWriteOptions options);

  /// Truncates a partially written frame back to the last good byte.
  bool RepairTail();

  int fd_ = -1;
  WalWriteOptions options_;
  FileOps* ops_ = nullptr;
  std::size_t frames_written_ = 0;
  std::size_t frames_since_sync_ = 0;
  /// Bytes known fully written (header + whole frames).
  std::uint64_t good_bytes_ = 0;
  /// True after a partial frame write; repaired before the next append.
  bool tail_dirty_ = false;
  int last_errno_ = 0;
};

/// What ReadJournal recovered from a journal file.
struct JournalReadResult {
  /// Every fully valid frame payload, in append order.
  std::vector<std::string> payloads;
  /// Byte offset just past the last valid frame (>= header size). The file
  /// is safe to truncate here and append onward.
  std::uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes were torn or checksum-corrupt (they
  /// are ignored, never parsed).
  bool truncated_tail = false;
};

/// Reads a journal, stopping at the first torn or corrupt frame. Throws
/// CheckError when the file is missing or its header is not a journal's.
JournalReadResult ReadJournal(const std::string& path);

/// The 8-byte journal file magic ("HTWAL001").
std::string_view JournalMagic();

}  // namespace hypertune
