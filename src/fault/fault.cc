#include "fault/fault.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace hypertune {

namespace {

class RealSocketIo final : public SocketIo {
 public:
  ssize_t Send(int fd, const void* data, std::size_t size) override {
    for (;;) {
      const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;  // a signal is not a failure
      return n;
    }
  }
  ssize_t Recv(int fd, void* data, std::size_t size) override {
    for (;;) {
      const ssize_t n = ::recv(fd, data, size, 0);
      if (n < 0 && errno == EINTR) continue;
      return n;
    }
  }
};

}  // namespace

SocketIo& SocketIo::Real() {
  static RealSocketIo real;
  return real;
}

FaultyTransport::FaultyTransport(FaultPlan plan, SocketIo* inner)
    : plan_(plan), inner_(inner != nullptr ? inner : &SocketIo::Real()),
      rng_(plan.seed) {}

ssize_t FaultyTransport::Send(int fd, const void* data, std::size_t size) {
  return Intercept(Op::kSend, fd, data, nullptr, size);
}

ssize_t FaultyTransport::Recv(int fd, void* data, std::size_t size) {
  return Intercept(Op::kRecv, fd, nullptr, data, size);
}

FaultStats FaultyTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ssize_t FaultyTransport::Intercept(Op op, int fd, const void* out, void* in,
                                   std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.ops;
  const std::size_t index = op_index_++;
  if (index < plan_.skip_ops || size == 0) {
    return op == Op::kSend ? inner_->Send(fd, out, size)
                           : inner_->Recv(fd, in, size);
  }

  if (plan_.disconnect_rate > 0 &&
      (plan_.max_disconnects == 0 ||
       stats_.disconnects < plan_.max_disconnects) &&
      rng_.Bernoulli(plan_.disconnect_rate)) {
    ++stats_.disconnects;
    // Cut the stream for real (the peer sees the reset too), then fail the
    // op — a mid-frame disconnect as the kernel would deliver one.
    ::shutdown(fd, SHUT_RDWR);
    errno = ECONNRESET;
    return -1;
  }

  if (eagain_left_ > 0 ||
      (plan_.eagain_rate > 0 && rng_.Bernoulli(plan_.eagain_rate))) {
    if (eagain_left_ == 0) eagain_left_ = plan_.eagain_burst;
    if (eagain_left_ > 0) --eagain_left_;
    ++stats_.eagains;
    errno = EAGAIN;
    return -1;
  }

  if (plan_.delay_rate > 0 && rng_.Bernoulli(plan_.delay_rate)) {
    ++stats_.delays;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan_.delay_seconds));
  }

  std::size_t clamped = size;
  if (plan_.short_op_rate > 0 && size > 1 &&
      rng_.Bernoulli(plan_.short_op_rate)) {
    ++stats_.short_ops;
    clamped = 1 + rng_.Index(size - 1);  // in [1, size-1]
  }

  const bool corrupt =
      plan_.corrupt_rate > 0 && rng_.Bernoulli(plan_.corrupt_rate);
  if (op == Op::kSend) {
    if (corrupt) {
      // Corrupt a copy — the caller's buffer is theirs.
      std::vector<unsigned char> copy(clamped);
      std::memcpy(copy.data(), out, clamped);
      copy[rng_.Index(clamped)] ^=
          static_cast<unsigned char>(1 + rng_.Index(255));
      ++stats_.corruptions;
      return inner_->Send(fd, copy.data(), clamped);
    }
    return inner_->Send(fd, out, clamped);
  }

  const ssize_t n = inner_->Recv(fd, in, clamped);
  if (corrupt && n > 0) {
    auto* bytes = static_cast<unsigned char*>(in);
    bytes[rng_.Index(static_cast<std::size_t>(n))] ^=
        static_cast<unsigned char>(1 + rng_.Index(255));
    ++stats_.corruptions;
  }
  return n;
}

}  // namespace hypertune
