// Deterministic network fault injection: the socket shim behind the chaos
// and fuzz harnesses.
//
// Production code never calls ::send/::recv directly once it takes a
// SocketIo: the default implementation (SocketIo::Real()) is the plain
// syscall with an EINTR retry loop, and FaultyTransport decorates any
// SocketIo with a seeded FaultPlan that replays short reads/writes, EAGAIN
// bursts, injected delays, byte corruption, and mid-stream disconnects at
// deterministic points. The same seed replays the same fault schedule, so
// a chaos failure is a unit test away from a repro.
//
// The shim sits below the framing layer on purpose: a short write tears a
// CRC frame across arbitrary byte boundaries, an injected disconnect cuts
// mid-frame — exactly the partial failures the decoder's resync contract
// (net/wire.h) and the client's backoff/reconnect path must absorb.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/rng.h"

namespace hypertune {

/// The socket-op seam. Implementations must be usable from one thread at a
/// time per call, return ::send/::recv semantics (bytes moved, 0 on EOF,
/// -1 + errno on failure), and never raise SIGPIPE.
class SocketIo {
 public:
  virtual ~SocketIo() = default;
  virtual ssize_t Send(int fd, const void* data, std::size_t size) = 0;
  virtual ssize_t Recv(int fd, void* data, std::size_t size) = 0;

  /// The real syscalls, with EINTR retried (a signal is not a failure).
  static SocketIo& Real();
};

/// What FaultyTransport injects, as independent per-op probabilities. All
/// rates default to 0 — a default FaultPlan is a transparent passthrough.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// First ops pass through untouched (lets connection setup succeed).
  std::size_t skip_ops = 0;
  /// Truncate an op to a random prefix (short read / short write).
  double short_op_rate = 0;
  /// Fail an op with EAGAIN; each hit starts a burst of this many.
  double eagain_rate = 0;
  std::size_t eagain_burst = 3;
  /// Sleep before the op (a stalled peer, in miniature).
  double delay_rate = 0;
  double delay_seconds = 0.001;
  /// Flip one byte of the data that crosses the shim.
  double corrupt_rate = 0;
  /// Shut the socket down mid-stream and fail with ECONNRESET.
  double disconnect_rate = 0;
  /// Cap on injected disconnects (0 = unlimited).
  std::size_t max_disconnects = 0;
};

/// Counters for what a FaultyTransport actually did.
struct FaultStats {
  std::size_t ops = 0;
  std::size_t short_ops = 0;
  std::size_t eagains = 0;
  std::size_t delays = 0;
  std::size_t corruptions = 0;
  std::size_t disconnects = 0;
};

/// A SocketIo decorator that replays a seeded FaultPlan. Deterministic:
/// fault draws depend only on (seed, op index), so a single-threaded
/// caller sees an identical schedule every run. Thread-safe (one mutex
/// around the draw + forward) so a shared injector never races, but
/// cross-thread schedules are only as deterministic as the op order.
class FaultyTransport final : public SocketIo {
 public:
  /// `inner` defaults to SocketIo::Real(); not owned, must outlive this.
  explicit FaultyTransport(FaultPlan plan, SocketIo* inner = nullptr);

  ssize_t Send(int fd, const void* data, std::size_t size) override;
  ssize_t Recv(int fd, void* data, std::size_t size) override;

  FaultStats stats() const;

 private:
  enum class Op { kSend, kRecv };
  ssize_t Intercept(Op op, int fd, const void* out, void* in,
                    std::size_t size);

  FaultPlan plan_;
  SocketIo* inner_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::size_t op_index_ = 0;
  std::size_t eagain_left_ = 0;
  FaultStats stats_;
};

}  // namespace hypertune
