#include "fault/fault_fs.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace hypertune {

namespace {

class RealFileOps final : public FileOps {
 public:
  ssize_t Write(int fd, const void* data, std::size_t size) override {
    for (;;) {
      const ssize_t n = ::write(fd, data, size);
      if (n < 0 && errno == EINTR) continue;
      return n;
    }
  }
  int Fsync(int fd) override { return ::fsync(fd); }
  int Rename(const char* from, const char* to) override {
    return std::rename(from, to);
  }
  int Truncate(int fd, off_t length) override {
    return ::ftruncate(fd, length);
  }
};

}  // namespace

FileOps& FileOps::Real() {
  static RealFileOps real;
  return real;
}

FaultFs::FaultFs(std::vector<FsFaultWindow> windows, FileOps* inner)
    : windows_(std::move(windows)),
      inner_(inner != nullptr ? inner : &FileOps::Real()) {}

int FaultFs::NextFault(OpKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t index = op_index_++;
  op_log_.push_back(kind);
  for (const FsFaultWindow& window : windows_) {
    if (index < window.begin || index >= window.begin + window.count) continue;
    const bool applies = (kind == OpKind::kWrite && window.fail_writes) ||
                         (kind == OpKind::kFsync && window.fail_fsyncs) ||
                         (kind == OpKind::kRename && window.fail_renames) ||
                         (kind == OpKind::kTruncate && window.fail_truncates);
    if (!applies) continue;
    ++faults_;
    return window.error != 0 ? window.error : ENOSPC;
  }
  return 0;
}

ssize_t FaultFs::Write(int fd, const void* data, std::size_t size) {
  if (const int error = NextFault(OpKind::kWrite)) {
    errno = error;
    return -1;
  }
  return inner_->Write(fd, data, size);
}

int FaultFs::Fsync(int fd) {
  if (const int error = NextFault(OpKind::kFsync)) {
    errno = error;
    return -1;
  }
  return inner_->Fsync(fd);
}

int FaultFs::Rename(const char* from, const char* to) {
  if (const int error = NextFault(OpKind::kRename)) {
    errno = error;
    return -1;
  }
  return inner_->Rename(from, to);
}

int FaultFs::Truncate(int fd, off_t length) {
  if (const int error = NextFault(OpKind::kTruncate)) {
    errno = error;
    return -1;
  }
  return inner_->Truncate(fd, length);
}

std::size_t FaultFs::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_index_;
}

std::size_t FaultFs::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

std::vector<std::size_t> FaultFs::op_indices(OpKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < op_log_.size(); ++i) {
    if (op_log_[i] == kind) indices.push_back(i);
  }
  return indices;
}

}  // namespace hypertune
