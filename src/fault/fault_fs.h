// Deterministic file-op fault injection: the disk side of the chaos layer.
//
// FileOps is the seam the durability layer writes through (journal frames,
// fsyncs, snapshot files); FileOps::Real() is the plain syscalls. FaultFs
// decorates it with planned failure windows counted in *ops*, not time:
// "ops [120, 125) fail with ENOSPC" replays identically every run, which
// is what lets tools/chaos_recovery.cc pin a full-disk window to an exact
// point mid-study and still compare decision bytes against a golden.
//
// Windows can target a subset of op kinds (e.g. fail only fsyncs with EIO
// — the wal.cc kEveryN regression), and a FaultFs with no windows is a
// transparent op counter: harnesses run a probe pass first to learn the
// total op count, then place windows as fractions of it.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <mutex>
#include <vector>

namespace hypertune {

/// The file-op seam for everything durability writes. Implementations
/// return syscall semantics (-1 + errno on failure; Write returns bytes
/// written).
class FileOps {
 public:
  virtual ~FileOps() = default;
  virtual ssize_t Write(int fd, const void* data, std::size_t size) = 0;
  virtual int Fsync(int fd) = 0;
  virtual int Rename(const char* from, const char* to) = 0;
  virtual int Truncate(int fd, off_t length) = 0;

  /// The real syscalls, with EINTR retried on write.
  static FileOps& Real();
};

/// One planned failure window, in op-sequence coordinates.
struct FsFaultWindow {
  /// Ops [begin, begin + count) fail (as counted across all op kinds).
  std::size_t begin = 0;
  std::size_t count = 1;
  /// errno delivered (ENOSPC and EIO are the interesting ones).
  int error = 0;  // 0 means ENOSPC
  /// Which op kinds the window applies to (ops of other kinds inside the
  /// window pass through and still advance the op counter).
  bool fail_writes = true;
  bool fail_fsyncs = true;
  bool fail_renames = true;
  bool fail_truncates = true;
};

/// A FileOps decorator replaying FsFaultWindows. Thread-safe; op indices
/// are global across kinds and fds.
class FaultFs final : public FileOps {
 public:
  enum class OpKind { kWrite, kFsync, kRename, kTruncate };

  /// `inner` defaults to FileOps::Real(); not owned, must outlive this.
  explicit FaultFs(std::vector<FsFaultWindow> windows,
                   FileOps* inner = nullptr);

  ssize_t Write(int fd, const void* data, std::size_t size) override;
  int Fsync(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Truncate(int fd, off_t length) override;

  /// Total ops that crossed the shim (probe runs read this to size
  /// windows for the real run).
  std::size_t ops_seen() const;
  /// Ops actually failed by a window.
  std::size_t faults_injected() const;
  /// Op indices of the given kind, in order — how a probe run finds e.g.
  /// "the fsync nearest the middle" to aim a one-op window at.
  std::vector<std::size_t> op_indices(OpKind kind) const;

 private:
  /// Advances the op counter; returns the errno to fail with, or 0.
  int NextFault(OpKind kind);

  std::vector<FsFaultWindow> windows_;
  FileOps* inner_;
  mutable std::mutex mutex_;
  std::size_t op_index_ = 0;
  std::size_t faults_ = 0;
  std::vector<OpKind> op_log_;
};

}  // namespace hypertune
