#include "lifecycle/hazards.h"

#include <array>
#include <cmath>

#include "common/check.h"
#include "common/json.h"

namespace hypertune {

HazardModel::HazardModel(HazardOptions options) : options_(options) {
  HT_CHECK_MSG(options_.straggler_std >= 0.0,
               "straggler_std must be >= 0, got " << options_.straggler_std);
  HT_CHECK_MSG(options_.drop_probability >= 0.0 &&
                   options_.drop_probability < 1.0,
               "drop_probability must be in [0, 1), got "
                   << options_.drop_probability);
  if (options_.drop_probability > 0.0) {
    drop_rate_ = -std::log1p(-options_.drop_probability);
  }
}

double HazardModel::StragglerMultiplier(Rng& rng) const {
  if (options_.straggler_std == 0.0) return 1.0;
  return 1.0 + std::abs(rng.Normal(0.0, options_.straggler_std));
}

std::optional<double> HazardModel::DropTime(double duration, Rng& rng) const {
  if (drop_rate_ == 0.0) return std::nullopt;
  const double t = rng.Exponential(drop_rate_);
  if (t < duration) return t;
  return std::nullopt;
}

HazardInjector::HazardInjector(HazardOptions options, std::uint64_t seed)
    : model_(options), rng_(seed) {}

bool HazardInjector::enabled() const {
  const HazardOptions& options = model_.options();
  return options.straggler_std > 0.0 || options.drop_probability > 0.0;
}

HazardPlan HazardInjector::Plan(double base_duration) {
  HazardPlan plan;
  plan.duration = base_duration * model_.StragglerMultiplier(rng_);
  plan.drop_after = model_.DropTime(plan.duration, rng_);
  if (observer_) observer_(base_duration, plan);
  return plan;
}

Json HazardInjector::Snapshot() const {
  Json json = JsonObject{};
  Json rng_state = JsonArray{};
  for (std::uint64_t word : rng_.state()) {
    rng_state.PushBack(Json(static_cast<std::int64_t>(word)));
  }
  json.Set("rng", std::move(rng_state));
  if (rng_.has_spare_normal()) {
    json.Set("spare_normal", Json(rng_.spare_normal()));
  }
  return json;
}

void HazardInjector::Restore(const Json& snapshot) {
  std::array<std::uint64_t, 4> rng_state{};
  const auto& words = snapshot.at("rng").AsArray();
  HT_CHECK(words.size() == rng_state.size());
  for (std::size_t i = 0; i < rng_state.size(); ++i) {
    rng_state[i] = static_cast<std::uint64_t>(words[i].AsInt());
  }
  rng_.set_state(rng_state);
  if (snapshot.Has("spare_normal")) {
    rng_.set_spare_normal(true, snapshot.at("spare_normal").AsDouble());
  }
}

}  // namespace hypertune
