#include "lifecycle/hazards.h"

#include <cmath>

#include "common/check.h"

namespace hypertune {

HazardModel::HazardModel(HazardOptions options) : options_(options) {
  HT_CHECK_MSG(options_.straggler_std >= 0.0,
               "straggler_std must be >= 0, got " << options_.straggler_std);
  HT_CHECK_MSG(options_.drop_probability >= 0.0 &&
                   options_.drop_probability < 1.0,
               "drop_probability must be in [0, 1), got "
                   << options_.drop_probability);
  if (options_.drop_probability > 0.0) {
    drop_rate_ = -std::log1p(-options_.drop_probability);
  }
}

double HazardModel::StragglerMultiplier(Rng& rng) const {
  if (options_.straggler_std == 0.0) return 1.0;
  return 1.0 + std::abs(rng.Normal(0.0, options_.straggler_std));
}

std::optional<double> HazardModel::DropTime(double duration, Rng& rng) const {
  if (drop_rate_ == 0.0) return std::nullopt;
  const double t = rng.Exponential(drop_rate_);
  if (t < duration) return t;
  return std::nullopt;
}

HazardInjector::HazardInjector(HazardOptions options, std::uint64_t seed)
    : model_(options), rng_(seed) {}

bool HazardInjector::enabled() const {
  const HazardOptions& options = model_.options();
  return options.straggler_std > 0.0 || options.drop_probability > 0.0;
}

HazardPlan HazardInjector::Plan(double base_duration) {
  HazardPlan plan;
  plan.duration = base_duration * model_.StragglerMultiplier(rng_);
  plan.drop_after = model_.DropTime(plan.duration, rng_);
  return plan;
}

}  // namespace hypertune
