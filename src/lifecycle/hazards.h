// Failure injection, following Appendix A.1:
//   * stragglers — a job's expected duration is multiplied by (1 + |z|),
//     z ~ N(0, straggler_std);
//   * dropped jobs — each running job is dropped with probability
//     `drop_probability` per unit of virtual time (so a job of length d
//     survives with probability (1 - p)^d).
//
// HazardModel holds the distributions; HazardInjector adds the per-run RNG
// stream and the per-job draw protocol, so the same hazard process can be
// injected into any backend: the SimulationDriver (virtual durations), the
// ThreadPoolExecutor (virtual base durations derived from the job's
// resource increment, optionally scaled into real delays), and the
// SimulatedWorker fleet driving a TuningServer (abandoned jobs whose leases
// expire). Formerly src/sim/hazards.* — hoisted here because hazards are a
// property of the trial lifecycle, not of any one backend.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/rng.h"

namespace hypertune {

class Json;

struct HazardOptions {
  /// Standard deviation of the half-normal straggler multiplier; 0 disables.
  double straggler_std = 0.0;
  /// Per-time-unit drop probability in [0, 1); 0 disables.
  double drop_probability = 0.0;
};

class HazardModel {
 public:
  explicit HazardModel(HazardOptions options);

  /// Multiplier >= 1 applied to a job's base duration.
  double StragglerMultiplier(Rng& rng) const;

  /// Time (from job start) at which the job is dropped, or nullopt if it
  /// survives the full `duration`. The drop clock is exponential with rate
  /// -ln(1 - p), the continuous-time equivalent of a per-unit Bernoulli.
  std::optional<double> DropTime(double duration, Rng& rng) const;

  const HazardOptions& options() const { return options_; }

 private:
  HazardOptions options_;
  double drop_rate_ = 0.0;  // -ln(1 - p)
};

/// The fate drawn for one job before it runs.
struct HazardPlan {
  /// Straggler-inflated duration (== base duration when stragglers are off).
  double duration = 0;
  /// Time from start at which the job is lost; nullopt when it survives.
  std::optional<double> drop_after;

  bool dropped() const { return drop_after.has_value(); }
  /// When the job stops occupying its worker: drop time or full duration.
  double end_after() const { return drop_after ? *drop_after : duration; }
};

/// One seeded hazard stream shared by a run. Draw order per job — straggler
/// multiplier, then drop clock — is part of the decision-identity contract:
/// two backends leasing the same job sequence from the same seed draw the
/// same fates. Disabled hazards consume no randomness, so a hazard-free run
/// is bit-identical to one with no injector at all.
class HazardInjector {
 public:
  HazardInjector(HazardOptions options, std::uint64_t seed);

  /// True when any hazard is active (callers may skip planning entirely).
  bool enabled() const;

  /// Draws the next job's fate from a base (straggler-free) duration.
  HazardPlan Plan(double base_duration);

  const HazardOptions& options() const { return model_.options(); }

  /// Crash recovery: the RNG stream, including the cached Box-Muller spare
  /// so the post-restore normal-draw sequence is bit-identical.
  Json Snapshot() const;
  void Restore(const Json& snapshot);

  /// Observer invoked after each Plan() draw with the base duration and
  /// the fate. The durability layer journals these as audit records (fates
  /// live worker-side and survive a server crash, so they are never
  /// replayed — but a post-mortem can reconstruct the full failure story).
  using PlanObserver =
      std::function<void(double base_duration, const HazardPlan& plan)>;
  void SetPlanObserver(PlanObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  HazardModel model_;
  Rng rng_;
  PlanObserver observer_;
};

}  // namespace hypertune
