#include "lifecycle/lifecycle.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

// Local (internal-linkage) serializers: src/analysis owns the public
// RunRecord JSON wire format for exports; these carry every field —
// including lease_id, which exports omit — for snapshot round-trips.
Json RecordToJson(const RunRecord& record) {
  Json entry = JsonObject{};
  entry.Set("trial", Json(record.trial_id));
  entry.Set("rung", Json(record.rung));
  entry.Set("bracket", Json(record.bracket));
  entry.Set("from", Json(record.from_resource));
  entry.Set("to", Json(record.to_resource));
  entry.Set("loss", Json(record.loss));
  entry.Set("lost", Json(record.lost));
  entry.Set("start", Json(record.start_time));
  entry.Set("end", Json(record.end_time));
  entry.Set("queue_wait", Json(record.queue_wait));
  entry.Set("worker", Json(record.worker));
  entry.Set("lease", Json(static_cast<std::int64_t>(record.lease_id)));
  return entry;
}

RunRecord RecordFromJson(const Json& json) {
  RunRecord record;
  record.trial_id = json.at("trial").AsInt();
  record.rung = static_cast<int>(json.at("rung").AsInt());
  record.bracket = static_cast<int>(json.at("bracket").AsInt());
  record.from_resource = json.at("from").AsDouble();
  record.to_resource = json.at("to").AsDouble();
  record.loss = json.at("loss").AsDouble();
  record.lost = json.at("lost").AsBool();
  record.start_time = json.at("start").AsDouble();
  record.end_time = json.at("end").AsDouble();
  record.queue_wait = json.at("queue_wait").AsDouble();
  record.worker = static_cast<int>(json.at("worker").AsInt());
  record.lease_id = static_cast<std::uint64_t>(json.at("lease").AsInt());
  return record;
}

}  // namespace

std::vector<std::uint64_t> OpenLeaseSet::SortedIds() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(count_);
  for (std::size_t word = 0; word < words_.size(); ++word) {
    std::uint64_t bits = words_[word];
    while (bits != 0) {
      const auto bit = static_cast<std::uint64_t>(std::countr_zero(bits));
      ids.push_back(static_cast<std::uint64_t>(word) * 64 + bit);
      bits &= bits - 1;
    }
  }
  return ids;
}

void ValidateReportedLoss(double loss) {
  HT_CHECK_MSG(std::isfinite(loss),
               "reported loss must be finite, got " << loss);
}

void AppendJobSpanName(std::string& out, const Job& job) {
  out.clear();
  out += 't';
  out += std::to_string(job.trial_id);
  out += ":r";
  out += std::to_string(job.rung);
}

void EmitJobSpan(Telemetry* telemetry, SpanProfile profile, const Job& job,
                 bool lost, double loss, const RunTiming& timing,
                 std::string* scratch, const std::string& study_label) {
  if (telemetry == nullptr) return;
  Json args = JsonObject{};
  args.Set("trial", Json(job.trial_id));
  args.Set("rung", Json(job.rung));
  if (profile == SpanProfile::kFull) {
    args.Set("bracket", Json(job.bracket));
    args.Set("from_resource", Json(job.from_resource));
    args.Set("to_resource", Json(job.to_resource));
    if (lost) {
      args.Set("dropped", Json(true));
    } else {
      args.Set("loss", Json(loss));
    }
  } else {
    args.Set("to_resource", Json(job.to_resource));
    if (lost) {
      args.Set("lost", Json(true));
    } else {
      args.Set("loss", Json(loss));
    }
  }
  if (!study_label.empty()) args.Set("study", Json(study_label));
  std::string local;
  std::string& name = scratch != nullptr ? *scratch : local;
  AppendJobSpanName(name, job);
  telemetry->SpanAt(timing.start, timing.end - timing.start, name, "worker",
                    std::move(args), timing.worker);
}

TrialLifecycle::TrialLifecycle(Scheduler& scheduler, LifecycleOptions options)
    : scheduler_(scheduler), options_(options) {
  batching_ = options_.batch_telemetry && options_.telemetry != nullptr;
  if (batching_) options_.telemetry->tracer().AttachBatchSource(this);
}

TrialLifecycle::~TrialLifecycle() {
  if (batching_) {
    FlushTelemetry();
    options_.telemetry->tracer().AttachBatchSource(nullptr);
  }
}

std::optional<LeasedJob> TrialLifecycle::Acquire() {
  auto job = scheduler_.GetJob();
  if (!job) return std::nullopt;
  // Built in the return slot (NRVO): the Job is moved exactly once.
  std::optional<LeasedJob> leased(std::in_place);
  leased->lease_id = next_lease_id_++;
  leased->job = *std::move(job);
  pending_.Insert(leased->lease_id);
  return leased;
}

bool TrialLifecycle::AcquireInto(LeasedJob& out) {
  auto job = scheduler_.GetJob();
  if (!job) return false;
  out.lease_id = next_lease_id_++;
  out.job = *std::move(job);
  pending_.Insert(out.lease_id);
  return true;
}

void TrialLifecycle::NoteRecommendation(double now) {
  const auto rec = scheduler_.Current();
  if (!rec) return;
  if (!recommendations_.empty()) {
    const auto& last = recommendations_.back();
    if (last.trial_id == rec->trial_id && last.loss == rec->loss) return;
  }
  recommendations_.push_back({now, rec->trial_id, rec->loss, rec->resource});
  if (options_.emit_recommendation_events && options_.telemetry != nullptr) {
    if (batching_) {
      DeferredEvent event;
      event.is_span = false;
      event.time = now;
      event.trial = rec->trial_id;
      event.loss = rec->loss;
      event.resource = rec->resource;
      deferred_.push_back(event);
      return;
    }
    Json args = JsonObject{};
    args.Set("trial", Json(rec->trial_id));
    args.Set("loss", Json(rec->loss));
    args.Set("resource", Json(rec->resource));
    options_.telemetry->EventAt(now, "recommendation", "job",
                                std::move(args));
  }
}

void TrialLifecycle::Resolve(const LeasedJob& lease, bool lost, double loss,
                             const RunTiming& timing) {
  // The one guard that makes every backend's accounting sound: each lease
  // resolves exactly once. A second Complete, a Complete after a Lose, or a
  // resolve of a lease this lifecycle never issued all trip here.
  HT_CHECK_MSG(pending_.Erase(lease.lease_id),
               "lease " << lease.lease_id << " (trial " << lease.job.trial_id
                        << ") already resolved or never acquired");
  if (lost) {
    scheduler_.ReportLost(lease.job);
    ++lost_;
  } else {
    scheduler_.ReportResult(lease.job, loss);
    ++completed_;
  }
  if (options_.telemetry != nullptr) {
    if (batching_) {
      if (options_.emit_spans) {
        DeferredEvent event;
        event.is_span = true;
        event.trial = lease.job.trial_id;
        event.rung = lease.job.rung;
        event.bracket = lease.job.bracket;
        event.from_resource = lease.job.from_resource;
        event.to_resource = lease.job.to_resource;
        event.lost = lost;
        event.loss = loss;
        event.timing = timing;
        deferred_.push_back(event);
      }
      if (lost) {
        lost_delta_ += options_.lost_counter != nullptr;
      } else {
        completed_delta_ += options_.completed_counter != nullptr;
      }
    } else {
      if (options_.emit_spans) {
        EmitJobSpan(options_.telemetry, options_.span_profile, lease.job,
                    lost, loss, timing, &span_name_, options_.study_label);
      }
      const char* const counter_name =
          lost ? options_.lost_counter : options_.completed_counter;
      if (counter_name != nullptr) {
        Counter*& counter = lost ? lost_counter_ : completed_counter_;
        if (counter == nullptr) {
          counter = &options_.telemetry->metrics().counter(counter_name);
        }
        counter->Increment();
      }
    }
  }
  if (options_.record_runs) {
    RunRecord record;
    record.trial_id = lease.job.trial_id;
    record.rung = lease.job.rung;
    record.bracket = lease.job.bracket;
    record.from_resource = lease.job.from_resource;
    record.to_resource = lease.job.to_resource;
    record.loss = lost ? 0 : loss;
    record.lost = lost;
    record.start_time = timing.start;
    record.end_time = timing.end;
    record.queue_wait = timing.queue_wait;
    record.worker = timing.worker;
    record.lease_id = lease.lease_id;
    records_.push_back(record);
  }
  if (options_.track_recommendations) NoteRecommendation(timing.end);
}

void TrialLifecycle::MaterializeInto(std::vector<TraceEvent>& out) {
  for (const DeferredEvent& deferred : deferred_) {
    TraceEvent event;
    if (deferred.is_span) {
      Json args = JsonObject{};
      args.Set("trial", Json(deferred.trial));
      args.Set("rung", Json(deferred.rung));
      if (options_.span_profile == SpanProfile::kFull) {
        args.Set("bracket", Json(deferred.bracket));
        args.Set("from_resource", Json(deferred.from_resource));
        args.Set("to_resource", Json(deferred.to_resource));
        if (deferred.lost) {
          args.Set("dropped", Json(true));
        } else {
          args.Set("loss", Json(deferred.loss));
        }
      } else {
        args.Set("to_resource", Json(deferred.to_resource));
        if (deferred.lost) {
          args.Set("lost", Json(true));
        } else {
          args.Set("loss", Json(deferred.loss));
        }
      }
      if (!options_.study_label.empty()) {
        args.Set("study", Json(options_.study_label));
      }
      event.time = deferred.timing.start;
      event.duration = deferred.timing.end - deferred.timing.start;
      span_name_.clear();
      span_name_ += 't';
      span_name_ += std::to_string(deferred.trial);
      span_name_ += ":r";
      span_name_ += std::to_string(deferred.rung);
      event.name = span_name_;
      event.category = "worker";
      event.worker = deferred.timing.worker;
      event.args = std::move(args);
    } else {
      Json args = JsonObject{};
      args.Set("trial", Json(deferred.trial));
      args.Set("loss", Json(deferred.loss));
      args.Set("resource", Json(deferred.resource));
      event.time = deferred.time;
      event.name = "recommendation";
      event.category = "job";
      event.worker = 0;
      event.args = std::move(args);
    }
    out.push_back(std::move(event));
  }
  deferred_.clear();
}

void TrialLifecycle::FlushCounters() {
  if (completed_delta_ > 0) {
    if (completed_counter_ == nullptr) {
      completed_counter_ =
          &options_.telemetry->metrics().counter(options_.completed_counter);
    }
    completed_counter_->Increment(completed_delta_);
    completed_delta_ = 0;
  }
  if (lost_delta_ > 0) {
    if (lost_counter_ == nullptr) {
      lost_counter_ =
          &options_.telemetry->metrics().counter(options_.lost_counter);
    }
    lost_counter_->Increment(lost_delta_);
    lost_delta_ = 0;
  }
}

void TrialLifecycle::Drain(std::vector<TraceEvent>& out) {
  MaterializeInto(out);
}

void TrialLifecycle::FlushTelemetry() {
  if (!batching_) return;
  if (!deferred_.empty()) {
    std::vector<TraceEvent> events;
    events.reserve(deferred_.size());
    MaterializeInto(events);
    options_.telemetry->tracer().RecordBatch(std::move(events));
  }
  FlushCounters();
}

void TrialLifecycle::Complete(const LeasedJob& lease, double loss,
                              const RunTiming& timing) {
  ValidateReportedLoss(loss);
  Resolve(lease, /*lost=*/false, loss, timing);
}

void TrialLifecycle::Lose(const LeasedJob& lease, const RunTiming& timing) {
  Resolve(lease, /*lost=*/true, /*loss=*/0, timing);
}

Json TrialLifecycle::Snapshot() const {
  Json json = JsonObject{};
  // Ascending by construction (the bitmap iterates in id order), matching
  // the sorted order snapshots always had.
  Json pending_json = JsonArray{};
  for (std::uint64_t id : pending_.SortedIds()) {
    pending_json.PushBack(Json(static_cast<std::int64_t>(id)));
  }
  json.Set("pending", std::move(pending_json));
  json.Set("next_lease_id", Json(static_cast<std::int64_t>(next_lease_id_)));
  Json records = JsonArray{};
  for (const auto& record : records_) records.PushBack(RecordToJson(record));
  json.Set("records", std::move(records));
  Json recommendations = JsonArray{};
  for (const auto& rec : recommendations_) {
    Json entry = JsonObject{};
    entry.Set("time", Json(rec.time));
    entry.Set("trial", Json(rec.trial_id));
    entry.Set("loss", Json(rec.loss));
    entry.Set("resource", Json(rec.resource));
    recommendations.PushBack(std::move(entry));
  }
  json.Set("recommendations", std::move(recommendations));
  json.Set("completed", Json(static_cast<std::int64_t>(completed_)));
  json.Set("lost", Json(static_cast<std::int64_t>(lost_)));
  return json;
}

void TrialLifecycle::Restore(const Json& snapshot) {
  HT_CHECK_MSG(next_lease_id_ == 1 && pending_.empty() && records_.empty(),
               "Restore requires a freshly constructed lifecycle");
  for (const auto& id : snapshot.at("pending").AsArray()) {
    pending_.Insert(static_cast<std::uint64_t>(id.AsInt()));
  }
  next_lease_id_ =
      static_cast<std::uint64_t>(snapshot.at("next_lease_id").AsInt());
  for (const auto& entry : snapshot.at("records").AsArray()) {
    records_.push_back(RecordFromJson(entry));
  }
  for (const auto& entry : snapshot.at("recommendations").AsArray()) {
    RecommendationPoint rec;
    rec.time = entry.at("time").AsDouble();
    rec.trial_id = entry.at("trial").AsInt();
    rec.loss = entry.at("loss").AsDouble();
    rec.resource = entry.at("resource").AsDouble();
    recommendations_.push_back(rec);
  }
  completed_ = static_cast<std::size_t>(snapshot.at("completed").AsInt());
  lost_ = static_cast<std::size_t>(snapshot.at("lost").AsInt());
}

}  // namespace hypertune
