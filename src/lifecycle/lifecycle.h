// The shared trial-lifecycle core: the lease → run → outcome state machine
// every execution backend adapts.
//
// Algorithm 2 of the paper describes one job lifecycle — a free worker
// leases a job, runs it, and either reports a loss or loses the job — and
// the repo used to implement it three times (SimulationDriver,
// ThreadPoolExecutor, TuningServer), each with its own record type and its
// own (or missing) outcome guards. TrialLifecycle implements it once:
//
//   * leasing: Acquire() pulls the next job from the Scheduler and opens a
//     lease with a dense id (1, 2, ...);
//   * outcome validation: every lease resolves exactly once — a double
//     report, a report after a loss, or a resolve of an unknown lease is a
//     CheckError; losses must be finite;
//   * recording: each resolution appends one RunRecord;
//   * incumbent trajectory: after each resolution the scheduler's current
//     recommendation is recorded whenever it changes (optionally emitted as
//     a "recommendation" trace instant);
//   * telemetry: job spans are named and emitted here (see EmitJobSpan),
//     either inside Complete/Lose (single-threaded backends) or by the
//     backend outside its serialization lock (the thread pool).
//
// Thread-safety: TrialLifecycle has the same contract as Scheduler — NOT
// thread-safe; concurrent backends serialize Acquire/Complete/Lose behind
// the same lock that guards their scheduler calls. EmitJobSpan is a free
// function touching only the (thread-safe) Telemetry sink, so it may be
// called outside that lock. See DESIGN.md §6 for the full contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/scheduler.h"
#include "lifecycle/run_record.h"
#include "telemetry/trace.h"

namespace hypertune {

class Telemetry;
class Counter;

/// The open-lease guard set. Lease ids are dense (1, 2, ...), so membership
/// lives in a bitmap: Insert/Erase are O(1) with no hashing or node
/// allocation — the resolve-side check costs two word ops on the simulator
/// hot path. Iteration order is ascending by construction, which is the
/// order snapshots want.
class OpenLeaseSet {
 public:
  /// No-op when `id` is already present (matching set semantics).
  void Insert(std::uint64_t id) {
    const std::size_t word = static_cast<std::size_t>(id / 64);
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t bit = std::uint64_t{1} << (id % 64);
    count_ += (words_[word] & bit) == 0;
    words_[word] |= bit;
  }

  /// Clears `id`; returns whether it was present.
  bool Erase(std::uint64_t id) {
    const std::size_t word = static_cast<std::size_t>(id / 64);
    if (word >= words_.size()) return false;
    const std::uint64_t bit = std::uint64_t{1} << (id % 64);
    if ((words_[word] & bit) == 0) return false;
    words_[word] &= ~bit;
    --count_;
    return true;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// All open ids in ascending order.
  std::vector<std::uint64_t> SortedIds() const;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

/// A job pulled from the scheduler together with its open lease.
struct LeasedJob {
  std::uint64_t lease_id = 0;
  Job job;
};

/// When and where a leased job executed, in the backend's clock domain.
struct RunTiming {
  double start = 0;
  double end = 0;
  double queue_wait = 0;
  int worker = -1;
};

/// Which argument set a job span carries. Backends historically emitted
/// slightly different sets; decision-identity dumps pin them, so the
/// profile is explicit rather than silently unified.
enum class SpanProfile {
  /// trial, rung, bracket, from_resource, to_resource, loss | dropped
  /// (the simulator's profile).
  kFull,
  /// trial, rung, to_resource, loss | lost (the thread pool's profile).
  kCompact,
};

struct LifecycleOptions {
  /// Optional observability sink (not owned; must outlive the lifecycle).
  Telemetry* telemetry = nullptr;
  /// Emit one job span per resolution inside Complete/Lose. Backends that
  /// must emit outside their lock leave this off and call EmitJobSpan
  /// themselves.
  bool emit_spans = false;
  SpanProfile span_profile = SpanProfile::kFull;
  /// Counter bumped per completion / loss (null disables). Resolved
  /// lazily on first use so an all-zero counter never appears in metrics
  /// snapshots (preserving pre-refactor output).
  const char* completed_counter = nullptr;
  const char* lost_counter = nullptr;
  /// Record the scheduler's recommendation after each resolution whenever
  /// it changes (the incumbent trajectory the paper's figures plot).
  bool track_recommendations = false;
  /// Additionally emit a "recommendation" trace instant on each change.
  bool emit_recommendation_events = false;
  /// Append one RunRecord per resolution. Throughput harnesses that only
  /// need counters (bench/micro_sim) turn this off; records() /
  /// TakeRecords() then stay empty.
  bool record_runs = true;
  /// Multi-tenant label: when non-empty, every job span carries a `"study"`
  /// argument so traces from studies co-hosted on one sink (src/study) can
  /// be told apart. Empty preserves the single-tenant span shape byte for
  /// byte.
  std::string study_label;
  /// Defer span/instant emissions and counter bumps into a per-lifecycle
  /// buffer flushed at sync points (FlushTelemetry, destruction, or a
  /// foreign Record on the tracer — see EventTracer::BatchSource), instead
  /// of paying Json assembly + a tracer lock per resolution. Exports are
  /// byte-identical to the unbatched path. Single-threaded backends only.
  bool batch_telemetry = false;
};

/// Rejects non-finite losses (NaN, +/-inf) with a CheckError. Exposed so
/// protocol layers can validate before mutating any state.
void ValidateReportedLoss(double loss);

/// Appends the canonical span name "t<trial>:r<rung>" to `out` (cleared
/// first) without allocating temporaries — hot paths reuse one buffer.
void AppendJobSpanName(std::string& out, const Job& job);

/// Emits one job span on the executing worker's track. `scratch` (optional)
/// is reused for the span name; `study_label` (optional) tags the span's
/// args with its study. Safe to call from any thread.
void EmitJobSpan(Telemetry* telemetry, SpanProfile profile, const Job& job,
                 bool lost, double loss, const RunTiming& timing,
                 std::string* scratch = nullptr,
                 const std::string& study_label = {});

class TrialLifecycle final : private EventTracer::BatchSource {
 public:
  TrialLifecycle(Scheduler& scheduler, LifecycleOptions options);
  /// Flushes and detaches the telemetry batch, if one is active.
  ~TrialLifecycle() override;

  TrialLifecycle(const TrialLifecycle&) = delete;
  TrialLifecycle& operator=(const TrialLifecycle&) = delete;

  /// Pulls the next job from the scheduler and opens its lease; nullopt
  /// when the scheduler has no work right now.
  std::optional<LeasedJob> Acquire();

  /// Hot-path variant of Acquire: writes the lease into `out` (reusing its
  /// Configuration capacity — the simulator keeps one slot per worker)
  /// instead of materializing a fresh optional. Returns false, leaving
  /// `out` untouched, when no work is available. Identical semantics
  /// otherwise.
  bool AcquireInto(LeasedJob& out);

  /// Resolves a lease with a (finite) loss: validates exactly-once,
  /// reports to the scheduler, records, and updates the recommendation
  /// trajectory. CheckError on double-resolve or non-finite loss.
  void Complete(const LeasedJob& lease, double loss, const RunTiming& timing);

  /// Resolves a lease as lost (drop, crash, lease expiry, stranded
  /// prefetch). Same exactly-once guard as Complete.
  void Lose(const LeasedJob& lease, const RunTiming& timing);

  std::size_t completed_jobs() const { return completed_; }
  std::size_t lost_jobs() const { return lost_; }
  /// Leases acquired but not yet resolved.
  std::size_t pending_leases() const { return pending_.size(); }

  /// Sync point for batched telemetry: pushes buffered spans/instants to
  /// the tracer and applies buffered counter deltas. No-op when batching
  /// is off or the buffer is empty. Callers must flush before reading the
  /// tracer mid-run; destruction flushes automatically.
  void FlushTelemetry();

  const std::vector<RunRecord>& records() const { return records_; }
  std::vector<RunRecord> TakeRecords() { return std::move(records_); }
  const std::vector<RecommendationPoint>& recommendations() const {
    return recommendations_;
  }
  std::vector<RecommendationPoint> TakeRecommendations() {
    return std::move(recommendations_);
  }

  /// Crash recovery: open lease ids, the dense lease-id counter, resolved
  /// records, the recommendation trajectory, and the outcome counts. The
  /// jobs behind open leases are not stored here — the scheduler snapshots
  /// them (Scheduler::Snapshot) and the backend re-associates lease ids to
  /// jobs on restore.
  Json Snapshot() const;
  /// Restores into a freshly constructed lifecycle (no leases issued).
  /// Does not touch the scheduler — restore it separately.
  void Restore(const Json& snapshot);

 private:
  /// One deferred trace emission: a job span or a recommendation instant,
  /// stored as plain fields so no Json is assembled until flush time.
  struct DeferredEvent {
    bool is_span = true;
    // Span payload (EmitJobSpan's inputs).
    TrialId trial = -1;
    int rung = 0;
    int bracket = 0;
    double from_resource = 0;
    double to_resource = 0;
    bool lost = false;
    double loss = 0;
    RunTiming timing;
    // Recommendation payload (trial/loss fields shared with the span's).
    double time = 0;
    double resource = 0;
  };

  void Resolve(const LeasedJob& lease, bool lost, double loss,
               const RunTiming& timing);
  void NoteRecommendation(double now);
  // EventTracer::BatchSource — materializes deferred events in order.
  void Drain(std::vector<TraceEvent>& out) override;
  void MaterializeInto(std::vector<TraceEvent>& out);
  void FlushCounters();

  Scheduler& scheduler_;
  LifecycleOptions options_;
  OpenLeaseSet pending_;
  std::uint64_t next_lease_id_ = 1;
  std::vector<RunRecord> records_;
  std::vector<RecommendationPoint> recommendations_;
  std::size_t completed_ = 0;
  std::size_t lost_ = 0;
  // Lazily resolved instruments (see LifecycleOptions).
  Counter* completed_counter_ = nullptr;
  Counter* lost_counter_ = nullptr;
  std::string span_name_;  // reused across emissions
  // Telemetry batching (active iff options_.batch_telemetry && telemetry).
  bool batching_ = false;
  std::vector<DeferredEvent> deferred_;
  std::int64_t completed_delta_ = 0;
  std::int64_t lost_delta_ = 0;
};

}  // namespace hypertune
