// The one record type every execution backend produces.
//
// The paper evaluates one job lifecycle — lease → run → report-or-lose
// (Algorithm 2) — and each of our backends (SimulationDriver,
// ThreadPoolExecutor, TuningServer) used to define its own completion
// struct for it. RunRecord replaces all of them: a backend-agnostic account
// of one leased job, whether it finished with a loss or was lost to a drop,
// crash, or lease expiry. Times are in the backend's own clock domain
// (virtual time for the simulator and service harness, seconds since run
// start for the thread pool); everything else is identical across backends,
// which is what lets src/analysis and tools/decision_dump consume a single
// type.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace hypertune {

/// One resolved lease: a job that completed with a loss or was lost.
struct RunRecord {
  TrialId trial_id = -1;
  int rung = 0;
  /// Early-stopping rate s of the owning bracket (Hyperband family).
  int bracket = 0;
  Resource from_resource = 0;
  Resource to_resource = 0;
  /// Validation loss at to_resource; meaningless when `lost`.
  double loss = 0;
  /// True when the job never reported: dropped by a hazard, crashed worker,
  /// expired lease, or stranded in a prefetch buffer at shutdown.
  bool lost = false;
  /// When the job started executing (backend clock).
  double start_time = 0;
  /// When the outcome landed (backend clock). Records sort by this.
  double end_time = 0;
  /// How long the executing worker sat idle before starting this job
  /// (promotion stalls, rung barriers). Zero where the backend has no
  /// queue-wait notion (the service protocol).
  double queue_wait = 0;
  /// Executing worker index/id; -1 when unknown (e.g. never dispatched).
  int worker = -1;
  /// Lease that produced this record (unique within a run, dense from 1).
  std::uint64_t lease_id = 0;
};

/// Snapshot of the scheduler's recommendation whenever it changes.
struct RecommendationPoint {
  double time = 0;
  TrialId trial_id = -1;
  double loss = 0;
  Resource resource = 0;
};

}  // namespace hypertune
