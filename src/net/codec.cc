#include "net/codec.h"

#include <initializer_list>
#include <string>

#include "common/check.h"

namespace hypertune {
namespace {

// Strict schema guard: the message must carry exactly `keys` (the canonical
// field set its producer writes). Extra fields would be silently dropped by
// a packed encoding — make that a loud error instead.
void ExpectKeys(const Json& message,
                std::initializer_list<std::string_view> keys) {
  HT_CHECK_MSG(message.AsObject().size() == keys.size(),
               "wire codec: message has " << message.AsObject().size()
                                          << " fields, schema expects "
                                          << keys.size());
  for (const std::string_view key : keys) {
    HT_CHECK_MSG(message.Has(key),
                 "wire codec: message missing field '" << key << "'");
  }
}

// --- Job payload (mirrors core/trial_json.cc's ToJson(Job)) ---

void WriteConfig(WireWriter& writer, const Json& config) {
  const JsonObject& object = config.AsObject();
  HT_CHECK_MSG(object.size() <= 0xFFFF, "configuration too wide for wire");
  writer.U16(static_cast<std::uint16_t>(object.size()));
  for (const auto& [name, value] : object) {
    writer.ShortString(name);
    if (value.IsString()) {
      writer.U8(2);
      writer.String(value.AsString());
    } else if (value.IsInt()) {
      writer.U8(1);
      writer.I64(value.AsInt());
    } else {
      writer.U8(0);
      writer.F64(value.AsDouble());
    }
  }
}

Json ReadConfig(WireReader& reader) {
  const std::uint16_t count = reader.U16();
  Json config = JsonObject{};
  for (std::uint16_t i = 0; i < count; ++i) {
    std::string name = reader.ShortString();
    const std::uint8_t kind = reader.U8();
    switch (kind) {
      case 0: config.Set(std::move(name), Json(reader.F64())); break;
      case 1: config.Set(std::move(name), Json(reader.I64())); break;
      case 2: config.Set(std::move(name), Json(reader.String())); break;
      default:
        throw CheckError("wire codec: unknown parameter kind " +
                         std::to_string(kind));
    }
  }
  return config;
}

void WriteJob(WireWriter& writer, const Json& job) {
  ExpectKeys(job, {"trial", "config", "from", "to", "rung", "bracket", "tag"});
  writer.I64(job.at("trial").AsInt());
  WriteConfig(writer, job.at("config"));
  writer.F64(job.at("from").AsDouble());
  writer.F64(job.at("to").AsDouble());
  writer.I64(job.at("rung").AsInt());
  writer.I64(job.at("bracket").AsInt());
  writer.I64(job.at("tag").AsInt());
}

Json ReadJob(WireReader& reader) {
  Json job = JsonObject{};
  job.Set("trial", Json(reader.I64()));
  job.Set("config", ReadConfig(reader));
  job.Set("from", Json(reader.F64()));
  job.Set("to", Json(reader.F64()));
  job.Set("rung", Json(reader.I64()));
  job.Set("bracket", Json(reader.I64()));
  job.Set("tag", Json(reader.I64()));
  return job;
}

// --- Per-type payload structs ---

WireType EncodeBody(const Json& message, WireWriter& writer) {
  const std::string& type = message.at("type").AsString();
  // Lease messages carrying a study id use the appended study-scoped types;
  // without one they encode to the original frozen payloads byte for byte.
  const bool scoped = message.Has("study");
  if (type == "request_job") {
    if (scoped) {
      ExpectKeys(message, {"type", "worker", "study"});
    } else {
      ExpectKeys(message, {"type", "worker"});
    }
    writer.I64(message.at("worker").AsInt());
    if (!scoped) return WireType::kRequestJob;
    writer.ShortString(message.at("study").AsString());
    return WireType::kRequestJobStudy;
  }
  if (type == "request_jobs") {
    if (scoped) {
      ExpectKeys(message, {"type", "worker", "count", "study"});
    } else {
      ExpectKeys(message, {"type", "worker", "count"});
    }
    writer.I64(message.at("worker").AsInt());
    writer.I64(message.at("count").AsInt());
    if (!scoped) return WireType::kRequestJobs;
    writer.ShortString(message.at("study").AsString());
    return WireType::kRequestJobsStudy;
  }
  if (type == "heartbeat") {
    if (scoped) {
      ExpectKeys(message, {"type", "worker", "job_id", "study"});
    } else {
      ExpectKeys(message, {"type", "worker", "job_id"});
    }
    writer.I64(message.at("worker").AsInt());
    writer.I64(message.at("job_id").AsInt());
    if (!scoped) return WireType::kHeartbeat;
    writer.ShortString(message.at("study").AsString());
    return WireType::kHeartbeatStudy;
  }
  if (type == "report") {
    if (scoped) {
      ExpectKeys(message, {"type", "worker", "job_id", "loss", "study"});
    } else {
      ExpectKeys(message, {"type", "worker", "job_id", "loss"});
    }
    writer.I64(message.at("worker").AsInt());
    writer.I64(message.at("job_id").AsInt());
    writer.F64(message.at("loss").AsDouble());
    if (!scoped) return WireType::kReport;
    writer.ShortString(message.at("study").AsString());
    return WireType::kReportStudy;
  }
  if (type == "create_study") {
    const bool has_quota = message.Has("max_leases");
    if (has_quota) {
      ExpectKeys(message, {"type", "study", "config", "max_leases"});
    } else {
      ExpectKeys(message, {"type", "study", "config"});
    }
    writer.ShortString(message.at("study").AsString());
    WriteConfig(writer, message.at("config"));
    writer.U8(has_quota ? 1 : 0);
    if (has_quota) writer.I64(message.at("max_leases").AsInt());
    return WireType::kCreateStudy;
  }
  if (type == "suspend_study" || type == "resume_study" ||
      type == "delete_study") {
    ExpectKeys(message, {"type", "study"});
    writer.ShortString(message.at("study").AsString());
    if (type == "suspend_study") return WireType::kSuspendStudy;
    if (type == "resume_study") return WireType::kResumeStudy;
    return WireType::kDeleteStudy;
  }
  if (type == "list_studies") {
    ExpectKeys(message, {"type"});
    return WireType::kListStudies;
  }
  if (type == "studies") {
    ExpectKeys(message, {"type", "studies"});
    const JsonArray& studies = message.at("studies").AsArray();
    writer.U32(static_cast<std::uint32_t>(studies.size()));
    for (const Json& entry : studies) {
      ExpectKeys(entry, {"study", "state", "max_leases", "active_leases",
                         "jobs_assigned", "jobs_completed"});
      writer.ShortString(entry.at("study").AsString());
      writer.U8(entry.at("state").AsString() == "suspended" ? 1 : 0);
      writer.I64(entry.at("max_leases").AsInt());
      writer.I64(entry.at("active_leases").AsInt());
      writer.I64(entry.at("jobs_assigned").AsInt());
      writer.I64(entry.at("jobs_completed").AsInt());
    }
    return WireType::kStudies;
  }
  if (type == "job") {
    if (scoped) {
      ExpectKeys(message, {"type", "job_id", "job", "lease_timeout", "study"});
    } else {
      ExpectKeys(message, {"type", "job_id", "job", "lease_timeout"});
    }
    writer.I64(message.at("job_id").AsInt());
    WriteJob(writer, message.at("job"));
    writer.F64(message.at("lease_timeout").AsDouble());
    if (!scoped) return WireType::kJob;
    writer.ShortString(message.at("study").AsString());
    return WireType::kJobStudy;
  }
  if (type == "jobs") {
    const bool has_retry = message.Has("retry_after");
    if (has_retry) {
      ExpectKeys(message, {"type", "jobs", "lease_timeout", "retry_after"});
    } else {
      ExpectKeys(message, {"type", "jobs", "lease_timeout"});
    }
    const JsonArray& jobs = message.at("jobs").AsArray();
    // A "*" fair-allocation grant names each entry's study (kJobsStudy);
    // a study-less batch is the original frozen kJobs payload.
    const bool entries_scoped = !jobs.empty() && jobs.front().Has("study");
    writer.U32(static_cast<std::uint32_t>(jobs.size()));
    for (const Json& entry : jobs) {
      if (entries_scoped) {
        ExpectKeys(entry, {"job_id", "job", "study"});
      } else {
        ExpectKeys(entry, {"job_id", "job"});
      }
      writer.I64(entry.at("job_id").AsInt());
      WriteJob(writer, entry.at("job"));
      if (entries_scoped) writer.ShortString(entry.at("study").AsString());
    }
    writer.F64(message.at("lease_timeout").AsDouble());
    writer.U8(has_retry ? 1 : 0);
    if (has_retry) writer.F64(message.at("retry_after").AsDouble());
    return entries_scoped ? WireType::kJobsStudy : WireType::kJobs;
  }
  if (type == "no_job") {
    const bool shed = message.Has("shed");
    const bool degraded = message.Has("degraded");
    if (!shed && !degraded) {
      ExpectKeys(message, {"type", "retry_after"});
      writer.F64(message.at("retry_after").AsDouble());
      return WireType::kNoJob;
    }
    // Overload / degraded denials (net_server shedding, DurableServer's
    // read-only mode). The flags are presence-only booleans: producers set
    // them to true or not at all, and the strict round-trip depends on it.
    if (shed && degraded) {
      ExpectKeys(message, {"type", "retry_after", "shed", "degraded"});
    } else if (shed) {
      ExpectKeys(message, {"type", "retry_after", "shed"});
    } else {
      ExpectKeys(message, {"type", "retry_after", "degraded"});
    }
    HT_CHECK_MSG(!shed || message.at("shed").AsBool(),
                 "wire codec: no_job 'shed' must be true when present");
    HT_CHECK_MSG(!degraded || message.at("degraded").AsBool(),
                 "wire codec: no_job 'degraded' must be true when present");
    writer.F64(message.at("retry_after").AsDouble());
    writer.U8(static_cast<std::uint8_t>((shed ? 1 : 0) | (degraded ? 2 : 0)));
    return WireType::kNoJobFlagged;
  }
  if (type == "ack") {
    const bool has_stale = message.Has("stale");
    if (has_stale) {
      ExpectKeys(message, {"type", "stale"});
      writer.U8(message.at("stale").AsBool() ? 3 : 1);
    } else {
      ExpectKeys(message, {"type"});
      writer.U8(0);
    }
    return WireType::kAck;
  }
  if (type == "lease_lost") {
    ExpectKeys(message, {"type"});
    return WireType::kLeaseLost;
  }
  if (type == "error") {
    ExpectKeys(message, {"type", "message"});
    writer.String(message.at("message").AsString());
    return WireType::kError;
  }
  throw CheckError("wire codec: message type '" + type +
                   "' is outside the wire schema");
}

Json DecodeBody(WireType type, WireReader& reader) {
  Json message = JsonObject{};
  switch (type) {
    case WireType::kRequestJob:
      message.Set("type", Json("request_job"));
      message.Set("worker", Json(reader.I64()));
      return message;
    case WireType::kRequestJobs:
      message.Set("type", Json("request_jobs"));
      message.Set("worker", Json(reader.I64()));
      message.Set("count", Json(reader.I64()));
      return message;
    case WireType::kHeartbeat:
      message.Set("type", Json("heartbeat"));
      message.Set("worker", Json(reader.I64()));
      message.Set("job_id", Json(reader.I64()));
      return message;
    case WireType::kReport:
      message.Set("type", Json("report"));
      message.Set("worker", Json(reader.I64()));
      message.Set("job_id", Json(reader.I64()));
      message.Set("loss", Json(reader.F64()));
      return message;
    case WireType::kRequestJobStudy:
      message.Set("type", Json("request_job"));
      message.Set("worker", Json(reader.I64()));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kRequestJobsStudy:
      message.Set("type", Json("request_jobs"));
      message.Set("worker", Json(reader.I64()));
      message.Set("count", Json(reader.I64()));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kHeartbeatStudy:
      message.Set("type", Json("heartbeat"));
      message.Set("worker", Json(reader.I64()));
      message.Set("job_id", Json(reader.I64()));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kReportStudy:
      message.Set("type", Json("report"));
      message.Set("worker", Json(reader.I64()));
      message.Set("job_id", Json(reader.I64()));
      message.Set("loss", Json(reader.F64()));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kCreateStudy: {
      message.Set("type", Json("create_study"));
      message.Set("study", Json(reader.ShortString()));
      message.Set("config", ReadConfig(reader));
      const std::uint8_t has_quota = reader.U8();
      if (has_quota != 0) message.Set("max_leases", Json(reader.I64()));
      return message;
    }
    case WireType::kSuspendStudy:
      message.Set("type", Json("suspend_study"));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kResumeStudy:
      message.Set("type", Json("resume_study"));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kDeleteStudy:
      message.Set("type", Json("delete_study"));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kListStudies:
      message.Set("type", Json("list_studies"));
      return message;
    case WireType::kStudies: {
      message.Set("type", Json("studies"));
      const std::uint32_t count = reader.U32();
      Json studies = JsonArray{};
      for (std::uint32_t i = 0; i < count; ++i) {
        Json entry = JsonObject{};
        entry.Set("study", Json(reader.ShortString()));
        entry.Set("state", Json(reader.U8() != 0 ? "suspended" : "active"));
        entry.Set("max_leases", Json(reader.I64()));
        entry.Set("active_leases", Json(reader.I64()));
        entry.Set("jobs_assigned", Json(reader.I64()));
        entry.Set("jobs_completed", Json(reader.I64()));
        studies.PushBack(std::move(entry));
      }
      message.Set("studies", std::move(studies));
      return message;
    }
    case WireType::kJobStudy:
      message.Set("type", Json("job"));
      message.Set("job_id", Json(reader.I64()));
      message.Set("job", ReadJob(reader));
      message.Set("lease_timeout", Json(reader.F64()));
      message.Set("study", Json(reader.ShortString()));
      return message;
    case WireType::kJobsStudy: {
      message.Set("type", Json("jobs"));
      const std::uint32_t count = reader.U32();
      Json jobs = JsonArray{};
      for (std::uint32_t i = 0; i < count; ++i) {
        Json entry = JsonObject{};
        entry.Set("job_id", Json(reader.I64()));
        entry.Set("job", ReadJob(reader));
        entry.Set("study", Json(reader.ShortString()));
        jobs.PushBack(std::move(entry));
      }
      message.Set("jobs", std::move(jobs));
      message.Set("lease_timeout", Json(reader.F64()));
      const std::uint8_t has_retry = reader.U8();
      if (has_retry != 0) message.Set("retry_after", Json(reader.F64()));
      return message;
    }
    case WireType::kJob:
      message.Set("type", Json("job"));
      message.Set("job_id", Json(reader.I64()));
      message.Set("job", ReadJob(reader));
      message.Set("lease_timeout", Json(reader.F64()));
      return message;
    case WireType::kJobs: {
      message.Set("type", Json("jobs"));
      const std::uint32_t count = reader.U32();
      Json jobs = JsonArray{};
      for (std::uint32_t i = 0; i < count; ++i) {
        Json entry = JsonObject{};
        entry.Set("job_id", Json(reader.I64()));
        entry.Set("job", ReadJob(reader));
        jobs.PushBack(std::move(entry));
      }
      message.Set("jobs", std::move(jobs));
      message.Set("lease_timeout", Json(reader.F64()));
      const std::uint8_t has_retry = reader.U8();
      if (has_retry != 0) message.Set("retry_after", Json(reader.F64()));
      return message;
    }
    case WireType::kNoJob:
      message.Set("type", Json("no_job"));
      message.Set("retry_after", Json(reader.F64()));
      return message;
    case WireType::kNoJobFlagged: {
      message.Set("type", Json("no_job"));
      message.Set("retry_after", Json(reader.F64()));
      const std::uint8_t flags = reader.U8();
      if ((flags & ~3u) != 0 || flags == 0) {
        throw CheckError("wire codec: bad no_job flags " +
                         std::to_string(flags));
      }
      // Field order matches the producers (retry_after, then the flag), so
      // the decoded Json is bit-identical to what the server built.
      if (flags & 1) message.Set("shed", Json(true));
      if (flags & 2) message.Set("degraded", Json(true));
      return message;
    }
    case WireType::kAck: {
      message.Set("type", Json("ack"));
      const std::uint8_t flags = reader.U8();
      if (flags & 1) message.Set("stale", Json((flags & 2) != 0));
      return message;
    }
    case WireType::kLeaseLost:
      message.Set("type", Json("lease_lost"));
      return message;
    case WireType::kError:
      message.Set("type", Json("error"));
      message.Set("message", Json(reader.String()));
      return message;
  }
  throw CheckError("wire codec: unknown frame type " +
                   std::to_string(static_cast<int>(type)));
}

}  // namespace

std::string EncodeMessage(const Json& message, double now) {
  WireWriter writer;
  writer.F64(now);
  const WireType type = EncodeBody(message, writer);
  return EncodeFrame(type, writer.bytes());
}

WireMessage DecodeMessage(const WireFrame& frame) {
  WireReader reader(frame.payload);
  WireMessage decoded;
  decoded.now = reader.F64();
  decoded.message = DecodeBody(frame.type, reader);
  reader.ExpectEnd();
  return decoded;
}

std::string EncodeJsonLine(const Json& message, double now) {
  Json envelope = JsonObject{};
  envelope.Set("now", Json(now));
  envelope.Set("msg", message);
  return envelope.Dump() + "\n";
}

WireMessage DecodeJsonLine(std::string_view line) {
  const Json envelope = Json::Parse(line);
  WireMessage decoded;
  decoded.now = envelope.at("now").AsDouble();
  decoded.message = envelope.at("msg");
  return decoded;
}

}  // namespace hypertune
