// Lossless codec between the tuning service's JSON protocol messages and
// the packed binary wire structs (DESIGN.md §8).
//
// The JSON protocol (service/server.h) stays the source of truth and the
// debug/compat transport; the binary schema is a packed little-endian
// rendering of exactly the same vocabulary:
//
//   requests   request_job, request_jobs, heartbeat, report
//   replies    job, jobs, no_job, ack (± stale), lease_lost, error
//
// EncodeMessage(json, now) -> framed bytes, DecodeMessage(frame) -> (json,
// now) are exact inverses over that vocabulary: the decoded Json — field
// set, field order, int-vs-double storage — is bit-identical to what the
// server/worker originally built, so Dump() output (and therefore every
// decision golden) is transport-invariant. Doubles travel as IEEE-754 bit
// patterns, integers as two's-complement u64, strings length-prefixed.
//
// Every frame payload begins with the f64 protocol timestamp `now`: the
// clock TuningServer::HandleMessage is clock-agnostic about. A virtual-time
// harness ships virtual time (decision goldens), a real deployment can let
// the server stamp its own wall clock instead (NetServerOptions::clock).
//
// The encoder is strict: a message outside the schema (unknown type,
// missing or extra fields) throws CheckError rather than silently dropping
// data — schema evolution means bumping kWireVersion, not smuggling fields.
#pragma once

#include <string>
#include <string_view>

#include "common/json.h"
#include "net/wire.h"

namespace hypertune {

/// A decoded wire message: the JSON protocol message plus the frame's
/// protocol timestamp.
struct WireMessage {
  Json message;
  double now = 0;
};

/// Encodes one JSON protocol message (request or reply) as a complete
/// binary frame. Throws CheckError for messages outside the schema.
std::string EncodeMessage(const Json& message, double now);

/// Decodes a validated frame's payload back to the JSON message. Throws
/// CheckError on malformed payloads or unknown frame types.
WireMessage DecodeMessage(const WireFrame& frame);

/// The JSON-lines debug transport's envelope: one compact line
/// `{"now":N,"msg":{...}}\n` per message, both directions. Parse/Dump of
/// this envelope is lossless for the same reason the binary codec is —
/// doubles print with %.17g and objects keep insertion order.
std::string EncodeJsonLine(const Json& message, double now);
/// Decodes one envelope line (without the trailing newline).
WireMessage DecodeJsonLine(std::string_view line);

}  // namespace hypertune
