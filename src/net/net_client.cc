#include "net/net_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "fault/fault.h"
#include "net/codec.h"

namespace hypertune {

namespace {

SocketIo& ResolveIo(const NetClientOptions& options) {
  return options.io != nullptr ? *options.io : SocketIo::Real();
}

}  // namespace

NetWorkerClient::NetWorkerClient(std::string host, int port,
                                 NetClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

NetWorkerClient::~NetWorkerClient() { Disconnect(); }

NetWorkerClient::NetWorkerClient(NetWorkerClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      fd_(other.fd_),
      residue_(std::move(other.residue_)) {
  other.fd_ = -1;
}

void NetWorkerClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residue_.clear();
}

bool NetWorkerClient::EnsureConnected() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  // Nonblocking connect + poll gives a bounded connect timeout; the socket
  // goes back to blocking (with SO_RCVTIMEO) for the request-reply phase.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return false;
  }
  if (rc != 0) {
    pollfd p{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(options_.connect_timeout * 1000);
    if (::poll(&p, 1, timeout_ms) != 1) {
      ::close(fd);
      return false;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval timeout{};
  timeout.tv_sec = static_cast<long>(options_.reply_timeout);
  timeout.tv_usec = static_cast<long>(
      (options_.reply_timeout - static_cast<double>(timeout.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  fd_ = fd;
  residue_.clear();
  return true;
}

/// Accumulates socket bytes until one complete reply (frame or line) is
/// buffered; returns the raw bytes of that reply and keeps any excess for
/// the next call.
std::optional<std::string> NetWorkerClient::ReadReplyBytes() {
  std::string buffer = std::move(residue_);
  residue_.clear();
  const bool binary = options_.transport == WireTransport::kBinary;
  SocketIo& io = ResolveIo(options_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.reply_timeout);
  for (;;) {
    // Do we already hold a complete reply?
    if (binary) {
      if (buffer.size() >= kFrameHeaderSize) {
        WireReader header(std::string_view(buffer).substr(0, kFrameHeaderSize));
        (void)header.U32();  // magic — DecodeMessage validates via decoder
        (void)header.U16();
        (void)header.U16();
        const std::uint32_t length = header.U32();
        if (length > kMaxFramePayload) return std::nullopt;
        const std::size_t total = kFrameHeaderSize + length;
        if (buffer.size() >= total) {
          residue_ = buffer.substr(total);
          buffer.resize(total);
          return buffer;
        }
      }
    } else {
      const std::size_t newline = buffer.find('\n');
      if (newline != std::string::npos) {
        residue_ = buffer.substr(newline + 1);
        buffer.resize(newline + 1);
        return buffer;
      }
    }
    char chunk[16 * 1024];
    const ssize_t n = io.Recv(fd_, chunk, sizeof(chunk));
    if (n == 0) return std::nullopt;  // EOF
    if (n < 0) {
      // EAGAIN here is either an injected fault (instant — retry costs
      // nothing) or a real SO_RCVTIMEO expiry (which already consumed the
      // whole reply timeout, so the deadline fails it on arrival).
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          std::chrono::steady_clock::now() < deadline) {
        continue;
      }
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<Json> NetWorkerClient::Send(const Json& message, double now) {
  if (!EnsureConnected()) return std::nullopt;
  std::string bytes;
  try {
    bytes = options_.transport == WireTransport::kBinary
                ? EncodeMessage(message, now)
                : EncodeJsonLine(message, now);
  } catch (const std::exception&) {
    // Message outside the wire schema: not a transport failure, but the
    // caller's contract is "nullopt means it did not get through".
    return std::nullopt;
  }
  SocketIo& io = ResolveIo(options_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.reply_timeout);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = io.Send(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        std::chrono::steady_clock::now() < deadline) {
      continue;  // injected EAGAIN; a real SO_SNDTIMEO expiry ends here
    }
    Disconnect();
    return std::nullopt;
  }
  const auto reply_bytes = ReadReplyBytes();
  if (!reply_bytes) {
    Disconnect();
    return std::nullopt;
  }
  try {
    if (options_.transport == WireTransport::kBinary) {
      FrameDecoder decoder;
      decoder.Feed(*reply_bytes);
      const auto frame = decoder.Next();
      if (!frame) {
        Disconnect();
        return std::nullopt;
      }
      return DecodeMessage(*frame).message;
    }
    return DecodeJsonLine(
               std::string_view(*reply_bytes).substr(0,
                                                     reply_bytes->size() - 1))
        .message;
  } catch (const std::exception&) {
    Disconnect();
    return std::nullopt;
  }
}

}  // namespace hypertune
