// NetWorkerClient: the worker's side of the wire — a ServerConnection
// (service/worker.h) that delivers each protocol message over TCP instead
// of an in-process call.
//
// Send() is strictly request-reply: encode (binary frame or JSON-lines
// envelope, per WireTransport), write, block for the reply, decode. Any
// failure — connect refused, write error, EOF, malformed or timed-out
// reply — closes the socket and returns nullopt, which is exactly the
// signal SimulatedWorker's capped-backoff retry path (PR 5) consumes; the
// next Send() transparently reconnects. A worker fleet therefore rides out
// server restarts with no code beyond what the chaos harness already
// exercises in-process.
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "service/worker.h"

namespace hypertune {

class SocketIo;

/// Which encoding this client speaks. The server auto-detects per
/// connection, so either works against any NetServer.
enum class WireTransport { kBinary, kJson };

struct NetClientOptions {
  WireTransport transport = WireTransport::kBinary;
  /// connect(2) timeout, seconds.
  double connect_timeout = 5.0;
  /// Reply-wait timeout, seconds (SO_RCVTIMEO). A stalled server reads as
  /// an unreachable one: Send fails, the worker backs off and retries.
  double reply_timeout = 30.0;
  /// Socket-op seam (fault injection); null = real syscalls with EINTR
  /// retried. Injected EAGAINs are retried within reply_timeout; a real
  /// SO_RCVTIMEO/SO_SNDTIMEO expiry still fails the exchange.
  SocketIo* io = nullptr;
};

class NetWorkerClient final : public ServerConnection {
 public:
  NetWorkerClient(std::string host, int port, NetClientOptions options = {});
  ~NetWorkerClient() override;

  NetWorkerClient(NetWorkerClient&& other) noexcept;
  NetWorkerClient& operator=(NetWorkerClient&&) = delete;
  NetWorkerClient(const NetWorkerClient&) = delete;
  NetWorkerClient& operator=(const NetWorkerClient&) = delete;

  /// Delivers `message` stamped with protocol time `now`; returns the
  /// server's reply, or nullopt on any transport failure (after which the
  /// connection is closed and the next Send reconnects).
  std::optional<Json> Send(const Json& message, double now) override;

  bool connected() const { return fd_ >= 0; }
  /// Drops the connection (the next Send reconnects). Harness hook for
  /// restart tests.
  void Disconnect();

 private:
  bool EnsureConnected();
  std::optional<std::string> ReadReplyBytes();

  std::string host_;
  int port_;
  NetClientOptions options_;
  int fd_ = -1;
  /// Unconsumed bytes past the last reply (a pipelined server could batch).
  std::string residue_;
};

}  // namespace hypertune
