#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <vector>

#include "common/check.h"
#include "fault/fault.h"
#include "net/codec.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HT_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed: " << std::strerror(errno));
  HT_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL) failed: " << std::strerror(errno));
}

}  // namespace

/// Per-connection state: transport (sniffed from the first byte), inbound
/// decode buffers, and the pending-reply buffer for partial writes.
struct NetServer::Connection {
  enum class Transport { kUnknown, kBinary, kJson };

  int fd = -1;
  Transport transport = Transport::kUnknown;
  FrameDecoder decoder;      // binary transport
  std::string line_buffer;   // JSON transport (newline-delimited envelopes)
  std::string outbuf;
  std::size_t out_offset = 0;
  /// Close once outbuf drains (set after an unrecoverable decode error).
  bool close_after_flush = false;
  /// Close now, pending data dropped (slow client over max_outbuf_bytes).
  bool evicted = false;

  bool HasPendingWrite() const { return out_offset < outbuf.size(); }
};

NetServer::NetServer(MessageService& service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  HT_CHECK(options_.tick_interval > 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HT_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  HT_CHECK_MSG(::inet_pton(AF_INET, options_.bind_address.c_str(),
                           &addr.sin_addr) == 1,
               "invalid bind address '" << options_.bind_address << "'");
  HT_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(" << options_.bind_address << ":" << options_.port
                       << ") failed: " << std::strerror(errno));
  HT_CHECK_MSG(::listen(listen_fd_, options_.backlog) == 0,
               "listen() failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  HT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &len) == 0);
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);
  HT_CHECK_MSG(::pipe(wake_pipe_) == 0,
               "pipe() failed: " << std::strerror(errno));
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
}

NetServer::~NetServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void NetServer::Start() {
  HT_CHECK_MSG(!running_.exchange(true), "NetServer already started");
  thread_ = std::thread([this] { Run(); });
}

void NetServer::Stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  // Wake poll(); a full pipe is fine — the byte already pending wakes it.
  const char byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  // Stop accepting for real: with the listener open, the kernel would keep
  // completing handshakes into the backlog and reconnecting workers would
  // hang on replies that never come instead of seeing ECONNREFUSED.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
  stop_requested_.store(false);
}

NetServerStats NetServer::stats() const {
  NetServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_closed = connections_closed_.load();
  stats.messages_handled = messages_handled_.load();
  stats.timer_ticks = timer_ticks_.load();
  stats.frames_bad_magic = frames_bad_magic_.load();
  stats.frames_bad_version = frames_bad_version_.load();
  stats.frames_bad_crc = frames_bad_crc_.load();
  stats.frames_oversized = frames_oversized_.load();
  stats.frames_truncated = frames_truncated_.load();
  stats.messages_rejected = messages_rejected_.load();
  stats.connections_shed = connections_shed_.load();
  stats.slow_clients_evicted = slow_clients_evicted_.load();
  stats.requests_shed = requests_shed_.load();
  return stats;
}

/// Everything the event loop needs, owned by the loop thread. Kept out of
/// the header: <poll.h> and connection bookkeeping are implementation.
struct NetServer::Loop {
  NetServer& server;
  SocketIo& io;
  std::map<int, Connection> connections;
  /// Protocol clock for NetClock::kMessage: the max envelope `now` seen.
  double last_message_now = 0;
  /// True while the loop is behind schedule (tick lag over the shed
  /// threshold); grant requests are shed until a tick lands on time.
  bool overloaded = false;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  explicit Loop(NetServer& owner)
      : server(owner),
        io(owner.options_.io != nullptr ? *owner.options_.io
                                        : SocketIo::Real()) {}

  double WallNow() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }

  double ProtocolNow(double envelope_now) {
    if (server.options_.clock == NetClock::kWall) return WallNow();
    if (envelope_now > last_message_now) last_message_now = envelope_now;
    return envelope_now;
  }

  double TickNow() const {
    return server.options_.clock == NetClock::kWall ? WallNow()
                                                    : last_message_now;
  }

  void CountFrameError(FrameError error) {
    switch (error) {
      case FrameError::kBadMagic: ++server.frames_bad_magic_; break;
      case FrameError::kBadVersion: ++server.frames_bad_version_; break;
      case FrameError::kBadCrc: ++server.frames_bad_crc_; break;
      case FrameError::kOversized: ++server.frames_oversized_; break;
      case FrameError::kTruncated: ++server.frames_truncated_; break;
      case FrameError::kNone: return;
    }
    if (Telemetry* telemetry = server.options_.telemetry) {
      telemetry->Count(std::string("net.frame_") + FrameErrorName(error));
      // The network-framing arm of the service.malformed counter family.
      telemetry->Count("server.malformed_frames");
    }
  }

  void Enqueue(Connection& conn, std::string bytes) {
    if (conn.outbuf.empty() || conn.out_offset == conn.outbuf.size()) {
      conn.outbuf = std::move(bytes);
      conn.out_offset = 0;
    } else {
      conn.outbuf.append(bytes);
    }
    FlushWrites(conn);
    const std::size_t cap = server.options_.max_outbuf_bytes;
    if (cap > 0 && conn.outbuf.size() - conn.out_offset > cap) {
      // A consumer this far behind is effectively dead: buffering more
      // replies for it would grow without bound. Drop its buffer and close.
      conn.evicted = true;
      conn.outbuf.clear();
      conn.out_offset = 0;
      ++server.slow_clients_evicted_;
      if (Telemetry* telemetry = server.options_.telemetry) {
        telemetry->Count("net.slow_clients_evicted");
      }
    }
  }

  /// Writes as much of outbuf as the socket takes; the poll loop retries
  /// the remainder on POLLOUT. Write errors mark the connection dead.
  void FlushWrites(Connection& conn) {
    while (conn.HasPendingWrite()) {
      const ssize_t n =
          io.Send(conn.fd, conn.outbuf.data() + conn.out_offset,
                  conn.outbuf.size() - conn.out_offset);
      if (n > 0) {
        conn.out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.close_after_flush = true;  // peer gone; reap below
      conn.outbuf.clear();
      conn.out_offset = 0;
      return;
    }
    if (!conn.HasPendingWrite()) {
      conn.outbuf.clear();
      conn.out_offset = 0;
    }
  }

  std::string EncodeReply(const Connection& conn, const Json& reply,
                          double now) {
    return conn.transport == Connection::Transport::kJson
               ? EncodeJsonLine(reply, now)
               : EncodeMessage(reply, now);
  }

  /// True for messages that ask for new work — what overload shedding
  /// answers without touching the service.
  static bool IsGrantRequest(const Json& message) {
    try {
      if (!message.Has("type")) return false;
      const std::string& type = message.at("type").AsString();
      return type == "request_job" || type == "request_jobs";
    } catch (const std::exception&) {
      return false;
    }
  }

  void HandleDecoded(Connection& conn, const Json& message,
                     double envelope_now) {
    const double now = ProtocolNow(envelope_now);
    if (overloaded && IsGrantRequest(message)) {
      // Behind schedule: granting more work only digs the hole deeper.
      // Tell the worker to come back without spending service time on a
      // scheduler decision.
      ++server.requests_shed_;
      if (Telemetry* telemetry = server.options_.telemetry) {
        telemetry->Count("net.requests_shed");
      }
      Json shed = JsonObject{};
      shed.Set("type", Json("no_job"));
      shed.Set("retry_after", Json(server.options_.shed_retry_after));
      shed.Set("shed", Json(true));
      Enqueue(conn, EncodeReply(conn, shed, now));
      return;
    }
    // HandleMessage turns malformed *messages* into error replies itself;
    // this try is defense in depth for anything else.
    Json reply;
    try {
      reply = server.service_.HandleMessage(message, now);
    } catch (const std::exception& error) {
      Json failure = JsonObject{};
      failure.Set("type", Json("error"));
      failure.Set("message", Json(std::string(error.what())));
      reply = std::move(failure);
    }
    ++server.messages_handled_;
    Enqueue(conn, EncodeReply(conn, reply, now));
  }

  void RejectMessage(Connection& conn, const std::string& text, double now) {
    ++server.messages_rejected_;
    if (Telemetry* telemetry = server.options_.telemetry) {
      telemetry->Count("net.messages_rejected");
    }
    Json reply = JsonObject{};
    reply.Set("type", Json("error"));
    reply.Set("message", Json(text));
    Enqueue(conn, EncodeReply(conn, reply, now));
  }

  void ProcessBinary(Connection& conn) {
    for (;;) {
      if (conn.evicted) return;
      while (auto frame = conn.decoder.Next()) {
        if (conn.evicted) return;
        try {
          const WireMessage decoded = DecodeMessage(*frame);
          HandleDecoded(conn, decoded.message, decoded.now);
        } catch (const std::exception& error) {
          RejectMessage(conn, error.what(), TickNow());
        }
      }
      const FrameError error = conn.decoder.error();
      if (error == FrameError::kNone) return;
      CountFrameError(error);
      if (conn.decoder.poisoned()) {
        // Unframeable stream: say why, flush, close. Never crash.
        RejectMessage(conn,
                      std::string("unrecoverable frame error: ") +
                          FrameErrorName(error),
                      TickNow());
        conn.close_after_flush = true;
        return;
      }
      // Bad CRC: the frame was skipped and the stream is still framed.
      RejectMessage(conn,
                    std::string("frame rejected: ") + FrameErrorName(error),
                    TickNow());
      conn.decoder.ClearError();
    }
  }

  void ProcessJsonLines(Connection& conn) {
    std::size_t start = 0;
    for (;;) {
      if (conn.evicted) break;
      const std::size_t newline = conn.line_buffer.find('\n', start);
      if (newline == std::string::npos) break;
      const std::string_view line =
          std::string_view(conn.line_buffer).substr(start, newline - start);
      start = newline + 1;
      if (line.empty()) continue;
      try {
        const WireMessage decoded = DecodeJsonLine(line);
        HandleDecoded(conn, decoded.message, decoded.now);
      } catch (const std::exception& error) {
        RejectMessage(conn, error.what(), TickNow());
      }
    }
    conn.line_buffer.erase(0, start);
  }

  void ProcessInput(Connection& conn, std::string_view bytes) {
    if (conn.transport == Connection::Transport::kUnknown && !bytes.empty()) {
      // JSON documents open with '{'; no binary frame does (magic starts
      // with 'H'). One byte settles the connection's transport for life.
      conn.transport = bytes.front() == '{' ? Connection::Transport::kJson
                                            : Connection::Transport::kBinary;
    }
    if (conn.transport == Connection::Transport::kJson) {
      conn.line_buffer.append(bytes);
      ProcessJsonLines(conn);
    } else {
      conn.decoder.Feed(bytes);
      ProcessBinary(conn);
    }
  }

  void Accept() {
    for (;;) {
      const int fd = ::accept(server.listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;  // a signal is not "no more clients"
        return;  // EAGAIN or transient error: poll again
      }
      if (const std::size_t cap = server.options_.max_connections;
          cap > 0 && connections.size() >= cap) {
        // At capacity: shed the connection at the door. The immediate
        // close (ECONNRESET on the client's first exchange) feeds its
        // backoff path, which beats stringing it along unserved.
        ::close(fd);
        ++server.connections_shed_;
        if (Telemetry* telemetry = server.options_.telemetry) {
          telemetry->Count("net.connections_shed");
        }
        continue;
      }
      SetNonBlocking(fd);
      const int one = 1;
      // Request-reply traffic: Nagle would serialize every exchange on a
      // delayed-ACK timer.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Connection conn;
      conn.fd = fd;
      connections.emplace(fd, std::move(conn));
      ++server.connections_accepted_;
      if (Telemetry* telemetry = server.options_.telemetry) {
        telemetry->Count("net.connections_accepted");
      }
    }
  }

  /// Reads until EAGAIN/EOF. Returns false when the connection is done
  /// (EOF or error) and should be reaped after its outbuf flushes.
  bool ReadReady(Connection& conn) {
    char buffer[64 * 1024];
    for (;;) {
      const ssize_t n = io.Recv(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        ProcessInput(conn, std::string_view(buffer,
                                            static_cast<std::size_t>(n)));
        if (conn.evicted) return false;
        if (conn.close_after_flush) {
          // Poisoned stream: stop reading, let the error reply flush (the
          // reap check below closes once outbuf drains).
          ::shutdown(conn.fd, SHUT_RD);
          return true;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      // EOF (or hard error): a binary stream cut mid-frame is a truncated
      // tail — detected, accounted, never parsed.
      if (conn.transport == Connection::Transport::kBinary) {
        conn.decoder.Finish();
        if (conn.decoder.error() == FrameError::kTruncated) {
          CountFrameError(FrameError::kTruncated);
        }
      }
      return false;
    }
  }

  void Close(Connection& conn) {
    ::close(conn.fd);
    ++server.connections_closed_;
  }

  /// Bounded flush of every pending reply, then close everything.
  void Drain() {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(server.options_.drain_timeout));
    for (;;) {
      std::vector<pollfd> fds;
      for (auto& [fd, conn] : connections) {
        if (conn.HasPendingWrite()) fds.push_back({fd, POLLOUT, 0});
      }
      if (fds.empty()) break;
      const auto remaining = deadline - std::chrono::steady_clock::now();
      if (remaining <= std::chrono::steady_clock::duration::zero()) break;
      const int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count());
      if (::poll(fds.data(), fds.size(), std::max(timeout_ms, 1)) <= 0) {
        continue;
      }
      for (const pollfd& p : fds) {
        if (p.revents != 0) FlushWrites(connections.at(p.fd));
      }
    }
    for (auto& [fd, conn] : connections) Close(conn);
    connections.clear();
  }
};

void NetServer::Run() {
  Loop loop(*this);
  double next_tick = loop.WallNow() + options_.tick_interval;
  std::vector<pollfd> fds;
  std::vector<int> done;  // fds to reap this iteration

  while (!stop_requested_.load()) {
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : loop.connections) {
      short events = POLLIN;
      if (conn.HasPendingWrite()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    const double until_tick = next_tick - loop.WallNow();
    const int timeout_ms =
        until_tick <= 0
            ? 0
            : static_cast<int>(until_tick * 1000) + 1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);

    // The idle-expiry path: leases must die on schedule even when not a
    // single worker message arrives (TuningServer::Tick used to run only
    // piggybacked on HandleMessage).
    if (loop.WallNow() >= next_tick) {
      // Tick lag is the overload signal: a loop that can't run its timer
      // on time can't keep up with its sockets either.
      if (options_.overload_shed_lag > 0) {
        loop.overloaded =
            loop.WallNow() - next_tick > options_.overload_shed_lag;
      }
      service_.Tick(loop.TickNow());
      ++timer_ticks_;
      next_tick = loop.WallNow() + options_.tick_interval;
    }
    if (ready <= 0) continue;

    if (fds[0].revents != 0) {
      char sink[64];
      while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (fds[1].revents != 0) loop.Accept();

    done.clear();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      auto it = loop.connections.find(p.fd);
      if (it == loop.connections.end()) continue;
      Connection& conn = it->second;
      bool alive = true;
      if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = loop.ReadReady(conn);
      }
      if (alive && (p.revents & POLLOUT)) loop.FlushWrites(conn);
      if (!alive || (conn.close_after_flush && !conn.HasPendingWrite())) {
        // Give a poisoned connection one last synchronous flush so the
        // error reply reaches the peer before the FIN.
        if (!alive && conn.HasPendingWrite()) loop.FlushWrites(conn);
        loop.Close(conn);
        done.push_back(p.fd);
      }
    }
    for (const int fd : done) loop.connections.erase(fd);
  }

  loop.Drain();
}

}  // namespace hypertune
