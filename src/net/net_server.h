// NetServer: the real-network shell around the tuning service.
//
// Accepts many concurrent worker TCP connections on a poll(2) event loop
// (one dedicated thread, non-blocking sockets) and multiplexes their
// traffic onto a single MessageService (TuningServer or DurableServer —
// both are single-threaded, and only the loop thread ever touches the
// service, so the protocol stays exactly as deterministic as in-process).
//
// Transports are auto-detected per connection from the first byte: '{'
// opens the JSON-lines debug transport (newline-delimited
// {"now":N,"msg":{...}} envelopes), anything else must be a binary frame
// (net/wire.h). Replies always use the connection's transport.
//
// Two clocks (NetServerOptions::clock):
//   kWall     `now` = seconds since the server started (steady clock); the
//             envelope timestamp is ignored. Real deployments.
//   kMessage  `now` = the envelope timestamp; the idle timer re-ticks the
//             last seen `now`. Virtual-time harnesses — this is what makes
//             decision dumps byte-identical across transports.
//
// The idle timer closes the PR-3 gap where Tick only ran piggybacked on
// HandleMessage: poll() wakes at tick_interval even with zero inbound
// traffic and calls MessageService::Tick, so leases expire (and are
// journaled by a DurableServer) while every worker is silent or dead.
//
// Malformed input never crashes the loop: each frame-decode error kind is
// accounted (NetServerStats + net.frame_* / server.malformed_frames
// telemetry counters, extending the service.malformed family), bad-CRC
// frames are skipped with an error reply on a surviving connection, and
// unframeable streams (bad magic/version/oversized) are closed cleanly.
//
// Stop() drains gracefully: stop accepting, flush every pending reply
// (bounded by drain_timeout), close all sockets, join the loop thread.
// Workers observe EOF, their next Send fails, and they enter the PR-5
// backoff/reconnect path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "service/server.h"

namespace hypertune {

class Telemetry;
class SocketIo;

/// Where HandleMessage's `now` comes from (see file comment).
enum class NetClock { kWall, kMessage };

struct NetServerOptions {
  /// Listen address; loopback by default (tests, benches, local fleets).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; NetServer::port() reports the real one.
  int port = 0;
  NetClock clock = NetClock::kWall;
  /// Idle-tick period in wall seconds: the longest a due lease expiry can
  /// wait when no messages arrive.
  double tick_interval = 1.0;
  /// Graceful-shutdown bound on flushing pending replies.
  double drain_timeout = 5.0;
  /// Listen backlog for bursts of connecting workers.
  int backlog = 128;
  /// Cap on concurrent connections; accepts beyond it are shed (closed
  /// immediately and counted). 0 = unlimited.
  std::size_t max_connections = 0;
  /// Cap on a connection's pending-reply buffer. A client that stops
  /// reading while replies pile up past this is evicted — its buffer is
  /// dropped and the socket closed — instead of growing the buffer without
  /// bound. 0 = unlimited.
  std::size_t max_outbuf_bytes = 0;
  /// Overload shedding: when the idle tick runs this many wall seconds
  /// late (the loop can't keep up), request_job / request_jobs are
  /// answered with {"type":"no_job","retry_after":shed_retry_after,
  /// "shed":true} without touching the service, until a tick lands on
  /// time again. Cheap messages (heartbeats, reports) still flow — under
  /// overload, finishing in-flight work beats granting more. 0 = off.
  double overload_shed_lag = 0;
  double shed_retry_after = 1.0;
  /// Socket-op seam (fault injection); null = real syscalls with EINTR
  /// retried.
  SocketIo* io = nullptr;
  /// Optional observability sink (not owned; must outlive the server).
  Telemetry* telemetry = nullptr;
};

/// Protocol/transport counters. Loaded atomically — readable live from any
/// thread while the loop runs.
struct NetServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_closed = 0;
  std::size_t messages_handled = 0;
  std::size_t timer_ticks = 0;
  /// Frame-decode rejections by kind (the malformed-frame contract).
  std::size_t frames_bad_magic = 0;
  std::size_t frames_bad_version = 0;
  std::size_t frames_bad_crc = 0;
  std::size_t frames_oversized = 0;
  std::size_t frames_truncated = 0;
  /// Valid frames whose payload failed to decode (unknown type, underrun),
  /// and unparseable JSON lines; each earns an error reply.
  std::size_t messages_rejected = 0;
  /// Accepts closed immediately because max_connections was reached.
  std::size_t connections_shed = 0;
  /// Connections evicted for exceeding max_outbuf_bytes.
  std::size_t slow_clients_evicted = 0;
  /// Grant requests answered with a shed no_job during overload.
  std::size_t requests_shed = 0;
};

class NetServer {
 public:
  /// Binds and listens immediately (throws CheckError on failure) but does
  /// not serve until Start().
  NetServer(MessageService& service, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Spawns the event-loop thread. Call once.
  void Start();

  /// Graceful shutdown: stop accepting, drain replies, close, join.
  /// Idempotent; the destructor calls it too. After Stop() returns, the
  /// wrapped MessageService is safe to inspect from the caller's thread.
  void Stop();

  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

  NetServerStats stats() const;

 private:
  struct Connection;
  struct Loop;

  MessageService& service_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Written by the loop thread, read by anyone.
  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::size_t> connections_closed_{0};
  std::atomic<std::size_t> messages_handled_{0};
  std::atomic<std::size_t> timer_ticks_{0};
  std::atomic<std::size_t> frames_bad_magic_{0};
  std::atomic<std::size_t> frames_bad_version_{0};
  std::atomic<std::size_t> frames_bad_crc_{0};
  std::atomic<std::size_t> frames_oversized_{0};
  std::atomic<std::size_t> frames_truncated_{0};
  std::atomic<std::size_t> messages_rejected_{0};
  std::atomic<std::size_t> connections_shed_{0};
  std::atomic<std::size_t> slow_clients_evicted_{0};
  std::atomic<std::size_t> requests_shed_{0};

  void Run();
};

}  // namespace hypertune
