#include "net/wire.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace hypertune {

void WireWriter::U8(std::uint8_t value) {
  bytes_.push_back(static_cast<char>(value));
}

void WireWriter::U16(std::uint16_t value) {
  bytes_.push_back(static_cast<char>(value & 0xFF));
  bytes_.push_back(static_cast<char>(value >> 8));
}

void WireWriter::U32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::U64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void WireWriter::F64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  U64(bits);
}

void WireWriter::ShortString(std::string_view value) {
  HT_CHECK_MSG(value.size() <= 0xFFFF,
               "wire short string too long: " << value.size() << " bytes");
  U16(static_cast<std::uint16_t>(value.size()));
  bytes_.append(value);
}

void WireWriter::String(std::string_view value) {
  HT_CHECK_MSG(value.size() <= kMaxFramePayload,
               "wire string too long: " << value.size() << " bytes");
  U32(static_cast<std::uint32_t>(value.size()));
  bytes_.append(value);
}

std::string_view WireReader::Take(std::size_t count) {
  HT_CHECK_MSG(count <= bytes_.size() - offset_,
               "wire payload underrun: want " << count << " bytes, have "
                                              << bytes_.size() - offset_);
  const std::string_view view = bytes_.substr(offset_, count);
  offset_ += count;
  return view;
}

std::uint8_t WireReader::U8() {
  return static_cast<std::uint8_t>(Take(1)[0]);
}

std::uint16_t WireReader::U16() {
  const std::string_view view = Take(2);
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(view[0]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(view[1])) << 8));
}

std::uint32_t WireReader::U32() {
  const std::string_view view = Take(4);
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(view[static_cast<std::size_t>(i)]);
  }
  return value;
}

std::uint64_t WireReader::U64() {
  const std::string_view view = Take(8);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(view[static_cast<std::size_t>(i)]);
  }
  return value;
}

double WireReader::F64() {
  const std::uint64_t bits = U64();
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string WireReader::ShortString() {
  const std::uint16_t size = U16();
  return std::string(Take(size));
}

std::string WireReader::String() {
  const std::uint32_t size = U32();
  HT_CHECK_MSG(size <= kMaxFramePayload, "wire string length " << size
                                             << " exceeds frame bound");
  return std::string(Take(size));
}

void WireReader::ExpectEnd() const {
  HT_CHECK_MSG(AtEnd(), "wire payload has " << bytes_.size() - offset_
                                            << " trailing bytes");
}

std::string EncodeFrame(WireType type, std::string_view payload) {
  HT_CHECK_MSG(payload.size() <= kMaxFramePayload,
               "frame payload too large: " << payload.size() << " bytes");
  WireWriter header;
  header.U32(kFrameMagic);
  header.U16(kWireVersion);
  header.U16(static_cast<std::uint16_t>(type));
  header.U32(static_cast<std::uint32_t>(payload.size()));
  header.U32(Crc32(payload));
  std::string frame = header.Take();
  frame.append(payload);
  return frame;
}

const char* FrameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadVersion: return "bad_version";
    case FrameError::kOversized: return "oversized";
    case FrameError::kBadCrc: return "bad_crc";
    case FrameError::kTruncated: return "truncated";
  }
  return "unknown";
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state decoding is append + view, not repeated memmove.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<WireFrame> FrameDecoder::Next() {
  if (poisoned_ || error_ != FrameError::kNone) return std::nullopt;
  {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderSize) return std::nullopt;
    WireReader header(std::string_view(buffer_).substr(consumed_,
                                                       kFrameHeaderSize));
    const std::uint32_t magic = header.U32();
    if (magic != kFrameMagic) {
      error_ = FrameError::kBadMagic;
      poisoned_ = true;
      return std::nullopt;
    }
    const std::uint16_t version = header.U16();
    if (version != kWireVersion) {
      error_ = FrameError::kBadVersion;
      poisoned_ = true;
      return std::nullopt;
    }
    const std::uint16_t type = header.U16();
    const std::uint32_t length = header.U32();
    const std::uint32_t crc = header.U32();
    if (length > kMaxFramePayload) {
      error_ = FrameError::kOversized;
      poisoned_ = true;
      return std::nullopt;
    }
    if (available < kFrameHeaderSize + length) return std::nullopt;
    std::string payload =
        buffer_.substr(consumed_ + kFrameHeaderSize, length);
    consumed_ += kFrameHeaderSize + length;
    if (Crc32(payload) != crc) {
      // The header framed the stream correctly, so the next frame is intact:
      // latch the error for accounting, drop the payload, stay usable.
      error_ = FrameError::kBadCrc;
      return std::nullopt;
    }
    return WireFrame{static_cast<WireType>(type), std::move(payload)};
  }
}

void FrameDecoder::Finish() {
  if (poisoned_) return;
  if (buffer_.size() - consumed_ > 0) {
    error_ = FrameError::kTruncated;
    poisoned_ = true;
  }
}

void FrameDecoder::ClearError() {
  if (!poisoned_) error_ = FrameError::kNone;
}

}  // namespace hypertune
