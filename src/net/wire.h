// Binary wire framing for the lease protocol (DESIGN.md §8).
//
// Every frame on a binary-transport connection is
//
//   [16-byte header, little-endian]
//     u32 magic    "HTNP" (0x504E5448)
//     u16 version  kWireVersion; decoders reject anything else
//     u16 type     WireType — which packed payload struct follows
//     u32 length   payload byte count (<= kMaxFramePayload)
//     u32 crc      CRC-32 (IEEE, the WAL polynomial) of the payload bytes
//   [length payload bytes]
//
// in the spirit of the write-ahead journal's frames (src/durability/wal.h):
// a torn or bit-rotted frame is detected by header validation + checksum
// mismatch, never parsed. The header is fixed-layout so a reader can frame
// the stream before it understands any payload; the payload is a packed
// little-endian struct per WireType (src/net/codec.h).
//
// FrameDecoder is incremental: feed it whatever bytes the socket produced,
// pop complete frames. It distinguishes "need more bytes" from the five
// hard error states the malformed-frame tests pin down: bad magic, wrong
// version, oversized length, CRC mismatch, and a tail truncated mid-frame
// (reported only when the caller signals EOF). After a bad-CRC frame the
// stream is still framed (the header told us the length), so the decoder
// skips the payload and keeps going; bad magic/version/length desync the
// stream and poison the decoder — the connection must be closed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hypertune {

/// First four bytes of every binary frame: "HTNP" on the wire.
inline constexpr std::uint32_t kFrameMagic = 0x504E5448;  // 'H''T''N''P' LE
/// Current wire schema version. Bump on any incompatible change to the
/// header or to a packed payload struct (versioning rules: DESIGN.md §8).
inline constexpr std::uint16_t kWireVersion = 1;
/// Hard upper bound on a payload; larger lengths are hostile or corrupt
/// (the biggest legitimate frame — a max_batch jobs grant — is far below).
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;
/// Header byte count: magic + version + type + length + crc.
inline constexpr std::size_t kFrameHeaderSize = 16;

/// Frame type ids. Requests (worker -> server) are < 16, replies >= 16.
/// Values are wire contract: never renumber, only append.
enum class WireType : std::uint16_t {
  kRequestJob = 1,
  kRequestJobs = 2,
  kHeartbeat = 3,
  kReport = 4,
  // Multi-tenant vocabulary (appended; see DESIGN.md §8 + §11). The
  // study-scoped lease requests are the base payloads plus a trailing study
  // id — separate types rather than optional fields, because the codec is
  // strict both ways and the original payload structs are frozen.
  kCreateStudy = 5,
  kSuspendStudy = 6,
  kResumeStudy = 7,
  kDeleteStudy = 8,
  kListStudies = 9,
  kRequestJobStudy = 10,
  kRequestJobsStudy = 11,
  kHeartbeatStudy = 12,
  kReportStudy = 13,

  kJob = 16,
  kJobs = 17,
  kNoJob = 18,
  kAck = 19,
  kLeaseLost = 20,
  kError = 21,
  // Multi-tenant replies: the list_studies table, and grant replies whose
  // entries name the study they came from (the "*" fair-allocation path —
  // a report must know where to route back).
  kStudies = 22,
  kJobStudy = 23,
  kJobsStudy = 24,
  // A no_job carrying overload/degraded flags ("shed":true when the loop
  // is behind schedule, "degraded":true when the journal is unwritable).
  // Appended type, not new fields on kNoJob — that payload is frozen.
  kNoJobFlagged = 25,
};

/// Little-endian byte packer for payload structs. Appends to an owned
/// buffer; strings are u16/u32 length-prefixed (no terminators).
class WireWriter {
 public:
  void U8(std::uint8_t value);
  void U16(std::uint16_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  void I64(std::int64_t value) { U64(static_cast<std::uint64_t>(value)); }
  void I32(std::int32_t value) { U32(static_cast<std::uint32_t>(value)); }
  /// IEEE-754 bit pattern, little-endian — doubles round-trip exactly.
  void F64(double value);
  /// u16 length + bytes (names, short strings).
  void ShortString(std::string_view value);
  /// u32 length + bytes (error messages, arbitrary text).
  void String(std::string_view value);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Little-endian reader over a payload. Throws CheckError on underrun or
/// malformed length prefixes — decode errors, not crashes.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  double F64();
  std::string ShortString();
  std::string String();

  bool AtEnd() const { return offset_ == bytes_.size(); }
  /// Throws CheckError unless every payload byte was consumed — a payload
  /// with trailing garbage is malformed, not ignorable.
  void ExpectEnd() const;

 private:
  std::string_view Take(std::size_t count);

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

/// One complete, validated frame.
struct WireFrame {
  WireType type = WireType::kError;
  std::string payload;
};

/// Frames `payload` with the standard header (magic, version, type, length,
/// CRC-32 of payload).
std::string EncodeFrame(WireType type, std::string_view payload);

/// Why a FrameDecoder rejected input. Mirrors the malformed-frame satellite:
/// each kind is accounted separately by NetServer.
enum class FrameError {
  kNone,
  kBadMagic,
  kBadVersion,
  kOversized,
  kBadCrc,
  /// EOF landed mid-frame (set by Finish(), not by Feed()).
  kTruncated,
};

const char* FrameErrorName(FrameError error);

/// Incremental frame decoder over a byte stream.
///
///   decoder.Feed(bytes_from_socket);
///   while (auto frame = decoder.Next()) { ...handle... }
///   if (decoder.error() != FrameError::kNone) { ...account, maybe close... }
///
/// kBadCrc is recoverable: the frame is dropped, error() latches the kind
/// for the caller to account (and reset with ClearError()), and decoding
/// continues at the next frame. kBadMagic / kBadVersion / kOversized poison
/// the decoder — the stream cannot be re-framed — and Next() returns
/// nothing forever after.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  /// Pops the next complete valid frame, or nullopt when more bytes are
  /// needed (or the decoder is poisoned / a recoverable error is pending).
  std::optional<WireFrame> Next();

  /// Signals EOF: any buffered partial frame becomes kTruncated.
  void Finish();

  FrameError error() const { return error_; }
  /// True when the stream is beyond recovery (close the connection).
  bool poisoned() const { return poisoned_; }
  /// Acknowledges a recoverable (kBadCrc) error so Next() resumes.
  void ClearError();

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  FrameError error_ = FrameError::kNone;
  bool poisoned_ = false;
};

}  // namespace hypertune
