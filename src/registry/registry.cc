#include "registry/registry.h"

#include "baselines/bohb.h"
#include "baselines/fabolas.h"
#include "baselines/lc_stop.h"
#include "baselines/median_rule.h"
#include "baselines/pbt.h"
#include "baselines/vizier.h"
#include "common/check.h"
#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/grid_search.h"
#include "core/quasirandom.h"
#include "core/hyperband.h"
#include "core/random_search.h"
#include "core/sha.h"

namespace hypertune {

std::vector<std::string> TunerNames() {
  return {"asha",   "asha_tpe",  "asha_halton", "sha",     "hyperband",
          "hyperband_by_bracket", "async_hyperband",
          "random", "halton",    "grid",        "bohb",    "pbt",
          "vizier", "vizier_capped",            "fabolas", "median_rule",
          "lc_stop"};
}

std::unique_ptr<Scheduler> MakeTunerByName(const std::string& name,
                                           const SyntheticBenchmark& benchmark,
                                           const TunerParams& params) {
  return MakeTuner(name,
                   {.space = &benchmark.space(),
                    .R = benchmark.R(),
                    .resumable = benchmark.spec().resumable,
                    .random_guess_loss = benchmark.spec().random_guess_loss},
                   params);
}

std::unique_ptr<Scheduler> MakeTuner(const std::string& name,
                                     const TunerEnv& env,
                                     const TunerParams& params) {
  HT_CHECK_MSG(env.space != nullptr, "TunerEnv needs a search space");
  const double R = env.R;
  const double r = R / params.r_divisor;
  const bool resume = params.resume && env.resumable;
  const SearchSpace& space = *env.space;

  if (name == "asha" || name == "asha_tpe" || name == "asha_halton") {
    AshaOptions options;
    options.r = r;
    options.R = R;
    options.eta = params.eta;
    options.s = params.s;
    options.seed = params.seed;
    options.resume_from_checkpoint = resume;
    if (name == "asha_tpe") return MakeAshaTpe(space, options, TpeOptions{});
    if (name == "asha_halton") {
      options.display_name = "ASHA+Halton";
      return std::make_unique<AshaScheduler>(
          std::make_shared<HaltonSampler>(space), options);
    }
    return std::make_unique<AshaScheduler>(MakeRandomSampler(space), options);
  }
  if (name == "sha") {
    ShaOptions options;
    options.n = params.n;
    options.r = r;
    options.R = R;
    options.eta = params.eta;
    options.s = params.s;
    options.seed = params.seed;
    options.resume_from_checkpoint = resume;
    options.incumbent_policy = IncumbentPolicy::kByRung;
    return std::make_unique<SyncShaScheduler>(MakeRandomSampler(space),
                                              options);
  }
  if (name == "hyperband" || name == "hyperband_by_bracket") {
    HyperbandOptions options;
    options.n0 = params.n;
    options.r = r;
    options.R = R;
    options.eta = params.eta;
    options.seed = params.seed;
    options.resume_from_checkpoint = resume;
    options.incumbent_policy = name == "hyperband"
                                   ? IncumbentPolicy::kByRung
                                   : IncumbentPolicy::kByBracket;
    return std::make_unique<HyperbandScheduler>(MakeRandomSampler(space),
                                                options);
  }
  if (name == "async_hyperband") {
    AsyncHyperbandOptions options;
    options.n0 = params.n;
    options.r = r;
    options.R = R;
    options.eta = params.eta;
    options.seed = params.seed;
    options.resume_from_checkpoint = resume;
    return std::make_unique<AsyncHyperbandScheduler>(MakeRandomSampler(space),
                                                     options);
  }
  if (name == "random" || name == "halton") {
    RandomSearchOptions options;
    options.R = R;
    options.seed = params.seed;
    auto sampler = name == "halton"
                       ? std::shared_ptr<ConfigSampler>(
                             std::make_shared<HaltonSampler>(space))
                       : MakeRandomSampler(space);
    return std::make_unique<RandomSearchScheduler>(std::move(sampler),
                                                   options);
  }
  if (name == "grid") {
    GridSearchOptions options;
    options.R = R;
    options.resolution = params.grid_resolution;
    return std::make_unique<GridSearchScheduler>(space, options);
  }
  if (name == "bohb") {
    BohbOptions options;
    options.sha.n = params.n;
    options.sha.r = r;
    options.sha.R = R;
    options.sha.eta = params.eta;
    options.sha.s = params.s;
    options.sha.seed = params.seed;
    options.sha.resume_from_checkpoint = resume;
    options.sha.incumbent_policy = IncumbentPolicy::kByRung;
    return MakeBohb(space, options);
  }
  if (name == "pbt") {
    PbtOptions options;
    options.population_size = params.population;
    options.step_resource = R / params.step_divisor;
    options.max_resource = R;
    options.sync_window = 2.0 * options.step_resource;
    options.seed = params.seed;
    options.random_guess_loss = env.random_guess_loss * 0.98;
    return std::make_unique<PbtScheduler>(space, options);
  }
  if (name == "vizier" || name == "vizier_capped") {
    VizierOptions options;
    options.R = R;
    options.seed = params.seed;
    if (name == "vizier_capped") options.loss_cap = 1000.0;  // Section 4.3
    return std::make_unique<VizierScheduler>(space, options);
  }
  if (name == "fabolas") {
    FabolasOptions options;
    options.R = R;
    options.seed = params.seed;
    return std::make_unique<FabolasScheduler>(space, options);
  }
  if (name == "lc_stop") {
    LcStopOptions options;
    options.R = R;
    options.step_resource = R / params.step_divisor;
    options.seed = params.seed;
    return std::make_unique<LcStopScheduler>(MakeRandomSampler(space),
                                             options);
  }
  if (name == "median_rule") {
    MedianRuleOptions options;
    options.R = R;
    options.step_resource = R / params.step_divisor;
    options.seed = params.seed;
    return std::make_unique<MedianRuleScheduler>(MakeRandomSampler(space),
                                                 options);
  }
  throw CheckError("unknown tuner '" + name + "'; known tuners: " + [] {
    std::string all;
    for (const auto& known : TunerNames()) {
      if (!all.empty()) all += ", ";
      all += known;
    }
    return all;
  }());
}

}  // namespace hypertune
