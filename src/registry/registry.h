// Name-based tuner registry: builds any of the library's schedulers from a
// string name plus a small common parameter set, sized against a benchmark.
// Used by the CLI and by downstream code that selects tuners from config
// files rather than code.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "surrogate/benchmark.h"

namespace hypertune {

struct TunerParams {
  /// Successive-halving reduction factor.
  double eta = 4;
  /// Minimum resource as a fraction of R: r = R / r_divisor.
  double r_divisor = 256;
  /// Bracket size for synchronous SHA/BOHB and n0 for Hyperband variants.
  std::size_t n = 256;
  /// Minimum early-stopping rate.
  int s = 0;
  /// PBT population size.
  std::size_t population = 25;
  /// PBT explore/exploit interval as R / step_divisor (also the median
  /// rule's step).
  double step_divisor = 30;
  /// Grid-search points per dimension.
  std::size_t grid_resolution = 4;
  std::uint64_t seed = 1;
  /// Resume from checkpoints where the benchmark supports it.
  bool resume = true;
};

/// Known names: asha, asha_tpe, sha, hyperband, hyperband_by_bracket,
/// async_hyperband, random, grid, bohb, pbt, vizier, vizier_capped,
/// fabolas, median_rule.
std::vector<std::string> TunerNames();

/// What tuner construction actually reads off a benchmark, supplied
/// directly — the sweep engine sizes tuners against TabularBenchmark (or
/// anything else with a space and an R) through this.
struct TunerEnv {
  /// Not owned; must outlive the tuner.
  const SearchSpace* space = nullptr;
  /// Maximum per-configuration resource.
  double R = 1;
  /// Whether the benchmark supports checkpoint resume (ANDed with
  /// TunerParams::resume).
  bool resumable = true;
  /// Loss of an untrained model (PBT's sync trigger; unused elsewhere).
  double random_guess_loss = 1.0;
};

/// Builds the named tuner sized for `env`; throws CheckError for unknown
/// names.
std::unique_ptr<Scheduler> MakeTuner(const std::string& name,
                                     const TunerEnv& env,
                                     const TunerParams& params);

/// Builds the named tuner sized for `benchmark`; throws CheckError for
/// unknown names.
std::unique_ptr<Scheduler> MakeTunerByName(const std::string& name,
                                           const SyntheticBenchmark& benchmark,
                                           const TunerParams& params);

}  // namespace hypertune
