#include "runtime/executor.h"

#include <thread>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

ThreadPoolExecutor::ThreadPoolExecutor(Scheduler& scheduler,
                                       TrainFunction train,
                                       ExecutorOptions options)
    : scheduler_(scheduler), train_(std::move(train)), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(train_ != nullptr);
  if (options_.telemetry != nullptr) {
    auto& metrics = options_.telemetry->metrics();
    jobs_completed_counter_ = &metrics.counter("executor.jobs_completed");
    jobs_lost_counter_ = &metrics.counter("executor.jobs_lost");
    queue_wait_histogram_ = &metrics.histogram(
        "executor.queue_wait_seconds", ExponentialBuckets(1e-4, 4, 12));
    job_seconds_histogram_ = &metrics.histogram(
        "executor.job_seconds", ExponentialBuckets(1e-4, 4, 12));
  }
}

bool ThreadPoolExecutor::StopRequested(
    const ExecutorResult& result,
    std::chrono::steady_clock::time_point start) const {
  if (shutting_down_) return true;
  if (options_.max_jobs > 0 && result.jobs_completed >= options_.max_jobs) {
    return true;
  }
  if (options_.wall_clock_budget.count() > 0 &&
      std::chrono::steady_clock::now() - start >= options_.wall_clock_budget) {
    return true;
  }
  return false;
}

void ThreadPoolExecutor::WorkerLoop(
    int worker_index, ExecutorResult& result,
    std::chrono::steady_clock::time_point start) {
  Telemetry* const telemetry = options_.telemetry;
  std::unique_lock<std::mutex> lock(mutex_);
  // When the worker last became free (for the queue-wait histogram).
  double free_since = telemetry != nullptr ? telemetry->Now() : 0;
  for (;;) {
    if (StopRequested(result, start) || scheduler_.Finished()) break;

    auto job = scheduler_.GetJob();
    if (!job) {
      if (active_jobs_ == 0) {
        // No work, and no running job could unlock any: the run is over
        // (e.g. a capped tuner drained, or a wedged synchronous bracket).
        break;
      }
      // Park until a completion (which may enable promotions) or shutdown;
      // the timed wait keeps wall-clock budgets responsive.
      ++idle_workers_;
      work_available_.wait_for(lock, std::chrono::milliseconds(50));
      --idle_workers_;
      continue;
    }

    ++active_jobs_;
    lock.unlock();

    double span_start = 0;
    if (telemetry != nullptr) {
      span_start = telemetry->Now();
      queue_wait_histogram_->Observe(span_start - free_since);
    }

    double loss = 0;
    bool completed = true;
    try {
      loss = train_(*job);
    } catch (...) {
      completed = false;  // worker crash / preemption -> lost job
    }

    if (telemetry != nullptr) {
      const double span_end = telemetry->Now();
      free_since = span_end;
      job_seconds_histogram_->Observe(span_end - span_start);
      (completed ? jobs_completed_counter_ : jobs_lost_counter_)->Increment();
      Json args = JsonObject{};
      args.Set("trial", Json(job->trial_id));
      args.Set("rung", Json(job->rung));
      args.Set("to_resource", Json(job->to_resource));
      if (completed) {
        args.Set("loss", Json(loss));
      } else {
        args.Set("lost", Json(true));
      }
      telemetry->SpanAt(span_start, span_end - span_start,
                        "t" + std::to_string(job->trial_id) + ":r" +
                            std::to_string(job->rung),
                        "worker", std::move(args), worker_index);
    }

    lock.lock();
    --active_jobs_;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (completed) {
      scheduler_.ReportResult(*job, loss);
      ++result.jobs_completed;
    } else {
      scheduler_.ReportLost(*job);
      ++result.jobs_lost;
    }
    result.records.push_back(
        {elapsed, job->trial_id, job->to_resource, loss, !completed});
    work_available_.notify_all();
  }
  // Wake parked siblings so they observe the stop condition too.
  shutting_down_ = true;
  work_available_.notify_all();
}

ExecutorResult ThreadPoolExecutor::Run() {
  ExecutorResult result;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers.emplace_back(
        [this, i, &result, start] { WorkerLoop(i, result, start); });
  }
  for (auto& worker : workers) worker.join();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace hypertune
