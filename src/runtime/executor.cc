#include "runtime/executor.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

ThreadPoolExecutor::ThreadPoolExecutor(Scheduler& scheduler,
                                       TrainFunction train,
                                       ExecutorOptions options)
    : scheduler_(scheduler), train_(std::move(train)), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.prefetch >= 0);
  HT_CHECK(train_ != nullptr);
  if (options_.telemetry != nullptr) {
    auto& metrics = options_.telemetry->metrics();
    jobs_completed_counter_ = &metrics.counter("executor.jobs_completed");
    jobs_lost_counter_ = &metrics.counter("executor.jobs_lost");
    queue_wait_histogram_ = &metrics.histogram(
        "executor.queue_wait_seconds", ExponentialBuckets(1e-4, 4, 12));
    job_seconds_histogram_ = &metrics.histogram(
        "executor.job_seconds", ExponentialBuckets(1e-4, 4, 12));
  }
}

bool ThreadPoolExecutor::StopRequested(
    std::chrono::steady_clock::time_point start) const {
  if (shutting_down_) return true;
  if (options_.max_jobs > 0 && completed_total_ >= options_.max_jobs) {
    return true;
  }
  if (options_.wall_clock_budget.count() > 0 &&
      std::chrono::steady_clock::now() - start >= options_.wall_clock_budget) {
    return true;
  }
  return false;
}

void ThreadPoolExecutor::RefillPrefetchLocked(
    std::chrono::steady_clock::time_point start) {
  if (options_.prefetch <= 0 || StopRequested(start)) return;
  while (static_cast<int>(prefetch_buffer_.size()) < options_.prefetch) {
    auto job = scheduler_.GetJob();
    if (!job) break;
    prefetch_buffer_.push_back(std::move(*job));
  }
}

void ThreadPoolExecutor::WorkerLoop(
    int worker_index, WorkerState& state,
    std::chrono::steady_clock::time_point start) {
  Telemetry* const telemetry = options_.telemetry;
  std::unique_lock<std::mutex> lock(mutex_);
  // When the worker last became free (for the queue-wait histogram).
  double free_since = telemetry != nullptr ? telemetry->Now() : 0;
  for (;;) {
    if (StopRequested(start) || scheduler_.Finished()) break;

    std::optional<Job> job;
    if (!prefetch_buffer_.empty()) {
      job = std::move(prefetch_buffer_.front());
      prefetch_buffer_.pop_front();
    } else {
      job = scheduler_.GetJob();
    }
    if (!job) {
      if (active_jobs_ == 0) {
        // No work, no buffered work, and no running job could unlock any:
        // the run is over (e.g. a capped tuner drained, or a wedged
        // synchronous bracket).
        break;
      }
      // Park until a completion (which may enable promotions) or shutdown;
      // the timed wait keeps wall-clock budgets responsive and backstops
      // completions that unlock more than one job.
      ++idle_workers_;
      work_available_.wait_for(lock, std::chrono::milliseconds(50));
      --idle_workers_;
      continue;
    }

    ++active_jobs_;
    // If buffered jobs remain, a parked sibling can start one right away.
    if (!prefetch_buffer_.empty() && idle_workers_ > 0) {
      work_available_.notify_one();
    }
    lock.unlock();

    double span_start = 0;
    if (telemetry != nullptr) {
      span_start = telemetry->Now();
      queue_wait_histogram_->Observe(span_start - free_since);
    }

    double loss = 0;
    bool completed = true;
    try {
      loss = train_(*job);
    } catch (...) {
      completed = false;  // worker crash / preemption -> lost job
    }

    if (telemetry != nullptr) {
      const double span_end = telemetry->Now();
      free_since = span_end;
      job_seconds_histogram_->Observe(span_end - span_start);
      (completed ? jobs_completed_counter_ : jobs_lost_counter_)->Increment();
      Json args = JsonObject{};
      args.Set("trial", Json(job->trial_id));
      args.Set("rung", Json(job->rung));
      args.Set("to_resource", Json(job->to_resource));
      if (completed) {
        args.Set("loss", Json(loss));
      } else {
        args.Set("lost", Json(true));
      }
      telemetry->SpanAt(span_start, span_end - span_start,
                        "t" + std::to_string(job->trial_id) + ":r" +
                            std::to_string(job->rung),
                        "worker", std::move(args), worker_index);
    }

    // Record-keeping stays out of the critical section: timestamp and
    // per-worker buffer push happen before the lock is re-taken.
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    state.records.push_back(
        {elapsed, job->trial_id, job->to_resource, loss, !completed});

    lock.lock();
    --active_jobs_;
    if (completed) {
      scheduler_.ReportResult(*job, loss);
      ++completed_total_;
      ++state.completed;
    } else {
      scheduler_.ReportLost(*job);
      ++state.lost;
    }
    // The lock is already hot: top the prefetch buffer back up so idle
    // workers dequeue without paying their own scheduler call.
    RefillPrefetchLocked(start);
    // A completion hands out at most one unlocked job (plus whatever the
    // refill buffered, chained above on dequeue): wake one parked worker,
    // not the whole pool.
    if (idle_workers_ > 0) work_available_.notify_one();
  }
  // Wake parked siblings so they observe the stop condition too.
  shutting_down_ = true;
  work_available_.notify_all();
}

ExecutorResult ThreadPoolExecutor::Run() {
  const auto start = std::chrono::steady_clock::now();
  std::vector<WorkerState> states(
      static_cast<std::size_t>(options_.num_workers));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    WorkerState& state = states[static_cast<std::size_t>(i)];
    workers.emplace_back(
        [this, i, &state, start] { WorkerLoop(i, state, start); });
  }
  for (auto& worker : workers) worker.join();

  ExecutorResult result;
  // Elapsed covers the run itself, not the post-join merge below.
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::size_t total_records = 0;
  for (const auto& state : states) total_records += state.records.size();
  result.records.reserve(total_records);
  for (auto& state : states) {
    result.jobs_completed += state.completed;
    result.jobs_lost += state.lost;
    std::move(state.records.begin(), state.records.end(),
              std::back_inserter(result.records));
  }
  // Per-worker buffers interleave in wall-clock time; restore the global
  // completion order the old single-vector bookkeeping produced.
  std::stable_sort(result.records.begin(), result.records.end(),
                   [](const ExecutionRecord& a, const ExecutionRecord& b) {
                     return a.elapsed_seconds < b.elapsed_seconds;
                   });
  // Jobs leased ahead but never trained go back to the scheduler as lost —
  // the same accounting a crashed worker's lease expiry produces.
  for (const auto& job : prefetch_buffer_) {
    scheduler_.ReportLost(job);
    ++result.jobs_lost;
  }
  prefetch_buffer_.clear();
  return result;
}

}  // namespace hypertune
