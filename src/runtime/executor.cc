#include "runtime/executor.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

ThreadPoolExecutor::ThreadPoolExecutor(Scheduler& scheduler,
                                       TrainFunction train,
                                       ExecutorOptions options)
    : scheduler_(scheduler),
      train_(std::move(train)),
      options_(std::move(options)),
      hazards_(options_.hazards, options_.hazard_seed),
      lifecycle_(scheduler,
                 {.telemetry = options_.telemetry,
                  // Spans are emitted by the workers outside the lock (see
                  // WorkerLoop); the lifecycle owns validation, records,
                  // counters, and the incumbent trajectory.
                  .emit_spans = false,
                  .span_profile = SpanProfile::kCompact,
                  .completed_counter = "executor.jobs_completed",
                  .lost_counter = "executor.jobs_lost",
                  .track_recommendations = true,
                  .emit_recommendation_events = false}) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.prefetch >= 0);
  HT_CHECK(options_.hazard_time_scale >= 0);
  HT_CHECK(train_ != nullptr);
  if (options_.telemetry != nullptr) {
    auto& metrics = options_.telemetry->metrics();
    queue_wait_histogram_ = &metrics.histogram(
        "executor.queue_wait_seconds", ExponentialBuckets(1e-4, 4, 12));
    job_seconds_histogram_ = &metrics.histogram(
        "executor.job_seconds", ExponentialBuckets(1e-4, 4, 12));
  }
}

bool ThreadPoolExecutor::StopRequested(
    std::chrono::steady_clock::time_point start) const {
  if (shutting_down_) return true;
  if (options_.max_jobs > 0 &&
      lifecycle_.completed_jobs() >= options_.max_jobs) {
    return true;
  }
  if (options_.wall_clock_budget.count() > 0 &&
      std::chrono::steady_clock::now() - start >= options_.wall_clock_budget) {
    return true;
  }
  return false;
}

std::optional<ThreadPoolExecutor::PendingJob>
ThreadPoolExecutor::AcquireLocked() {
  auto leased = lifecycle_.Acquire();
  if (!leased) return std::nullopt;
  PendingJob pending;
  pending.lease = *std::move(leased);
  if (hazards_.enabled()) {
    // Fates are drawn at lease time, under the lock: the draw order is the
    // lease order, so one worker + one seed reproduces the simulator's
    // per-job hazard sequence exactly.
    const double base =
        options_.hazard_duration
            ? options_.hazard_duration(pending.lease.job)
            : pending.lease.job.to_resource - pending.lease.job.from_resource;
    pending.plan = hazards_.Plan(base);
    pending.plan_base = base;
  }
  return pending;
}

void ThreadPoolExecutor::RefillPrefetchLocked(
    std::chrono::steady_clock::time_point start) {
  if (options_.prefetch <= 0 || StopRequested(start)) return;
  while (static_cast<int>(prefetch_buffer_.size()) < options_.prefetch) {
    auto pending = AcquireLocked();
    if (!pending) break;
    prefetch_buffer_.push_back(*std::move(pending));
  }
}

void ThreadPoolExecutor::WorkerLoop(
    int worker_index, std::chrono::steady_clock::time_point start) {
  Telemetry* const telemetry = options_.telemetry;
  const auto elapsed = [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Sleeps a virtual hazard duration scaled into real seconds (no-op at the
  // default scale of 0): how straggler inflation and dropped jobs' partial
  // runtimes become observable on this backend.
  const auto inject_delay = [this](double virtual_units) {
    if (options_.hazard_time_scale <= 0 || virtual_units <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        virtual_units * options_.hazard_time_scale));
  };

  std::unique_lock<std::mutex> lock(mutex_);
  // When the worker last became free (for queue-wait accounting): measured
  // on the run clock for records and on the sink's clock for the histogram.
  double free_since = elapsed();
  double span_free_since = telemetry != nullptr ? telemetry->Now() : 0;
  for (;;) {
    if (StopRequested(start) || scheduler_.Finished()) break;

    std::optional<PendingJob> pending;
    if (!prefetch_buffer_.empty()) {
      pending = std::move(prefetch_buffer_.front());
      prefetch_buffer_.pop_front();
    } else {
      pending = AcquireLocked();
    }
    if (!pending) {
      if (active_jobs_ == 0) {
        // No work, no buffered work, and no running job could unlock any:
        // the run is over (e.g. a capped tuner drained, or a wedged
        // synchronous bracket).
        break;
      }
      // Park until a completion (which may enable promotions) or shutdown;
      // the timed wait keeps wall-clock budgets responsive and backstops
      // completions that unlock more than one job.
      ++idle_workers_;
      work_available_.wait_for(lock, std::chrono::milliseconds(50));
      --idle_workers_;
      continue;
    }

    ++active_jobs_;
    // If buffered jobs remain, a parked sibling can start one right away.
    if (!prefetch_buffer_.empty() && idle_workers_ > 0) {
      work_available_.notify_one();
    }
    lock.unlock();

    const double job_start = elapsed();
    const double queue_wait = job_start - free_since;
    double span_start = 0;
    if (telemetry != nullptr) {
      span_start = telemetry->Now();
      queue_wait_histogram_->Observe(span_start - span_free_since);
    }

    const Job& job = pending->lease.job;
    double loss = 0;
    bool completed = true;
    if (pending->plan.dropped()) {
      // The hazard preempted this worker partway through: the job consumed
      // (scaled) time but its training never lands.
      completed = false;
      inject_delay(*pending->plan.drop_after);
    } else {
      try {
        loss = train_(job);
      } catch (...) {
        completed = false;  // worker crash / preemption -> lost job
      }
      if (completed) {
        inject_delay(pending->plan.duration - pending->plan_base);
      }
    }

    // Telemetry JSON stays out of the critical section: EmitJobSpan touches
    // only the thread-safe sink, never the lifecycle's state.
    if (telemetry != nullptr) {
      const double span_end = telemetry->Now();
      span_free_since = span_end;
      job_seconds_histogram_->Observe(span_end - span_start);
      EmitJobSpan(telemetry, SpanProfile::kCompact, job, !completed, loss,
                  RunTiming{span_start, span_end, 0, worker_index});
    }
    const double job_end = elapsed();
    free_since = job_end;

    lock.lock();
    --active_jobs_;
    const RunTiming timing{job_start, job_end, queue_wait, worker_index};
    if (completed) {
      lifecycle_.Complete(pending->lease, loss, timing);
    } else {
      lifecycle_.Lose(pending->lease, timing);
    }
    // The lock is already hot: top the prefetch buffer back up so idle
    // workers dequeue without paying their own scheduler call.
    RefillPrefetchLocked(start);
    // A completion hands out at most one unlocked job (plus whatever the
    // refill buffered, chained above on dequeue): wake one parked worker,
    // not the whole pool.
    if (idle_workers_ > 0) work_available_.notify_one();
  }
  // Wake parked siblings so they observe the stop condition too.
  shutting_down_ = true;
  work_available_.notify_all();
}

ExecutorResult ThreadPoolExecutor::Run() {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers.emplace_back([this, i, start] { WorkerLoop(i, start); });
  }
  for (auto& worker : workers) worker.join();

  ExecutorResult result;
  // Elapsed covers the run itself, not the post-join bookkeeping below.
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Jobs leased ahead but never trained are resolved as lost through the
  // same lifecycle guard — the accounting a crashed worker's lease expiry
  // produces — so nothing is left pending.
  for (auto& pending : prefetch_buffer_) {
    lifecycle_.Lose(pending.lease, {result.elapsed_seconds,
                                    result.elapsed_seconds, 0, -1});
  }
  prefetch_buffer_.clear();
  result.jobs_completed = lifecycle_.completed_jobs();
  result.jobs_lost = lifecycle_.lost_jobs();
  result.records = lifecycle_.TakeRecords();
  result.recommendations = lifecycle_.TakeRecommendations();
  // Resolutions land in lock-acquisition order, which can interleave a
  // hair differently from the end timestamps stamped outside the lock;
  // restore global completion order.
  std::stable_sort(result.records.begin(), result.records.end(),
                   [](const RunRecord& a, const RunRecord& b) {
                     return a.end_time < b.end_time;
                   });
  return result;
}

}  // namespace hypertune
