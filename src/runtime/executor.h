// Real (non-simulated) execution: a pool of OS worker threads pulling jobs
// from a Scheduler and running a user-supplied training function.
//
// This is the production half of the system the paper describes — their
// implementation drove 25-500 actual workers. The tuners are agnostic to
// the executor: the same Scheduler object can be driven by the
// deterministic SimulationDriver (for experiments) or by this pool (for
// real tuning), because both speak the pull-based GetJob/Report protocol.
//
// Concurrency contract: Scheduler implementations are NOT thread-safe; the
// executor serializes all GetJob/Report calls behind one mutex and runs the
// (expensive) training function outside it, so scheduler work never blocks
// training and vice versa. The critical section is kept minimal: records
// accumulate in per-worker buffers merged (and time-sorted) after the
// threads join, telemetry JSON is built outside the lock, and a completion
// wakes exactly one parked worker (there is at most one new job to hand
// out per completion; a 50 ms timed wait backstops promotion bursts).
// Workers with no available job park on a condition variable.
//
// With `prefetch` > 0 the executor keeps up to that many jobs pulled ahead
// in a shared buffer, refilled while the completion lock is already held —
// a free worker then dequeues without paying a scheduler call. Prefetching
// changes *when* jobs are drawn from the scheduler (they are leased
// earlier), so it is off by default; runs that must be decision-comparable
// to the simulator leave it off. Jobs still buffered at shutdown are
// returned to the scheduler as lost (they were leased but never trained)
// and counted in ExecutorResult::jobs_lost.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "core/scheduler.h"

namespace hypertune {

class Telemetry;
class Counter;
class Histogram;

/// Trains `job.config` from `job.from_resource` to `job.to_resource` and
/// returns the validation loss. Throwing (any exception) reports the job as
/// lost — the worker equivalent of a crashed or preempted task.
using TrainFunction = std::function<double(const Job&)>;

struct ExecutorOptions {
  int num_workers = 4;
  /// Wall-clock budget; zero means unlimited (then max_jobs or
  /// Scheduler::Finished must terminate the run).
  std::chrono::milliseconds wall_clock_budget{0};
  /// Stop after this many completed jobs (0 = unlimited).
  std::size_t max_jobs = 0;
  /// Jobs to keep pulled ahead of demand in a shared buffer (0 = fetch on
  /// demand). See the prefetch paragraph in the file comment.
  int prefetch = 0;
  /// Optional observability sink (not owned; must outlive the executor).
  /// When set, each worker emits a per-job span on its own trace track,
  /// counts completions/losses, and feeds two histograms:
  /// "executor.queue_wait_seconds" (time a free worker waited for its next
  /// job, promotion stalls included) and "executor.job_seconds" (training
  /// durations). Null — the default — makes instrumentation a no-op.
  Telemetry* telemetry = nullptr;
};

/// One completed (or lost) job with a wall-clock timestamp.
struct ExecutionRecord {
  double elapsed_seconds = 0;
  TrialId trial_id = -1;
  Resource to_resource = 0;
  double loss = 0;
  bool lost = false;
};

struct ExecutorResult {
  std::size_t jobs_completed = 0;
  std::size_t jobs_lost = 0;
  double elapsed_seconds = 0;
  /// Merged from the per-worker buffers, sorted by elapsed_seconds.
  std::vector<ExecutionRecord> records;
};

class ThreadPoolExecutor {
 public:
  ThreadPoolExecutor(Scheduler& scheduler, TrainFunction train,
                     ExecutorOptions options);

  /// Runs worker threads until a stop condition holds; joins them before
  /// returning. Safe to call once per executor instance.
  ExecutorResult Run();

 private:
  /// Per-worker tallies and records; owned by one thread while running,
  /// merged into the ExecutorResult after the join (no sharing, no lock).
  struct WorkerState {
    std::vector<ExecutionRecord> records;
    std::size_t completed = 0;
    std::size_t lost = 0;
  };

  void WorkerLoop(int worker_index, WorkerState& state,
                  std::chrono::steady_clock::time_point start);
  bool StopRequested(std::chrono::steady_clock::time_point start) const;
  /// Tops the prefetch buffer back up to options_.prefetch. Caller holds
  /// mutex_ (the completion path calls it while the lock is already hot).
  void RefillPrefetchLocked(std::chrono::steady_clock::time_point start);

  Scheduler& scheduler_;
  TrainFunction train_;
  ExecutorOptions options_;

  // Instruments resolved once at construction (null when telemetry is off)
  // so the worker hot path never takes the registry's registration lock.
  Counter* jobs_completed_counter_ = nullptr;
  Counter* jobs_lost_counter_ = nullptr;
  Histogram* queue_wait_histogram_ = nullptr;
  Histogram* job_seconds_histogram_ = nullptr;

  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
  int idle_workers_ = 0;
  int active_jobs_ = 0;
  /// Jobs pulled ahead of demand (bounded by options_.prefetch).
  std::deque<Job> prefetch_buffer_;
  /// Pool-wide completion count for the max_jobs stop condition (the
  /// per-worker tallies are not visible across threads until the join).
  std::size_t completed_total_ = 0;
};

}  // namespace hypertune
