// Real (non-simulated) execution: a pool of OS worker threads pulling jobs
// from a Scheduler and running a user-supplied training function.
//
// This is the production half of the system the paper describes — their
// implementation drove 25-500 actual workers. The tuners are agnostic to
// the executor: the same Scheduler object can be driven by the
// deterministic SimulationDriver (for experiments) or by this pool (for
// real tuning), because both adapt the same trial-lifecycle core
// (src/lifecycle): TrialLifecycle owns leasing, exactly-once outcome
// validation, and RunRecord bookkeeping; this executor contributes threads,
// the wall clock, and the low-contention serialization around the core.
//
// Concurrency contract: Scheduler and TrialLifecycle are NOT thread-safe;
// the executor serializes all Acquire/Complete/Lose calls behind one mutex
// and runs the (expensive) training function outside it, so scheduler work
// never blocks training and vice versa. The critical section is kept
// minimal: training, telemetry JSON (EmitJobSpan is lock-free against the
// lifecycle), and timing run unlocked; wakeups are targeted notify_one
// chained through an idle count. Workers with no available job park on a
// condition variable.
//
// With `prefetch` > 0 the executor keeps up to that many leased jobs pulled
// ahead in a shared buffer, refilled while the completion lock is already
// held — a free worker then dequeues without paying a scheduler call.
// Prefetching changes *when* jobs are leased, so it is off by default; runs
// that must be decision-comparable to the simulator leave it off. Jobs
// still buffered at shutdown are resolved through TrialLifecycle::Lose
// (they were leased but never trained) and counted in
// ExecutorResult::jobs_lost.
//
// Hazard injection (paper §4.2 / Appendix A.1) works on this real backend
// too: when `hazards` is set, each leased job draws a straggler/drop fate
// from a seeded HazardInjector at acquisition time (under the lock, so the
// draw order is the lease order — with one worker it matches the simulator
// exactly). A dropped job is treated as preempted: the training function
// never runs and the job is reported lost. `hazard_time_scale` optionally
// converts the plan's virtual durations into real injected delays so
// stragglers are observable in wall-clock terms.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "core/scheduler.h"
#include "lifecycle/hazards.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/run_record.h"

namespace hypertune {

class Telemetry;
class Counter;
class Histogram;

/// Trains `job.config` from `job.from_resource` to `job.to_resource` and
/// returns the validation loss. Throwing (any exception) reports the job as
/// lost — the worker equivalent of a crashed or preempted task.
using TrainFunction = std::function<double(const Job&)>;

struct ExecutorOptions {
  int num_workers = 4;
  /// Wall-clock budget; zero means unlimited (then max_jobs or
  /// Scheduler::Finished must terminate the run).
  std::chrono::milliseconds wall_clock_budget{0};
  /// Stop after this many completed jobs (0 = unlimited).
  std::size_t max_jobs = 0;
  /// Jobs to keep pulled ahead of demand in a shared buffer (0 = fetch on
  /// demand). See the prefetch paragraph in the file comment.
  int prefetch = 0;
  /// Straggler/drop injection for this real backend (both disabled by
  /// default). See the hazard paragraph in the file comment.
  HazardOptions hazards;
  /// Seed for the hazard stream (independent of the scheduler's stream);
  /// matches DriverOptions::seed's default so the same seed reproduces the
  /// simulator's fates.
  std::uint64_t hazard_seed = 99;
  /// Base (virtual) duration fed to the hazard model for each job; null
  /// uses the job's resource increment (to - from), the simulator's
  /// convention for environments whose Duration is the resource delta.
  std::function<double(const Job&)> hazard_duration;
  /// Seconds of real injected delay per virtual hazard time unit. Zero (the
  /// default) injects only the accounting (drops); > 0 also sleeps the
  /// straggler inflation and the dropped jobs' partial runtimes.
  double hazard_time_scale = 0;
  /// Optional observability sink (not owned; must outlive the executor).
  /// When set, each worker emits a per-job span on its own trace track,
  /// counts completions/losses, and feeds two histograms:
  /// "executor.queue_wait_seconds" (time a free worker waited for its next
  /// job, promotion stalls included) and "executor.job_seconds" (training
  /// durations). Null — the default — makes instrumentation a no-op.
  Telemetry* telemetry = nullptr;
};

struct ExecutorResult {
  std::size_t jobs_completed = 0;
  std::size_t jobs_lost = 0;
  double elapsed_seconds = 0;
  /// One RunRecord per resolved lease (times are seconds since run start),
  /// sorted by end_time.
  std::vector<RunRecord> records;
  /// Incumbent trajectory (recommendation changes), timestamped in seconds
  /// since run start.
  std::vector<RecommendationPoint> recommendations;
};

class ThreadPoolExecutor {
 public:
  ThreadPoolExecutor(Scheduler& scheduler, TrainFunction train,
                     ExecutorOptions options);

  /// Runs worker threads until a stop condition holds; joins them before
  /// returning. Safe to call once per executor instance.
  ExecutorResult Run();

 private:
  /// A leased job plus its hazard fate (a no-op plan when hazards are off).
  struct PendingJob {
    LeasedJob lease;
    HazardPlan plan;
    /// Straggler-free duration the plan was drawn from (plan.duration -
    /// plan_base is the inflation a straggler adds).
    double plan_base = 0;
  };

  void WorkerLoop(int worker_index,
                  std::chrono::steady_clock::time_point start);
  bool StopRequested(std::chrono::steady_clock::time_point start) const;
  /// Leases the next job and draws its hazard fate. Caller holds mutex_.
  std::optional<PendingJob> AcquireLocked();
  /// Tops the prefetch buffer back up to options_.prefetch. Caller holds
  /// mutex_ (the completion path calls it while the lock is already hot).
  void RefillPrefetchLocked(std::chrono::steady_clock::time_point start);

  Scheduler& scheduler_;
  TrainFunction train_;
  ExecutorOptions options_;
  HazardInjector hazards_;

  // Instruments resolved once at construction (null when telemetry is off)
  // so the worker hot path never takes the registry's registration lock.
  Counter* jobs_completed_counter_ = nullptr;
  Counter* jobs_lost_counter_ = nullptr;
  Histogram* queue_wait_histogram_ = nullptr;
  Histogram* job_seconds_histogram_ = nullptr;

  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
  int idle_workers_ = 0;
  int active_jobs_ = 0;
  /// Jobs leased ahead of demand (bounded by options_.prefetch).
  std::deque<PendingJob> prefetch_buffer_;
  /// The shared lease→run→outcome core; guarded by mutex_ (same contract
  /// as the scheduler it wraps).
  TrialLifecycle lifecycle_;
};

}  // namespace hypertune
