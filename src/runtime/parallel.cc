#include "runtime/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace hypertune {

void ParallelFor(std::size_t n, int num_threads,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads =
      std::min<std::size_t>(std::max(num_threads, 1), n);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  // Contiguous chunks, remainder spread over the first chunks.
  const std::size_t base = n / threads;
  const std::size_t remainder = n % threads;
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  std::size_t begin = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t size = base + (t < remainder ? 1 : 0);
    const std::size_t end = begin + size;
    if (t + 1 == threads) {
      fn(begin, end);  // last chunk on the calling thread
    } else {
      workers.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    begin = end;
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace hypertune
