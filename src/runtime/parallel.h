// ParallelFor — the runtime's small fork-join helper for data-parallel
// stages (acquisition scoring over candidate batches, batched prediction).
//
// Unlike ThreadPoolExecutor, which owns long-lived workers driving a
// Scheduler, this spawns short-lived threads for one statically-chunked
// loop and joins them before returning. Chunking is deterministic: the
// index range is split into `num_threads` contiguous chunks, so any
// computation whose per-index result does not depend on the chunking
// produces identical output for every thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace hypertune {

/// Invokes fn(begin, end) over disjoint contiguous subranges covering
/// [0, n). With num_threads <= 1 (or a range too small to split) the single
/// call fn(0, n) runs inline on the caller's thread — the deterministic
/// default; tuners expose this as their `num_threads` option.
void ParallelFor(std::size_t n, int num_threads,
                 const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace hypertune
