#include "searchspace/config_json.h"

#include "common/check.h"

namespace hypertune {

Json ToJson(const Configuration& config) {
  JsonObject object;
  for (const auto& [name, value] : config) {
    Json converted = std::visit([](const auto& v) { return Json(v); }, value);
    object.emplace_back(name, std::move(converted));
  }
  return Json(std::move(object));
}

Configuration ConfigurationFromJson(const Json& json) {
  Configuration config;
  for (const auto& [name, value] : json.AsObject()) {
    if (value.IsString()) {
      config.Set(name, ParamValue{value.AsString()});
    } else if (value.IsInt()) {
      config.Set(name, ParamValue{value.AsInt()});
    } else if (value.IsNumber()) {
      config.Set(name, ParamValue{value.AsDouble()});
    } else {
      throw CheckError("configuration value for '" + name +
                       "' is not a string or number");
    }
  }
  return config;
}

}  // namespace hypertune
