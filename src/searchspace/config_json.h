// JSON (de)serialization of configurations; value types (double / int /
// string) round-trip exactly.
#pragma once

#include "common/json.h"
#include "searchspace/configuration.h"

namespace hypertune {

Json ToJson(const Configuration& config);
Configuration ConfigurationFromJson(const Json& json);

}  // namespace hypertune
