#include "searchspace/configuration.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace hypertune {

void Configuration::Set(std::string name, ParamValue value) {
  for (auto& [existing, val] : items_) {
    if (existing == name) {
      val = std::move(value);
      return;
    }
  }
  items_.emplace_back(std::move(name), std::move(value));
}

bool Configuration::Has(std::string_view name) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

const ParamValue& Configuration::Get(std::string_view name) const {
  for (const auto& [key, value] : items_) {
    if (key == name) return value;
  }
  throw CheckError("Configuration has no parameter named '" +
                   std::string(name) + "'");
}

double Configuration::GetDouble(std::string_view name) const {
  return AsDouble(Get(name));
}

std::int64_t Configuration::GetInt(std::string_view name) const {
  const ParamValue& v = Get(name);
  const auto* i = std::get_if<std::int64_t>(&v);
  HT_CHECK_MSG(i != nullptr, "parameter '" << name << "' is not an integer");
  return *i;
}

const std::string& Configuration::GetString(std::string_view name) const {
  const ParamValue& v = Get(name);
  const auto* s = std::get_if<std::string>(&v);
  HT_CHECK_MSG(s != nullptr, "parameter '" << name << "' is not a string");
  return *s;
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, value] : items_) {
    if (!first) os << ", ";
    first = false;
    os << key << "=" << hypertune::ToString(value);
  }
  return os.str();
}

}  // namespace hypertune
