#include "searchspace/configuration.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace hypertune {

void Configuration::FailMissing(std::string_view name) {
  throw CheckError("Configuration has no parameter named '" +
                   std::string(name) + "'");
}

void Configuration::FailNotInt(std::string_view name) {
  HT_CHECK_MSG(false, "parameter '" << name << "' is not an integer");
  std::abort();  // unreachable: the check above always throws
}

bool Configuration::Has(std::string_view name) const {
  return std::any_of(items_.begin(), items_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

double Configuration::GetDouble(std::string_view name) const {
  return AsDouble(Get(name));
}

const std::string& Configuration::GetString(std::string_view name) const {
  const ParamValue& v = Get(name);
  const auto* s = std::get_if<std::string>(&v);
  HT_CHECK_MSG(s != nullptr, "parameter '" << name << "' is not a string");
  return *s;
}

std::string Configuration::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, value] : items_) {
    if (!first) os << ", ";
    first = false;
    os << key << "=" << hypertune::ToString(value);
  }
  return os.str();
}

}  // namespace hypertune
