// A Configuration is one concrete hyperparameter setting: an ordered list of
// (name, value) pairs, usually produced by SearchSpace::Sample.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "searchspace/domain.h"

namespace hypertune {

/// Ordered name→value mapping. Order matches insertion (and therefore the
/// declaring SearchSpace), which keeps unit-vector encodings stable.
class Configuration {
 public:
  Configuration() = default;

  /// Inserts or overwrites `name`.
  void Set(std::string name, ParamValue value);

  bool Has(std::string_view name) const;

  /// Throws CheckError when `name` is absent.
  const ParamValue& Get(std::string_view name) const;

  /// Typed accessors; throw on missing name or wrong type. GetDouble accepts
  /// integer-valued parameters and widens them.
  double GetDouble(std::string_view name) const;
  std::int64_t GetInt(std::string_view name) const;
  const std::string& GetString(std::string_view name) const;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const std::pair<std::string, ParamValue>& at(std::size_t i) const {
    return items_.at(i);
  }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  /// "lr=0.01, layers=3" style rendering for logs and reports.
  std::string ToString() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  std::vector<std::pair<std::string, ParamValue>> items_;
};

}  // namespace hypertune
