// A Configuration is one concrete hyperparameter setting: an ordered list of
// (name, value) pairs, usually produced by SearchSpace::Sample.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "searchspace/domain.h"

namespace hypertune {

/// Ordered name→value mapping. Order matches insertion (and therefore the
/// declaring SearchSpace), which keeps unit-vector encodings stable.
class Configuration {
 public:
  Configuration() = default;

  /// Inserts or overwrites `name`. Inline: Set and the typed getters sit on
  /// the simulation fast path (one Set per hand-out, one lookup per
  /// Loss/Duration call), so a cross-TU call here is measurable.
  void Set(std::string name, ParamValue value) {
    for (auto& [existing, val] : items_) {
      if (existing == name) {
        val = std::move(value);
        return;
      }
    }
    items_.emplace_back(std::move(name), std::move(value));
  }

  bool Has(std::string_view name) const;

  /// Throws CheckError when `name` is absent.
  const ParamValue& Get(std::string_view name) const {
    for (const auto& [key, value] : items_) {
      if (key == name) return value;
    }
    FailMissing(name);
  }

  /// Typed accessors; throw on missing name or wrong type. GetDouble accepts
  /// integer-valued parameters and widens them.
  double GetDouble(std::string_view name) const;
  std::int64_t GetInt(std::string_view name) const {
    const ParamValue& v = Get(name);
    const auto* i = std::get_if<std::int64_t>(&v);
    if (i == nullptr) [[unlikely]] FailNotInt(name);
    return *i;
  }
  const std::string& GetString(std::string_view name) const;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const std::pair<std::string, ParamValue>& at(std::size_t i) const {
    return items_.at(i);
  }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  /// "lr=0.01, layers=3" style rendering for logs and reports.
  std::string ToString() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  // Cold halves of the inline accessors: message assembly and the throw
  // stay out of callers' instruction streams.
  [[noreturn]] static void FailMissing(std::string_view name);
  [[noreturn]] static void FailNotInt(std::string_view name);

  std::vector<std::pair<std::string, ParamValue>> items_;
};

}  // namespace hypertune
