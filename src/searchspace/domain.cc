#include "searchspace/domain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace hypertune {

std::string ToString(const ParamValue& value) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return v;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(v);
        } else {
          std::ostringstream os;
          os << v;
          return os.str();
        }
      },
      value);
}

double AsDouble(const ParamValue& value) {
  if (const auto* d = std::get_if<double>(&value)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value))
    return static_cast<double>(*i);
  throw CheckError("AsDouble on categorical string value: " +
                   std::get<std::string>(value));
}

Domain Domain::Continuous(double lo, double hi, Scale scale) {
  HT_CHECK_MSG(lo <= hi, "continuous domain inverted: [" << lo << ", " << hi << "]");
  if (scale == Scale::kLog) HT_CHECK_MSG(lo > 0.0, "log scale requires lo > 0");
  Domain d;
  d.kind_ = ParamKind::kContinuous;
  d.scale_ = scale;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

Domain Domain::Integer(std::int64_t lo, std::int64_t hi, Scale scale) {
  HT_CHECK_MSG(lo <= hi, "integer domain inverted: [" << lo << ", " << hi << "]");
  if (scale == Scale::kLog) HT_CHECK_MSG(lo > 0, "log scale requires lo > 0");
  Domain d;
  d.kind_ = ParamKind::kInteger;
  d.scale_ = scale;
  d.lo_ = static_cast<double>(lo);
  d.hi_ = static_cast<double>(hi);
  return d;
}

Domain Domain::Choice(std::vector<ParamValue> options, bool ordered) {
  HT_CHECK_MSG(!options.empty(), "choice domain needs at least one option");
  Domain d;
  d.kind_ = ParamKind::kChoice;
  d.ordered_ = ordered;
  d.options_ = std::move(options);
  return d;
}

double Domain::lo() const {
  HT_CHECK(kind_ != ParamKind::kChoice);
  return lo_;
}

double Domain::hi() const {
  HT_CHECK(kind_ != ParamKind::kChoice);
  return hi_;
}

const std::vector<ParamValue>& Domain::options() const {
  HT_CHECK(kind_ == ParamKind::kChoice);
  return options_;
}

std::size_t Domain::Cardinality() const {
  switch (kind_) {
    case ParamKind::kContinuous:
      return 0;
    case ParamKind::kInteger:
      return static_cast<std::size_t>(hi_ - lo_) + 1;
    case ParamKind::kChoice:
      return options_.size();
  }
  return 0;
}

namespace {

std::int64_t RoundClampInt(double x, double lo, double hi) {
  const double clamped = std::clamp(std::round(x), lo, hi);
  return static_cast<std::int64_t>(clamped);
}

}  // namespace

ParamValue Domain::Sample(Rng& rng) const {
  switch (kind_) {
    case ParamKind::kContinuous:
      return scale_ == Scale::kLog ? rng.LogUniform(lo_, hi_)
                                   : rng.Uniform(lo_, hi_);
    case ParamKind::kInteger: {
      if (scale_ == Scale::kLog) {
        return RoundClampInt(rng.LogUniform(lo_, hi_), lo_, hi_);
      }
      return rng.UniformInt(static_cast<std::int64_t>(lo_),
                            static_cast<std::int64_t>(hi_));
    }
    case ParamKind::kChoice:
      return options_[rng.Index(options_.size())];
  }
  throw CheckError("unreachable domain kind");
}

bool Domain::Contains(const ParamValue& value) const {
  switch (kind_) {
    case ParamKind::kContinuous: {
      const auto* d = std::get_if<double>(&value);
      return d != nullptr && *d >= lo_ && *d <= hi_;
    }
    case ParamKind::kInteger: {
      const auto* i = std::get_if<std::int64_t>(&value);
      return i != nullptr && static_cast<double>(*i) >= lo_ &&
             static_cast<double>(*i) <= hi_;
    }
    case ParamKind::kChoice:
      return std::find(options_.begin(), options_.end(), value) !=
             options_.end();
  }
  return false;
}

double Domain::ToUnit(const ParamValue& value) const {
  HT_CHECK_MSG(Contains(value), "value " << ToString(value) << " not in domain");
  switch (kind_) {
    case ParamKind::kContinuous:
    case ParamKind::kInteger: {
      const double x = AsDouble(value);
      if (hi_ == lo_) return 0.5;
      if (scale_ == Scale::kLog) {
        return (std::log(x) - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
      }
      return (x - lo_) / (hi_ - lo_);
    }
    case ParamKind::kChoice: {
      const auto it = std::find(options_.begin(), options_.end(), value);
      const auto idx = static_cast<double>(it - options_.begin());
      return (idx + 0.5) / static_cast<double>(options_.size());
    }
  }
  throw CheckError("unreachable domain kind");
}

ParamValue Domain::FromUnit(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (kind_) {
    case ParamKind::kContinuous: {
      double x;
      if (scale_ == Scale::kLog) {
        // exp(log(lo)) can land a ULP outside [lo, hi]; clamp to stay
        // strictly in-domain.
        x = std::exp(std::log(lo_) + u * (std::log(hi_) - std::log(lo_)));
      } else {
        x = lo_ + u * (hi_ - lo_);
      }
      return std::clamp(x, lo_, hi_);
    }
    case ParamKind::kInteger: {
      double x;
      if (scale_ == Scale::kLog) {
        x = std::exp(std::log(lo_) + u * (std::log(hi_) - std::log(lo_)));
      } else {
        x = lo_ + u * (hi_ - lo_);
      }
      return RoundClampInt(x, lo_, hi_);
    }
    case ParamKind::kChoice: {
      const auto n = static_cast<double>(options_.size());
      auto idx = static_cast<std::size_t>(std::min(u * n, n - 1.0));
      return options_[idx];
    }
  }
  throw CheckError("unreachable domain kind");
}

ParamValue Domain::Perturb(const ParamValue& value, double factor,
                           Rng& rng) const {
  HT_CHECK_MSG(Contains(value), "value " << ToString(value) << " not in domain");
  HT_CHECK(factor > 0.0);
  switch (kind_) {
    case ParamKind::kContinuous: {
      const double x = std::get<double>(value) * factor;
      return std::clamp(x, lo_, hi_);
    }
    case ParamKind::kInteger: {
      const double x = static_cast<double>(std::get<std::int64_t>(value)) * factor;
      std::int64_t next = RoundClampInt(x, lo_, hi_);
      // Guarantee movement on small ranges where rounding can be a no-op.
      if (next == std::get<std::int64_t>(value)) {
        const std::int64_t step = factor > 1.0 ? 1 : -1;
        next = RoundClampInt(static_cast<double>(next + step), lo_, hi_);
      }
      return next;
    }
    case ParamKind::kChoice: {
      if (!ordered_) return options_[rng.Index(options_.size())];
      const auto it = std::find(options_.begin(), options_.end(), value);
      auto idx = static_cast<std::int64_t>(it - options_.begin());
      const std::int64_t step = factor > 1.0 ? 1 : -1;
      idx = std::clamp<std::int64_t>(idx + step, 0,
                                     static_cast<std::int64_t>(options_.size()) - 1);
      return options_[static_cast<std::size_t>(idx)];
    }
  }
  throw CheckError("unreachable domain kind");
}

}  // namespace hypertune
