// Parameter domains: the typed ranges a single hyperparameter can take.
//
// The paper's search spaces (Tables 1-3 and the cuda-convnet space of
// Li et al. 2017) use four domain shapes, all supported here:
//   * continuous, linear or log scale          (e.g. dropout, learning rate)
//   * integer, linear or log scale             (e.g. # hidden nodes)
//   * choice over an explicit list of values   (e.g. batch size in {64,...})
// Choices may be declared `ordered`; PBT's explore step perturbs ordered
// choices to an adjacent option rather than resampling (Appendix A.3).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"

namespace hypertune {

/// A single hyperparameter value. Doubles for continuous draws, int64 for
/// integer domains, strings for symbolic categorical options.
using ParamValue = std::variant<double, std::int64_t, std::string>;

/// Human-readable rendering ("0.01", "128", "relu").
std::string ToString(const ParamValue& value);

/// Numeric view of a value; categorical strings are not numeric and throw.
double AsDouble(const ParamValue& value);

enum class ParamKind { kContinuous, kInteger, kChoice };

enum class Scale { kLinear, kLog };

/// One hyperparameter's domain. Immutable after construction.
class Domain {
 public:
  /// Continuous range [lo, hi]; `scale == kLog` requires lo > 0.
  static Domain Continuous(double lo, double hi, Scale scale = Scale::kLinear);

  /// Integer range [lo, hi] inclusive; log scale samples uniformly in
  /// log-space then rounds.
  static Domain Integer(std::int64_t lo, std::int64_t hi,
                        Scale scale = Scale::kLinear);

  /// Explicit option list. `ordered` enables adjacent-step perturbation.
  static Domain Choice(std::vector<ParamValue> options, bool ordered = false);

  ParamKind kind() const { return kind_; }
  Scale scale() const { return scale_; }
  bool ordered() const { return ordered_; }

  double lo() const;  // continuous/integer only
  double hi() const;  // continuous/integer only
  const std::vector<ParamValue>& options() const;  // choice only

  /// Number of distinct values; 0 means uncountable (continuous).
  std::size_t Cardinality() const;

  /// Draws a value uniformly (per the domain's scale) from the domain.
  ParamValue Sample(Rng& rng) const;

  /// True iff `value` has the right type and lies in the domain.
  bool Contains(const ParamValue& value) const;

  /// Maps a contained value to [0, 1] respecting the scale; choices map to
  /// bucket midpoints (i + 0.5) / n. Used by the BO substrate, which models
  /// everything in the unit hypercube.
  double ToUnit(const ParamValue& value) const;

  /// Inverse of ToUnit; `u` is clamped to [0, 1].
  ParamValue FromUnit(double u) const;

  /// PBT-style perturbation: continuous/integer values are scaled by
  /// `factor` (clamped to the range); ordered choices step one option toward
  /// the direction implied by factor (>1 up, <1 down); unordered choices
  /// resample uniformly.
  ParamValue Perturb(const ParamValue& value, double factor, Rng& rng) const;

 private:
  Domain() = default;

  ParamKind kind_ = ParamKind::kContinuous;
  Scale scale_ = Scale::kLinear;
  bool ordered_ = false;
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<ParamValue> options_;
};

}  // namespace hypertune
