#include "searchspace/perturb.h"

#include "common/check.h"

namespace hypertune {

Configuration PbtExplore(const SearchSpace& space, const Configuration& config,
                         const PbtExploreOptions& options, Rng& rng) {
  HT_CHECK_MSG(space.Contains(config),
               "PbtExplore: configuration {" << config.ToString()
                                             << "} not in space");
  HT_CHECK(!options.factors.empty());
  HT_CHECK(options.perturb_probability >= 0.0 &&
           options.perturb_probability <= 1.0);

  Configuration out;
  for (std::size_t i = 0; i < space.NumParams(); ++i) {
    const std::string& name = space.name(i);
    const Domain& dom = space.domain(i);
    const ParamValue& current = config.Get(name);
    if (options.frozen && options.frozen(name)) {
      out.Set(name, current);
      continue;
    }
    if (rng.Bernoulli(options.perturb_probability)) {
      const double factor = options.factors[rng.Index(options.factors.size())];
      out.Set(name, dom.Perturb(current, factor, rng));
    } else {
      out.Set(name, dom.Sample(rng));
    }
  }
  return out;
}

}  // namespace hypertune
