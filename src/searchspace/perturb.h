// PBT explore-phase perturbation, as described in the paper's Appendix A.3:
// with probability 3/4 each inherited hyperparameter is perturbed by a factor
// of 1.2 or 0.8 (ordered choices step to an adjacent option), and with
// probability 1/4 it is resampled uniformly. Parameters that change the
// network architecture can be frozen (vanilla PBT cannot mutate them because
// inherited weights would become invalid).
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "searchspace/space.h"

namespace hypertune {

struct PbtExploreOptions {
  /// Probability of perturbing (vs. resampling) each parameter.
  double perturb_probability = 0.75;
  /// Multiplicative factors chosen uniformly when perturbing.
  std::vector<double> factors = {1.2, 0.8};
  /// Returns true for parameters that must not be mutated (architecture
  /// parameters). Defaults to freezing nothing.
  std::function<bool(std::string_view)> frozen = nullptr;
};

/// Applies the explore step to every non-frozen parameter of `config`.
/// The returned configuration is always contained in `space`.
Configuration PbtExplore(const SearchSpace& space, const Configuration& config,
                         const PbtExploreOptions& options, Rng& rng);

}  // namespace hypertune
