#include "searchspace/space.h"

#include <algorithm>

#include "common/check.h"

namespace hypertune {

SearchSpace& SearchSpace::Add(std::string name, Domain domain) {
  HT_CHECK_MSG(!Has(name), "duplicate parameter name '" << name << "'");
  params_.emplace_back(std::move(name), std::move(domain));
  return *this;
}

const Domain& SearchSpace::domain(std::string_view name) const {
  for (const auto& [key, dom] : params_) {
    if (key == name) return dom;
  }
  throw CheckError("SearchSpace has no parameter named '" + std::string(name) +
                   "'");
}

bool SearchSpace::Has(std::string_view name) const {
  return std::any_of(params_.begin(), params_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

Configuration SearchSpace::Sample(Rng& rng) const {
  Configuration config;
  for (const auto& [name, dom] : params_) config.Set(name, dom.Sample(rng));
  return config;
}

bool SearchSpace::Contains(const Configuration& config) const {
  if (config.size() != params_.size()) return false;
  for (const auto& [name, dom] : params_) {
    if (!config.Has(name) || !dom.Contains(config.Get(name))) return false;
  }
  return true;
}

std::vector<double> SearchSpace::ToUnitVector(const Configuration& config) const {
  HT_CHECK_MSG(Contains(config),
               "configuration {" << config.ToString() << "} not in space");
  std::vector<double> u;
  u.reserve(params_.size());
  for (const auto& [name, dom] : params_) u.push_back(dom.ToUnit(config.Get(name)));
  return u;
}

Configuration SearchSpace::FromUnitVector(std::span<const double> u) const {
  HT_CHECK_MSG(u.size() == params_.size(),
               "unit vector has " << u.size() << " coords, space has "
                                  << params_.size());
  Configuration config;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    config.Set(params_[i].first, params_[i].second.FromUnit(u[i]));
  }
  return config;
}

}  // namespace hypertune
