// SearchSpace: a named, ordered collection of parameter domains.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "searchspace/configuration.h"
#include "searchspace/domain.h"

namespace hypertune {

/// Declares the hyperparameters a tuner searches over. Parameter order is
/// declaration order and defines the coordinate layout of unit vectors.
class SearchSpace {
 public:
  /// Adds a parameter; names must be unique. Returns *this for chaining.
  SearchSpace& Add(std::string name, Domain domain);

  std::size_t NumParams() const { return params_.size(); }
  const std::string& name(std::size_t i) const { return params_.at(i).first; }
  const Domain& domain(std::size_t i) const { return params_.at(i).second; }

  /// Throws CheckError for unknown names.
  const Domain& domain(std::string_view name) const;
  bool Has(std::string_view name) const;

  /// Independent uniform draw from every domain.
  Configuration Sample(Rng& rng) const;

  /// True iff `config` has exactly this space's parameters, each in-domain.
  bool Contains(const Configuration& config) const;

  /// Encodes a configuration as a point in [0,1]^d for the BO substrate.
  std::vector<double> ToUnitVector(const Configuration& config) const;

  /// Decodes a unit-cube point (clamping each coordinate) to a configuration.
  Configuration FromUnitVector(std::span<const double> u) const;

 private:
  std::vector<std::pair<std::string, Domain>> params_;
};

}  // namespace hypertune
