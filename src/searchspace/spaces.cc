#include "searchspace/spaces.h"

#include <cmath>

namespace hypertune::spaces {

namespace {

std::vector<ParamValue> IntOptions(std::initializer_list<std::int64_t> xs) {
  std::vector<ParamValue> out;
  for (auto x : xs) out.emplace_back(x);
  return out;
}

}  // namespace

SearchSpace CudaConvnetSpace() {
  // Li et al. 2017 (Hyperband), CIFAR-10 cuda-convnet model: initial learning
  // rate, l2 penalties for the three conv layers and the fully-connected
  // layer, and the local-response-normalization scale/power, all log-scale.
  SearchSpace space;
  space.Add("learning_rate", Domain::Continuous(5e-5, 5.0, Scale::kLog))
      .Add("l2_conv1", Domain::Continuous(5e-5, 5.0, Scale::kLog))
      .Add("l2_conv2", Domain::Continuous(5e-5, 5.0, Scale::kLog))
      .Add("l2_conv3", Domain::Continuous(5e-5, 5.0, Scale::kLog))
      .Add("l2_fc", Domain::Continuous(5e-3, 500.0, Scale::kLog))
      .Add("lrn_scale", Domain::Continuous(5e-6, 5.0, Scale::kLog))
      .Add("lrn_power", Domain::Continuous(0.01, 3.0));
  return space;
}

SearchSpace SmallCnnArchSpace() {
  // Paper Table 1.
  SearchSpace space;
  space.Add("batch_size", Domain::Choice(IntOptions({64, 128, 256, 512}),
                                         /*ordered=*/true))
      .Add("num_layers",
           Domain::Choice(IntOptions({2, 3, 4}), /*ordered=*/true))
      .Add("num_filters",
           Domain::Choice(IntOptions({16, 32, 48, 64}), /*ordered=*/true))
      .Add("weight_init_std1", Domain::Continuous(1e-4, 1e-1, Scale::kLog))
      .Add("weight_init_std2", Domain::Continuous(1e-3, 1.0, Scale::kLog))
      .Add("weight_init_std3", Domain::Continuous(1e-3, 1.0, Scale::kLog))
      .Add("l2_penalty1", Domain::Continuous(1e-5, 1.0, Scale::kLog))
      .Add("l2_penalty2", Domain::Continuous(1e-5, 1.0, Scale::kLog))
      .Add("l2_penalty3", Domain::Continuous(1e-3, 1e2, Scale::kLog))
      .Add("learning_rate", Domain::Continuous(1e-5, 1e1, Scale::kLog));
  return space;
}

SearchSpace PtbLstmSpace() {
  // Paper Table 2. Per Appendix A.5, all parameters are tuned on a linear
  // scale except where the table marks "log".
  SearchSpace space;
  space.Add("batch_size", Domain::Integer(10, 80))
      .Add("time_steps", Domain::Integer(10, 80))
      .Add("hidden_nodes", Domain::Integer(200, 1500))
      .Add("learning_rate", Domain::Continuous(0.01, 100.0, Scale::kLog))
      .Add("decay_rate", Domain::Continuous(0.01, 0.99))
      .Add("decay_epochs", Domain::Integer(1, 10))
      .Add("clip_gradients", Domain::Continuous(1.0, 10.0))
      .Add("dropout", Domain::Continuous(0.1, 1.0))
      .Add("weight_init_range", Domain::Continuous(0.001, 1.0, Scale::kLog));
  return space;
}

SearchSpace AwdLstmSpace() {
  // Paper Table 3 (search space around Merity et al. 2018's setting).
  SearchSpace space;
  space.Add("learning_rate", Domain::Continuous(10.0, 100.0, Scale::kLog))
      .Add("dropout_rnn", Domain::Continuous(0.15, 0.35))
      .Add("dropout_input", Domain::Continuous(0.3, 0.5))
      .Add("dropout_embedding", Domain::Continuous(0.05, 0.2))
      .Add("dropout_output", Domain::Continuous(0.3, 0.5))
      .Add("dropout_dropconnect", Domain::Continuous(0.4, 0.6))
      .Add("weight_decay", Domain::Continuous(0.5e-6, 2e-6, Scale::kLog))
      .Add("batch_size",
           Domain::Choice(IntOptions({15, 20, 25}), /*ordered=*/true))
      .Add("time_steps",
           Domain::Choice(IntOptions({65, 70, 75}), /*ordered=*/true));
  return space;
}

SearchSpace SvmSpace() {
  // Klein et al. 2017 (Fabolas) SVM tasks: RBF-kernel C and gamma on a log
  // scale over [2^-10, 2^10].
  const double lo = std::pow(2.0, -10.0);
  const double hi = std::pow(2.0, 10.0);
  SearchSpace space;
  space.Add("C", Domain::Continuous(lo, hi, Scale::kLog))
      .Add("gamma", Domain::Continuous(lo, hi, Scale::kLog));
  return space;
}

bool IsSmallCnnArchParam(std::string_view name) {
  return name == "num_layers" || name == "num_filters";
}

bool IsPtbLstmArchParam(std::string_view name) {
  return name == "hidden_nodes";
}

}  // namespace hypertune::spaces
