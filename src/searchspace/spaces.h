// The concrete search spaces used in the paper's experiments.
//
//   * CudaConvnetSpace   — benchmark 1 (Sections 4.1/4.2, Fig. 3/4/9): the
//     cuda-convnet CIFAR-10 space of Li et al. 2017 (learning rate, per-layer
//     l2 penalties, weight-init scales, lr reductions).
//   * SmallCnnArchSpace  — Table 1: the small-CNN architecture tuning task
//     (benchmark 2, also used on SVHN in Appendix A.2).
//   * PtbLstmSpace       — Table 2: the 500-worker PTB LSTM task (Fig. 5).
//   * AwdLstmSpace       — Table 3: the 16-GPU AWD-LSTM/DropConnect task
//     (Fig. 6).
//   * SvmSpace           — the Fabolas SVM tasks (Appendix A.2, Fig. 9).
//
// Architecture-affecting parameter names per space are exposed so PBT can
// freeze them during explore (Appendix A.3).
#pragma once

#include <string_view>

#include "searchspace/space.h"

namespace hypertune::spaces {

SearchSpace CudaConvnetSpace();
SearchSpace SmallCnnArchSpace();
SearchSpace PtbLstmSpace();
SearchSpace AwdLstmSpace();
SearchSpace SvmSpace();

/// True when `name` changes the model architecture in SmallCnnArchSpace
/// (# layers / # filters), so PBT must not perturb it.
bool IsSmallCnnArchParam(std::string_view name);

/// True when `name` changes the model architecture in PtbLstmSpace
/// (# hidden nodes).
bool IsPtbLstmArchParam(std::string_view name);

}  // namespace hypertune::spaces
