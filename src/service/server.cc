#include "service/server.h"

#include <vector>

#include "common/check.h"
#include "core/trial_json.h"

namespace hypertune {

TuningServer::TuningServer(Scheduler& scheduler, ServerOptions options)
    : scheduler_(scheduler), options_(options) {
  HT_CHECK(options_.lease_timeout > 0);
}

Json TuningServer::Error(const std::string& text) {
  Json reply = JsonObject{};
  reply.Set("type", Json("error"));
  reply.Set("message", Json(text));
  return reply;
}

Json TuningServer::Ack() {
  Json reply = JsonObject{};
  reply.Set("type", Json("ack"));
  return reply;
}

ServerStats TuningServer::stats() const {
  ServerStats stats = stats_;
  stats.active_leases = leases_.size();
  return stats;
}

void TuningServer::Tick(double now) {
  std::vector<std::uint64_t> expired;
  for (const auto& [job_id, lease] : leases_) {
    if (lease.deadline <= now) expired.push_back(job_id);
  }
  for (std::uint64_t job_id : expired) {
    // The worker is presumed dead or partitioned: its work is gone.
    scheduler_.ReportLost(leases_.at(job_id).job);
    leases_.erase(job_id);
    ++stats_.leases_expired;
  }
}

Json TuningServer::HandleRequestJob(const Json& message, double now) {
  const auto worker = static_cast<std::uint64_t>(message.at("worker").AsInt());
  auto job = scheduler_.GetJob();
  if (!job) {
    Json reply = JsonObject{};
    reply.Set("type", Json("no_job"));
    // Synchronous tuners stall at rung barriers; tell the worker when to
    // retry rather than leaving it to guess.
    reply.Set("retry_after", Json(options_.lease_timeout / 4));
    return reply;
  }
  const std::uint64_t job_id = next_job_id_++;
  leases_[job_id] = Lease{*job, worker, now + options_.lease_timeout};
  ++stats_.jobs_assigned;

  Json reply = JsonObject{};
  reply.Set("type", Json("job"));
  reply.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  reply.Set("job", ToJson(*job));
  reply.Set("lease_timeout", Json(options_.lease_timeout));
  return reply;
}

Json TuningServer::HandleReport(const Json& message, double now) {
  (void)now;
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Lease already expired (we reported the job lost) or never existed:
    // acknowledge so the worker moves on, but ignore the data — the
    // scheduler already accounted for this job.
    ++stats_.stale_reports_ignored;
    Json reply = Ack();
    reply.Set("stale", Json(true));
    return reply;
  }
  scheduler_.ReportResult(it->second.job, message.at("loss").AsDouble());
  leases_.erase(it);
  ++stats_.jobs_completed;
  return Ack();
}

Json TuningServer::HandleHeartbeat(const Json& message, double now) {
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Tell the worker its lease is gone so it can abandon the stale job.
    Json reply = JsonObject{};
    reply.Set("type", Json("lease_lost"));
    return reply;
  }
  it->second.deadline = now + options_.lease_timeout;
  return Ack();
}

Json TuningServer::HandleMessage(const Json& message, double now) {
  Tick(now);
  try {
    const std::string& type = message.at("type").AsString();
    if (type == "request_job") return HandleRequestJob(message, now);
    if (type == "report") return HandleReport(message, now);
    if (type == "heartbeat") return HandleHeartbeat(message, now);
    ++stats_.malformed_messages;
    return Error("unknown message type '" + type + "'");
  } catch (const CheckError& error) {
    ++stats_.malformed_messages;
    return Error(error.what());
  }
}

}  // namespace hypertune
