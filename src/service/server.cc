#include "service/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/trial_json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

TuningServer::TuningServer(Scheduler& scheduler, ServerOptions options)
    : scheduler_(scheduler),
      options_(options),
      // The lifecycle core contributes leasing (the protocol's job ids ARE
      // its lease ids), exactly-once outcome validation, and RunRecords.
      // The server emits its own protocol-level telemetry (lease_granted /
      // job_reported / lease_expired events and server.* counters), so the
      // core's span/counter emission stays off.
      lifecycle_(scheduler,
                 LifecycleOptions{
                     .track_recommendations = options.track_recommendations,
                     .study_label = options.study_label}) {
  HT_CHECK(options_.lease_timeout > 0);
  HT_CHECK(options_.max_batch > 0);
}

Json TuningServer::Error(const std::string& text) {
  Json reply = JsonObject{};
  reply.Set("type", Json("error"));
  reply.Set("message", Json(text));
  return reply;
}

Json TuningServer::Ack() {
  Json reply = JsonObject{};
  reply.Set("type", Json("ack"));
  return reply;
}

Json TuningServer::NoJobReply() const {
  Json reply = JsonObject{};
  reply.Set("type", Json("no_job"));
  // Synchronous tuners stall at rung barriers; tell the worker when to
  // retry rather than leaving it to guess.
  reply.Set("retry_after", Json(options_.lease_timeout / 4));
  return reply;
}

ServerStats TuningServer::stats() const {
  ServerStats stats = stats_;
  stats.active_leases = leases_.size();
  stats.deadline_heap_entries = deadlines_.size();
  return stats;
}

namespace {

Json LeaseArgs(std::uint64_t job_id, std::uint64_t worker, TrialId trial,
               const std::string& study_label) {
  Json args = JsonObject{};
  args.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  args.Set("worker", Json(static_cast<std::int64_t>(worker)));
  args.Set("trial", Json(trial));
  // Multi-tenant deployments tag lease events with their study; the
  // single-tenant shape (no "study" key) is pinned by the trace goldens.
  if (!study_label.empty()) args.Set("study", Json(study_label));
  return args;
}

}  // namespace

void TuningServer::Tick(double now) {
  if (frozen_) return;  // suspended study: leases are frozen, not expiring
  // Drain due heap entries, discarding stale ones (renewed leases leave
  // their superseded deadlines behind; expired leases may leave renewal
  // entries). The lease map is authoritative: an entry only expires a
  // lease whose *current* deadline is due.
  std::vector<std::pair<std::uint64_t, Lease>> expired;
  while (!deadlines_.empty() && deadlines_.top().deadline <= now) {
    const DeadlineEntry due = deadlines_.top();
    deadlines_.pop();
    const auto it = leases_.find(due.job_id);
    if (it == leases_.end()) continue;      // lease reported or expired: stale
    if (it->second.deadline > now) continue;  // renewed: stale entry
    expired.emplace_back(due.job_id, std::move(it->second));
    leases_.erase(it);
  }
  if (expired.empty()) return;
  // Process in ascending job id — the order the pre-heap full-scan server
  // expired in — so traces and scheduler call sequences stay identical.
  std::sort(expired.begin(), expired.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [job_id, lease] : expired) {
    // The worker is presumed dead or partitioned: its work is gone.
    if (options_.telemetry != nullptr) {
      options_.telemetry->EventAt(
          now, "lease_expired", "lease",
          LeaseArgs(job_id, lease.worker, lease.leased.job.trial_id,
                    options_.study_label));
      options_.telemetry->Count("server.leases_expired");
    }
    lifecycle_.Lose(lease.leased, RunTiming{lease.granted_at, now, 0,
                                            static_cast<int>(lease.worker)});
    ++stats_.leases_expired;
    if (options_.journal != nullptr) options_.journal->OnExpire(job_id, now);
  }
}

std::optional<double> TuningServer::EarliestDeadline() {
  // Pop stale tops (renewed or resolved leases) until the heap front agrees
  // with the authoritative lease map; what remains is the true next expiry.
  while (!deadlines_.empty()) {
    const DeadlineEntry& top = deadlines_.top();
    const auto it = leases_.find(top.job_id);
    if (it != leases_.end() && it->second.deadline == top.deadline) {
      return top.deadline;
    }
    deadlines_.pop();
  }
  return std::nullopt;
}

void TuningServer::ShiftDeadlines(double delta) {
  // Rebuilding from the lease map also drops every stale heap entry, so a
  // long suspension doesn't resurface pre-suspension ghosts afterwards.
  std::vector<DeadlineEntry> entries;
  entries.reserve(leases_.size());
  for (auto& [job_id, lease] : leases_) {
    lease.deadline += delta;
    entries.push_back({lease.deadline, job_id});
  }
  deadlines_ = decltype(deadlines_)(std::greater<DeadlineEntry>{},
                                    std::move(entries));
}

std::optional<std::pair<std::uint64_t, Job>> TuningServer::GrantLease(
    std::uint64_t worker, double now) {
  auto leased = lifecycle_.Acquire();
  if (!leased) return std::nullopt;
  // Lease ids are dense from 1 in grant order — exactly the job-id sequence
  // the pre-lifecycle server minted itself, so the wire format is unchanged.
  const std::uint64_t job_id = leased->lease_id;
  const Job job = leased->job;
  const double deadline = now + options_.lease_timeout;
  leases_[job_id] = Lease{*std::move(leased), worker, deadline, now};
  deadlines_.push({deadline, job_id});
  ++stats_.jobs_assigned;
  if (options_.telemetry != nullptr) {
    Json args = LeaseArgs(job_id, worker, job.trial_id, options_.study_label);
    args.Set("rung", Json(job.rung));
    args.Set("deadline", Json(deadline));
    options_.telemetry->EventAt(now, "lease_granted", "lease",
                                std::move(args));
    options_.telemetry->Count("server.jobs_assigned");
  }
  if (options_.journal != nullptr) {
    options_.journal->OnGrant(job_id, worker, job, now);
  }
  return std::make_pair(job_id, job);
}

Json TuningServer::HandleRequestJob(const Json& message, double now) {
  const auto worker = static_cast<std::uint64_t>(message.at("worker").AsInt());
  auto granted = GrantLease(worker, now);
  if (!granted) return NoJobReply();

  Json reply = JsonObject{};
  reply.Set("type", Json("job"));
  reply.Set("job_id", Json(static_cast<std::int64_t>(granted->first)));
  reply.Set("job", ToJson(granted->second));
  reply.Set("lease_timeout", Json(options_.lease_timeout));
  return reply;
}

Json TuningServer::HandleRequestJobs(const Json& message, double now) {
  const auto worker = static_cast<std::uint64_t>(message.at("worker").AsInt());
  const auto requested = message.at("count").AsInt();
  HT_CHECK_MSG(requested >= 1, "request_jobs count must be >= 1, got "
                                   << requested);
  const std::size_t count =
      std::min(static_cast<std::size_t>(requested), options_.max_batch);

  Json jobs = JsonArray{};
  std::size_t granted_count = 0;
  for (std::size_t i = 0; i < count; ++i) {
    auto granted = GrantLease(worker, now);
    if (!granted) break;  // scheduler dry (barrier stall / trial cap): stop
    Json entry = JsonObject{};
    entry.Set("job_id", Json(static_cast<std::int64_t>(granted->first)));
    entry.Set("job", ToJson(granted->second));
    jobs.PushBack(std::move(entry));
    ++granted_count;
  }
  if (granted_count == 0) return NoJobReply();

  Json reply = JsonObject{};
  reply.Set("type", Json("jobs"));
  reply.Set("jobs", std::move(jobs));
  reply.Set("lease_timeout", Json(options_.lease_timeout));
  // Short fill: tell the worker when to come back for the remainder.
  if (granted_count < count) {
    reply.Set("retry_after", Json(options_.lease_timeout / 4));
  }
  return reply;
}

Json TuningServer::HandleReport(const Json& message, double now) {
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Lease already expired (we reported the job lost) or never existed:
    // acknowledge so the worker moves on, but ignore the data — the
    // scheduler already accounted for this job. Stale reports never reach
    // the lifecycle core, so its exactly-once guard is defense in depth
    // here, not the front line.
    ++stats_.stale_reports_ignored;
    if (options_.telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
      options_.telemetry->EventAt(now, "stale_report", "lease",
                                  std::move(args));
      options_.telemetry->Count("server.stale_reports_ignored");
    }
    Json reply = Ack();
    reply.Set("stale", Json(true));
    return reply;
  }
  // Validate the payload *before* mutating lease state, so a report missing
  // its loss — or carrying a non-finite one — leaves the lease intact for
  // the worker's retry and earns an error reply, not a crash.
  const double loss = message.at("loss").AsDouble();
  ValidateReportedLoss(loss);
  if (options_.telemetry != nullptr) {
    Json args =
        LeaseArgs(job_id, it->second.worker, it->second.leased.job.trial_id,
                  options_.study_label);
    args.Set("loss", Json(loss));
    options_.telemetry->EventAt(now, "job_reported", "lease",
                                std::move(args));
    options_.telemetry->Count("server.jobs_completed");
  }
  lifecycle_.Complete(it->second.leased, loss,
                      RunTiming{it->second.granted_at, now, 0,
                                static_cast<int>(it->second.worker)});
  // The heap entry for this lease goes stale and is discarded when it
  // surfaces — lazy deletion keeps reports O(log L)-free entirely.
  leases_.erase(it);
  ++stats_.jobs_completed;
  if (options_.journal != nullptr) {
    options_.journal->OnReport(job_id, loss, now);
  }
  return Ack();
}

Json TuningServer::HandleHeartbeat(const Json& message, double now) {
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Tell the worker its lease is gone so it can abandon the stale job.
    Json reply = JsonObject{};
    reply.Set("type", Json("lease_lost"));
    return reply;
  }
  const double deadline = now + options_.lease_timeout;
  it->second.deadline = deadline;
  // Lazy deletion: the previous entry stays in the heap and is skipped
  // against the authoritative deadline when it comes due.
  deadlines_.push({deadline, job_id});
  if (options_.telemetry != nullptr) {
    options_.telemetry->EventAt(
        now, "lease_renewed", "lease",
        LeaseArgs(job_id, it->second.worker, it->second.leased.job.trial_id,
                  options_.study_label));
    options_.telemetry->Count("server.leases_renewed");
  }
  if (options_.journal != nullptr) options_.journal->OnRenew(job_id, now);
  return Ack();
}

Json TuningServer::HandleMessage(const Json& message, double now) {
  // Align the sink's virtual clock with protocol time so scheduler events
  // emitted inside GetJob/Report carry the same timestamps as ours.
  if (options_.telemetry != nullptr) options_.telemetry->AdvanceTo(now);
  Tick(now);
  const auto malformed = [&](const std::string& text) {
    ++stats_.malformed_messages;
    if (options_.telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("message", Json(text));
      options_.telemetry->EventAt(now, "malformed_message", "server",
                                  std::move(args));
      options_.telemetry->Count("server.malformed_messages");
    }
    return Error(text);
  };
  try {
    const std::string& type = message.at("type").AsString();
    if (type == "request_job") return HandleRequestJob(message, now);
    if (type == "request_jobs") return HandleRequestJobs(message, now);
    if (type == "report") return HandleReport(message, now);
    if (type == "heartbeat") return HandleHeartbeat(message, now);
    return malformed("unknown message type '" + type + "'");
  } catch (const CheckError& error) {
    return malformed(error.what());
  } catch (const std::exception& error) {
    // Defense in depth: any other exception a hostile payload provokes is
    // still an error reply (with accounting), never a dead service.
    return malformed(error.what());
  }
}

Json TuningServer::Snapshot() const {
  Json json = JsonObject{};
  json.Set("scheduler", scheduler_.Snapshot());
  json.Set("lifecycle", lifecycle_.Snapshot());
  Json leases = JsonArray{};
  for (const auto& [job_id, lease] : leases_) {
    Json entry = JsonObject{};
    entry.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
    entry.Set("worker", Json(static_cast<std::int64_t>(lease.worker)));
    entry.Set("deadline", Json(lease.deadline));
    entry.Set("granted_at", Json(lease.granted_at));
    entry.Set("job", ToJson(lease.leased.job));
    leases.PushBack(std::move(entry));
  }
  json.Set("leases", std::move(leases));
  Json stats = JsonObject{};
  stats.Set("jobs_assigned",
            Json(static_cast<std::int64_t>(stats_.jobs_assigned)));
  stats.Set("jobs_completed",
            Json(static_cast<std::int64_t>(stats_.jobs_completed)));
  stats.Set("leases_expired",
            Json(static_cast<std::int64_t>(stats_.leases_expired)));
  stats.Set("stale_reports_ignored",
            Json(static_cast<std::int64_t>(stats_.stale_reports_ignored)));
  stats.Set("malformed_messages",
            Json(static_cast<std::int64_t>(stats_.malformed_messages)));
  json.Set("stats", std::move(stats));
  return json;
}

void TuningServer::Restore(const Json& snapshot) {
  HT_CHECK_MSG(leases_.empty() && lifecycle_.records().empty() &&
                   stats_.jobs_assigned == 0,
               "Restore requires a freshly constructed server");
  // In-flight leases survive the crash on paper; the journal tail and the
  // deadline clock decide their real fate after Restore.
  scheduler_.Restore(snapshot.at("scheduler"), RestorePolicy::kKeepInFlight);
  lifecycle_.Restore(snapshot.at("lifecycle"));
  for (const auto& entry : snapshot.at("leases").AsArray()) {
    const auto job_id =
        static_cast<std::uint64_t>(entry.at("job_id").AsInt());
    Lease lease;
    lease.leased.lease_id = job_id;
    lease.leased.job = JobFromJson(entry.at("job"));
    lease.worker = static_cast<std::uint64_t>(entry.at("worker").AsInt());
    lease.deadline = entry.at("deadline").AsDouble();
    lease.granted_at = entry.at("granted_at").AsDouble();
    deadlines_.push({lease.deadline, job_id});
    leases_[job_id] = std::move(lease);
  }
  const Json& stats = snapshot.at("stats");
  stats_.jobs_assigned =
      static_cast<std::size_t>(stats.at("jobs_assigned").AsInt());
  stats_.jobs_completed =
      static_cast<std::size_t>(stats.at("jobs_completed").AsInt());
  stats_.leases_expired =
      static_cast<std::size_t>(stats.at("leases_expired").AsInt());
  stats_.stale_reports_ignored =
      static_cast<std::size_t>(stats.at("stale_reports_ignored").AsInt());
  stats_.malformed_messages =
      static_cast<std::size_t>(stats.at("malformed_messages").AsInt());
}

void TuningServer::ReplayJournalEvent(const Json& event) {
  const std::string& kind = event.at("kind").AsString();
  const double now = event.at("now").AsDouble();
  if (kind == "grant") {
    const auto job_id =
        static_cast<std::uint64_t>(event.at("job_id").AsInt());
    const auto worker =
        static_cast<std::uint64_t>(event.at("worker").AsInt());
    // Replay by re-derivation: the restored scheduler must produce exactly
    // the job the live server granted. The journal carries the expected
    // identity so divergence fails loudly here rather than corrupting the
    // run downstream.
    auto leased = lifecycle_.Acquire();
    HT_CHECK_MSG(leased.has_value(),
                 "journal replay: scheduler had no job for grant "
                     << job_id);
    HT_CHECK_MSG(leased->lease_id == job_id &&
                     leased->job.trial_id == event.at("trial").AsInt(),
                 "journal replay diverged at grant "
                     << job_id << ": re-derived lease " << leased->lease_id
                     << " trial " << leased->job.trial_id);
    const double deadline = now + options_.lease_timeout;
    leases_[job_id] = Lease{*std::move(leased), worker, deadline, now};
    deadlines_.push({deadline, job_id});
    ++stats_.jobs_assigned;
    return;
  }
  if (kind == "report") {
    const auto job_id =
        static_cast<std::uint64_t>(event.at("job_id").AsInt());
    const auto it = leases_.find(job_id);
    HT_CHECK_MSG(it != leases_.end(),
                 "journal replay: report for unknown lease " << job_id);
    lifecycle_.Complete(it->second.leased, event.at("loss").AsDouble(),
                        RunTiming{it->second.granted_at, now, 0,
                                  static_cast<int>(it->second.worker)});
    leases_.erase(it);
    ++stats_.jobs_completed;
    return;
  }
  if (kind == "renew") {
    const auto job_id =
        static_cast<std::uint64_t>(event.at("job_id").AsInt());
    const auto it = leases_.find(job_id);
    HT_CHECK_MSG(it != leases_.end(),
                 "journal replay: renew for unknown lease " << job_id);
    const double deadline = now + options_.lease_timeout;
    it->second.deadline = deadline;
    deadlines_.push({deadline, job_id});
    return;
  }
  if (kind == "expire") {
    const auto job_id =
        static_cast<std::uint64_t>(event.at("job_id").AsInt());
    const auto it = leases_.find(job_id);
    HT_CHECK_MSG(it != leases_.end(),
                 "journal replay: expiry for unknown lease " << job_id);
    lifecycle_.Lose(it->second.leased,
                    RunTiming{it->second.granted_at, now, 0,
                              static_cast<int>(it->second.worker)});
    leases_.erase(it);
    ++stats_.leases_expired;
    return;
  }
  if (kind == "shift") {
    // Study-manager control record: a resume shifted every open deadline by
    // the suspension's duration. Without replaying it, leases granted before
    // a pre-crash suspension would expire spuriously on the first
    // post-recovery tick.
    ShiftDeadlines(event.at("delta").AsDouble());
    return;
  }
  if (kind == "hazard") return;  // audit-only record; worker state survives
  throw CheckError("journal replay: unknown event kind '" + kind + "'");
}

}  // namespace hypertune
