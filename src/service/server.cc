#include "service/server.h"

#include <vector>

#include "common/check.h"
#include "core/trial_json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

TuningServer::TuningServer(Scheduler& scheduler, ServerOptions options)
    : scheduler_(scheduler), options_(options) {
  HT_CHECK(options_.lease_timeout > 0);
}

Json TuningServer::Error(const std::string& text) {
  Json reply = JsonObject{};
  reply.Set("type", Json("error"));
  reply.Set("message", Json(text));
  return reply;
}

Json TuningServer::Ack() {
  Json reply = JsonObject{};
  reply.Set("type", Json("ack"));
  return reply;
}

ServerStats TuningServer::stats() const {
  ServerStats stats = stats_;
  stats.active_leases = leases_.size();
  return stats;
}

namespace {

Json LeaseArgs(std::uint64_t job_id, std::uint64_t worker, TrialId trial) {
  Json args = JsonObject{};
  args.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  args.Set("worker", Json(static_cast<std::int64_t>(worker)));
  args.Set("trial", Json(trial));
  return args;
}

}  // namespace

void TuningServer::Tick(double now) {
  std::vector<std::uint64_t> expired;
  for (const auto& [job_id, lease] : leases_) {
    if (lease.deadline <= now) expired.push_back(job_id);
  }
  for (std::uint64_t job_id : expired) {
    // The worker is presumed dead or partitioned: its work is gone.
    const Lease& lease = leases_.at(job_id);
    if (options_.telemetry != nullptr) {
      options_.telemetry->EventAt(
          now, "lease_expired", "lease",
          LeaseArgs(job_id, lease.worker, lease.job.trial_id));
      options_.telemetry->Count("server.leases_expired");
    }
    scheduler_.ReportLost(lease.job);
    leases_.erase(job_id);
    ++stats_.leases_expired;
  }
}

Json TuningServer::HandleRequestJob(const Json& message, double now) {
  const auto worker = static_cast<std::uint64_t>(message.at("worker").AsInt());
  auto job = scheduler_.GetJob();
  if (!job) {
    Json reply = JsonObject{};
    reply.Set("type", Json("no_job"));
    // Synchronous tuners stall at rung barriers; tell the worker when to
    // retry rather than leaving it to guess.
    reply.Set("retry_after", Json(options_.lease_timeout / 4));
    return reply;
  }
  const std::uint64_t job_id = next_job_id_++;
  leases_[job_id] = Lease{*job, worker, now + options_.lease_timeout};
  ++stats_.jobs_assigned;
  if (options_.telemetry != nullptr) {
    Json args = LeaseArgs(job_id, worker, job->trial_id);
    args.Set("rung", Json(job->rung));
    args.Set("deadline", Json(now + options_.lease_timeout));
    options_.telemetry->EventAt(now, "lease_granted", "lease",
                                std::move(args));
    options_.telemetry->Count("server.jobs_assigned");
  }

  Json reply = JsonObject{};
  reply.Set("type", Json("job"));
  reply.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
  reply.Set("job", ToJson(*job));
  reply.Set("lease_timeout", Json(options_.lease_timeout));
  return reply;
}

Json TuningServer::HandleReport(const Json& message, double now) {
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Lease already expired (we reported the job lost) or never existed:
    // acknowledge so the worker moves on, but ignore the data — the
    // scheduler already accounted for this job.
    ++stats_.stale_reports_ignored;
    if (options_.telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("job_id", Json(static_cast<std::int64_t>(job_id)));
      options_.telemetry->EventAt(now, "stale_report", "lease",
                                  std::move(args));
      options_.telemetry->Count("server.stale_reports_ignored");
    }
    Json reply = Ack();
    reply.Set("stale", Json(true));
    return reply;
  }
  // Validate the payload *before* mutating lease state, so a report missing
  // its loss leaves the lease intact for the worker's retry.
  const double loss = message.at("loss").AsDouble();
  if (options_.telemetry != nullptr) {
    Json args = LeaseArgs(job_id, it->second.worker, it->second.job.trial_id);
    args.Set("loss", Json(loss));
    options_.telemetry->EventAt(now, "job_reported", "lease",
                                std::move(args));
    options_.telemetry->Count("server.jobs_completed");
  }
  scheduler_.ReportResult(it->second.job, loss);
  leases_.erase(it);
  ++stats_.jobs_completed;
  return Ack();
}

Json TuningServer::HandleHeartbeat(const Json& message, double now) {
  const auto job_id = static_cast<std::uint64_t>(message.at("job_id").AsInt());
  const auto it = leases_.find(job_id);
  if (it == leases_.end()) {
    // Tell the worker its lease is gone so it can abandon the stale job.
    Json reply = JsonObject{};
    reply.Set("type", Json("lease_lost"));
    return reply;
  }
  it->second.deadline = now + options_.lease_timeout;
  if (options_.telemetry != nullptr) {
    options_.telemetry->EventAt(
        now, "lease_renewed", "lease",
        LeaseArgs(job_id, it->second.worker, it->second.job.trial_id));
    options_.telemetry->Count("server.leases_renewed");
  }
  return Ack();
}

Json TuningServer::HandleMessage(const Json& message, double now) {
  // Align the sink's virtual clock with protocol time so scheduler events
  // emitted inside GetJob/Report carry the same timestamps as ours.
  if (options_.telemetry != nullptr) options_.telemetry->AdvanceTo(now);
  Tick(now);
  const auto malformed = [&](const std::string& text) {
    ++stats_.malformed_messages;
    if (options_.telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("message", Json(text));
      options_.telemetry->EventAt(now, "malformed_message", "server",
                                  std::move(args));
      options_.telemetry->Count("server.malformed_messages");
    }
    return Error(text);
  };
  try {
    const std::string& type = message.at("type").AsString();
    if (type == "request_job") return HandleRequestJob(message, now);
    if (type == "report") return HandleReport(message, now);
    if (type == "heartbeat") return HandleHeartbeat(message, now);
    return malformed("unknown message type '" + type + "'");
  } catch (const CheckError& error) {
    return malformed(error.what());
  } catch (const std::exception& error) {
    // Defense in depth: any other exception a hostile payload provokes is
    // still an error reply (with accounting), never a dead service.
    return malformed(error.what());
  }
}

}  // namespace hypertune
