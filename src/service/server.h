// The tuning service: the distributed-systems shell around a Scheduler.
//
// The paper's system runs as a service that hands jobs to remote workers
// (25 AWS machines, 500 Google workers). This module implements that
// protocol layer over a JSON wire format:
//
//   worker -> {"type":"request_job","worker":W}
//   server <- {"type":"job","job_id":J,"job":{...}} | {"type":"no_job"}
//   worker -> {"type":"request_jobs","worker":W,"count":K}   (batched lease)
//   server <- {"type":"jobs","jobs":[{"job_id":J,"job":{...}},...]}
//           | {"type":"no_job"}
//   worker -> {"type":"heartbeat","worker":W,"job_id":J}   (extends lease)
//   worker -> {"type":"report","worker":W,"job_id":J,"loss":L}
//   server <- {"type":"ack"} | {"type":"error","message":...}
//
// Every assignment carries a *lease*: if neither a heartbeat nor a report
// arrives before the lease deadline, the server declares the job lost and
// tells the scheduler (ReportLost) — the mechanism that turns crashed or
// partitioned workers into the "dropped jobs" ASHA tolerates (Appendix
// A.1). Late reports for expired leases are acknowledged but ignored
// (at-most-once accounting).
//
// The server is an adapter over the shared trial-lifecycle core
// (src/lifecycle): TrialLifecycle issues the lease ids (== the protocol's
// job ids), guards every outcome (a lease resolves exactly once; losses
// are finite), and records one RunRecord per resolved job — the server
// contributes the wire format, the deadline bookkeeping, and the
// lease-lifecycle telemetry events. run_records() exposes the unified log.
//
// Scaling contract (Figure 5 regime — hundreds to thousands of workers on
// one server): expiry checks ride a lazy-deletion deadline min-heap, so a
// message costs O(log L) amortized in the number of live leases instead of
// a full lease rescan; heartbeat renewals push a fresh heap entry and the
// stale one is discarded against the authoritative lease map when it
// surfaces. Batched `request_jobs` leases up to K jobs in one round-trip
// (one expiry sweep, one reply array), cutting per-job protocol overhead
// for prefetching workers. The single-job `request_job` path is
// bit-compatible with the pre-heap server: same replies, same telemetry
// events, same scheduler call sequence.
//
// The server is single-threaded and clock-agnostic: callers pass `now`
// into every entry point, so it runs identically under the simulator's
// virtual time, a test harness, or a wall-clock polling loop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/scheduler.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/run_record.h"

namespace hypertune {

class Telemetry;

/// Observer of the server's scheduler-mutating events, notified after each
/// mutation within the handling of one message. The durability layer
/// (src/durability) implements this to append write-ahead-journal records;
/// ReplayJournalEvent applies the same four event kinds on recovery.
class LeaseEventSink {
 public:
  virtual ~LeaseEventSink() = default;
  /// A lease was granted: `job_id` (== lifecycle lease id) now runs `job`
  /// on `worker`.
  virtual void OnGrant(std::uint64_t job_id, std::uint64_t worker,
                       const Job& job, double now) = 0;
  /// The lease reported its loss and was resolved.
  virtual void OnReport(std::uint64_t job_id, double loss, double now) = 0;
  /// A heartbeat renewed the lease (moves its expiry deadline).
  virtual void OnRenew(std::uint64_t job_id, double now) = 0;
  /// The lease expired and its job was reported lost.
  virtual void OnExpire(std::uint64_t job_id, double now) = 0;
};

/// The transport-agnostic face of the tuning service: one protocol message
/// in, one reply out, plus the idle-tick hook a timer drives so leases
/// expire when no messages arrive. TuningServer and DurableServer both
/// implement it; transports (in-process harnesses, src/net's TCP server)
/// target this interface and never care which one they front.
///
/// Implementations are single-threaded: a transport must call
/// HandleMessage/Tick from one thread at a time.
class MessageService {
 public:
  virtual ~MessageService() = default;
  /// Handles one worker message at protocol time `now`, returning the reply.
  virtual Json HandleMessage(const Json& message, double now) = 0;
  /// Expires overdue leases at protocol time `now`.
  virtual void Tick(double now) = 0;
};

struct ServerOptions {
  /// A job lease lasts this long past the last heartbeat/assignment.
  double lease_timeout = 60;
  /// Upper bound on `count` in a batched request_jobs message; larger
  /// requests are clamped (a hostile client must not lease the world).
  std::size_t max_batch = 1024;
  /// Optional observability sink (not owned; must outlive the server).
  /// When set, the server emits lease lifecycle events (granted / renewed /
  /// expired), report/stale-report/malformed-message events — all stamped
  /// with the caller-provided `now`, so traces stay deterministic under
  /// virtual time — and mirrors ServerStats into counters. The server also
  /// advances the sink's virtual clock (when it has one) to `now` on every
  /// message, so scheduler events emitted inside GetJob/Report line up.
  Telemetry* telemetry = nullptr;
  /// Record the scheduler's recommendation whenever it changes (the
  /// incumbent trajectory the paper's figures plot; see
  /// run_recommendations()). Off by default — trajectory points cost a
  /// vector push per change.
  bool track_recommendations = false;
  /// Optional write-ahead journal sink (not owned; must outlive the
  /// server). Notified after every scheduler-mutating event — lease
  /// granted, loss reported, lease renewed, lease expired — so a
  /// durability layer can journal them and replay after a crash.
  LeaseEventSink* journal = nullptr;
  /// Multi-tenant label: when non-empty, every lease lifecycle event this
  /// server emits carries a `"study"` argument so traces from co-hosted
  /// studies (src/study) can be told apart. Empty (the default) emits the
  /// exact single-tenant event shapes — the decision goldens depend on it.
  std::string study_label;
};

struct ServerStats {
  std::size_t jobs_assigned = 0;
  std::size_t jobs_completed = 0;
  std::size_t leases_expired = 0;
  std::size_t stale_reports_ignored = 0;
  std::size_t malformed_messages = 0;
  std::size_t active_leases = 0;
  /// Live + stale entries in the deadline heap (stale entries are lazily
  /// discarded; the gap to active_leases measures renewal churn).
  std::size_t deadline_heap_entries = 0;
};

class TuningServer : public MessageService {
 public:
  TuningServer(Scheduler& scheduler, ServerOptions options);

  /// Handles one worker message and returns the reply. Malformed messages
  /// get {"type":"error"} replies rather than exceptions (a bad client must
  /// not take down the service).
  Json HandleMessage(const Json& message, double now) override;

  /// Expires overdue leases (call periodically; HandleMessage also calls
  /// it, so a busy service needs no separate timer — an idle one does: see
  /// NetServerOptions::tick_interval). O(E log L) for E expiries — a no-op
  /// sweep touches only the heap top.
  void Tick(double now) override;

  /// The earliest authoritative lease deadline, or nullopt with no open
  /// leases. Cleans stale heap tops as a side effect (amortized against the
  /// renewals that created them), so a caller scheduling tick work — the
  /// study manager's per-shard deadline index — gets the true next expiry,
  /// not a lazily deleted ghost.
  std::optional<double> EarliestDeadline();

  /// Shifts every open lease deadline by `delta` and rebuilds the expiry
  /// heap. The study manager calls this on resume so a suspension freezes
  /// leases (workers were not dead, the study was paused) instead of
  /// expiring them en masse on the first post-resume tick. O(L log L).
  void ShiftDeadlines(double delta);

  /// Freezes the expiry clock: Tick becomes a no-op until unfrozen. The
  /// study manager freezes suspended studies — every HandleMessage ticks
  /// internally, so without this a report arriving mid-suspension would
  /// expire the very leases the suspension promised to keep frozen.
  void SetFrozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  ServerStats stats() const;

  /// The scheduler's current recommendation (what the service would return
  /// to a "best configuration so far" query).
  std::optional<Recommendation> Current() const { return scheduler_.Current(); }

  /// The unified lifecycle log: one RunRecord per resolved lease (reported
  /// jobs and expired leases), timestamped in protocol time. start_time is
  /// the grant time, end_time the report/expiry time.
  const std::vector<RunRecord>& run_records() const {
    return lifecycle_.records();
  }

  /// The incumbent trajectory (empty unless
  /// ServerOptions::track_recommendations is set).
  const std::vector<RecommendationPoint>& run_recommendations() const {
    return lifecycle_.recommendations();
  }

  /// Crash recovery (see DESIGN.md §7): captures the scheduler (via
  /// Scheduler::Snapshot), the lifecycle core, every open lease (with its
  /// job, worker, deadline, and grant time), and the protocol stats.
  Json Snapshot() const;

  /// Restores a snapshot into a freshly constructed server whose scheduler
  /// is also freshly constructed. In-flight leases stay open
  /// (RestorePolicy::kKeepInFlight); the caller then replays the journal
  /// tail and lets Tick re-expire whatever the dead workers never finish.
  void Restore(const Json& snapshot);

  /// Applies one journaled event (kinds "grant" / "report" / "renew" /
  /// "expire", plus the study manager's "shift" control record, which
  /// re-applies a resume-time deadline shift) during recovery. Grants are replayed by re-derivation: the
  /// restored scheduler is asked for its next job, and the result is
  /// checked against the journaled job id and trial — divergence is a
  /// CheckError, not a silent corruption. No telemetry or journal output
  /// is emitted while replaying.
  void ReplayJournalEvent(const Json& event);

 private:
  struct Lease {
    LeasedJob leased;
    std::uint64_t worker = 0;
    double deadline = 0;
    /// When the lease was granted (RunRecord::start_time).
    double granted_at = 0;
  };

  /// One (deadline, job) entry in the lazy-deletion expiry heap. Renewals
  /// push a fresh entry instead of re-keying; an entry is stale when its
  /// lease is gone or carries a later authoritative deadline.
  struct DeadlineEntry {
    double deadline = 0;
    std::uint64_t job_id = 0;
    bool operator>(const DeadlineEntry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return job_id > other.job_id;
    }
  };

  Json HandleRequestJob(const Json& message, double now);
  Json HandleRequestJobs(const Json& message, double now);
  Json HandleReport(const Json& message, double now);
  Json HandleHeartbeat(const Json& message, double now);
  /// Leases one job from the lifecycle core and opens its server lease
  /// (heap entry, telemetry, stats). Shared by the single and batched
  /// request paths. The protocol job id IS the lifecycle lease id.
  std::optional<std::pair<std::uint64_t, Job>> GrantLease(std::uint64_t worker,
                                                          double now);
  Json NoJobReply() const;
  static Json Error(const std::string& text);
  static Json Ack();

  Scheduler& scheduler_;
  ServerOptions options_;
  /// The shared lease→run→outcome core (leasing, exactly-once validation,
  /// RunRecords). Single-threaded like the server itself.
  TrialLifecycle lifecycle_;
  std::map<std::uint64_t, Lease> leases_;  // job_id -> lease (authoritative)
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_;
  ServerStats stats_;
  bool frozen_ = false;
};

}  // namespace hypertune
