#include "service/worker.h"

#include <algorithm>

#include "common/check.h"
#include "core/trial_json.h"

namespace hypertune {

SimulatedWorker::SimulatedWorker(std::uint64_t id, JobEnvironment& environment,
                                 double heartbeat_interval)
    : id_(id), environment_(environment),
      heartbeat_interval_(heartbeat_interval) {
  HT_CHECK(heartbeat_interval > 0);
}

void SimulatedWorker::OnTick(TuningServer& server, double now) {
  if (crashed_) return;

  if (!job_) {
    // Idle: ask for work.
    Json request = JsonObject{};
    request.Set("type", Json("request_job"));
    request.Set("worker", Json(static_cast<std::int64_t>(id_)));
    const Json reply = server.HandleMessage(request, now);
    if (reply.at("type").AsString() == "no_job") {
      next_action_ = now + reply.at("retry_after").AsDouble();
      return;
    }
    HT_CHECK(reply.at("type").AsString() == "job");
    job_ = JobFromJson(reply.at("job"));
    job_id_ = static_cast<std::uint64_t>(reply.at("job_id").AsInt());
    finish_time_ = now + environment_.Duration(job_->config,
                                               job_->from_resource,
                                               job_->to_resource);
    next_heartbeat_ = now + heartbeat_interval_;
    next_action_ = std::min(finish_time_, next_heartbeat_);
    return;
  }

  if (now >= finish_time_) {
    // Training finished: evaluate and report.
    const double loss = environment_.Loss(job_->config, job_->to_resource);
    Json report = JsonObject{};
    report.Set("type", Json("report"));
    report.Set("worker", Json(static_cast<std::int64_t>(id_)));
    report.Set("job_id", Json(static_cast<std::int64_t>(job_id_)));
    report.Set("loss", Json(loss));
    (void)server.HandleMessage(report, now);
    job_.reset();
    ++jobs_completed_;
    next_action_ = now;  // immediately ask for the next job
    return;
  }

  if (now >= next_heartbeat_) {
    Json heartbeat = JsonObject{};
    heartbeat.Set("type", Json("heartbeat"));
    heartbeat.Set("worker", Json(static_cast<std::int64_t>(id_)));
    heartbeat.Set("job_id", Json(static_cast<std::int64_t>(job_id_)));
    const Json reply = server.HandleMessage(heartbeat, now);
    if (reply.at("type").AsString() == "lease_lost") {
      // The server gave up on us (e.g. after a long stall): abandon the job.
      job_.reset();
      next_action_ = now;
      return;
    }
    next_heartbeat_ = now + heartbeat_interval_;
  }
  next_action_ = std::min(finish_time_, next_heartbeat_);
}

}  // namespace hypertune
