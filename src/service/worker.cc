#include "service/worker.h"

#include <algorithm>

#include "common/check.h"
#include "core/trial_json.h"
#include "telemetry/telemetry.h"

namespace hypertune {

SimulatedWorker::SimulatedWorker(std::uint64_t id, JobEnvironment& environment,
                                 double heartbeat_interval,
                                 std::size_t prefetch, HazardInjector* hazards,
                                 WorkerRetryOptions retry)
    : id_(id), environment_(environment),
      heartbeat_interval_(heartbeat_interval),
      prefetch_(std::max<std::size_t>(prefetch, 1)),
      hazards_(hazards), retry_(retry), retry_rng_(retry.seed + id) {
  HT_CHECK(heartbeat_interval > 0);
  HT_CHECK(retry_.initial_backoff > 0 && retry_.multiplier >= 1 &&
           retry_.max_backoff >= retry_.initial_backoff);
  HT_CHECK(retry_.jitter >= 0 && retry_.jitter < 1);
}

Json SimulatedWorker::BaseMessage(const char* type) const {
  Json message = JsonObject{};
  message.Set("type", Json(type));
  message.Set("worker", Json(static_cast<std::int64_t>(id_)));
  if (!study_.empty()) message.Set("study", Json(study_));
  return message;
}

double SimulatedWorker::NoteSendFailure() {
  ++retries_;
  if (retry_.telemetry != nullptr) {
    retry_.telemetry->Count("service.worker_retries");
  }
  backoff_ = backoff_ == 0
                 ? retry_.initial_backoff
                 : std::min(backoff_ * retry_.multiplier, retry_.max_backoff);
  double delay = backoff_;
  if (retry_.jitter > 0) {
    delay *= 1.0 - retry_.jitter * retry_rng_.Uniform();
  }
  return delay;
}

void SimulatedWorker::StartJob(Job job, std::uint64_t job_id, double now) {
  double duration = environment_.Duration(job.config, job.from_resource,
                                          job.to_resource);
  drop_time_.reset();
  if (hazards_ != nullptr && hazards_->enabled()) {
    const HazardPlan plan = hazards_->Plan(duration);
    duration = plan.duration;
    if (plan.dropped()) drop_time_ = now + *plan.drop_after;
  }
  finish_time_ = now + duration;
  job_ = std::move(job);
  job_id_ = job_id;
  next_heartbeat_ = now + heartbeat_interval_;
  next_action_ = std::min(finish_time_, next_heartbeat_);
  if (drop_time_) next_action_ = std::min(next_action_, *drop_time_);
}

void SimulatedWorker::RequestWork(ServerConnection& connection, double now) {
  if (prefetch_ <= 1) {
    // Original single-job exchange, kept byte-identical for decision parity.
    Json request = BaseMessage("request_job");
    const auto reply = connection.Send(request, now);
    if (!reply) {
      next_action_ = now + NoteSendFailure();
      return;
    }
    const std::string& type = reply->at("type").AsString();
    if (type == "no_job") {
      backoff_ = 0;
      next_action_ = now + reply->at("retry_after").AsDouble();
      return;
    }
    if (type != "job") {
      // e.g. an error reply after wire corruption mangled the request:
      // a failed exchange, not a reason to die. Back off and retry.
      next_action_ = now + NoteSendFailure();
      return;
    }
    backoff_ = 0;
    StartJob(JobFromJson(reply->at("job")),
             static_cast<std::uint64_t>(reply->at("job_id").AsInt()), now);
    return;
  }

  Json request = BaseMessage("request_jobs");
  request.Set("count", Json(static_cast<std::int64_t>(prefetch_)));
  const auto reply = connection.Send(request, now);
  if (!reply) {
    next_action_ = now + NoteSendFailure();
    return;
  }
  const std::string& type = reply->at("type").AsString();
  if (type == "no_job") {
    backoff_ = 0;
    next_action_ = now + reply->at("retry_after").AsDouble();
    return;
  }
  if (type != "jobs") {
    next_action_ = now + NoteSendFailure();
    return;
  }
  backoff_ = 0;
  for (const auto& entry : reply->at("jobs").AsArray()) {
    queue_.emplace_back(static_cast<std::uint64_t>(entry.at("job_id").AsInt()),
                        JobFromJson(entry.at("job")));
  }
  HT_CHECK(!queue_.empty());
  auto [job_id, job] = std::move(queue_.front());
  queue_.pop_front();
  StartJob(std::move(job), job_id, now);
}

void SimulatedWorker::SendHeartbeats(ServerConnection& connection,
                                     double now) {
  Json heartbeat = BaseMessage("heartbeat");
  heartbeat.Set("job_id", Json(static_cast<std::int64_t>(job_id_)));
  const auto reply = connection.Send(heartbeat, now);
  if (!reply) {
    // Server unreachable: keep training and retry the heartbeat with
    // backoff. If the outage outlives the lease, the server (once back)
    // expires it — the same accounting as a crashed worker.
    next_heartbeat_ = now + NoteSendFailure();
    return;
  }
  if (const std::string& type = reply->at("type").AsString();
      type != "ack" && type != "lease_lost") {
    // Unexpected reply (corrupted request turned into an error): the renew
    // did not land; retry with backoff like a lost exchange.
    next_heartbeat_ = now + NoteSendFailure();
    return;
  }
  backoff_ = 0;
  if (reply->at("type").AsString() == "lease_lost") {
    // The server gave up on us (e.g. after a long stall): abandon the job.
    job_.reset();
    drop_time_.reset();
    next_action_ = now;
    return;
  }
  // Queued (leased-ahead) jobs must stay alive too: renew each, dropping
  // any the server already declared lost.
  for (auto it = queue_.begin(); it != queue_.end();) {
    Json renew = BaseMessage("heartbeat");
    renew.Set("job_id", Json(static_cast<std::int64_t>(it->first)));
    const auto queued_reply = connection.Send(renew, now);
    if (!queued_reply) {
      next_heartbeat_ = now + NoteSendFailure();
      return;
    }
    if (queued_reply->at("type").AsString() == "lease_lost") {
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  next_heartbeat_ = now + heartbeat_interval_;
}

void SimulatedWorker::OnTick(TuningServer& server, double now) {
  // The in-process overload can never lose a message, so it inherits the
  // connection path's behavior with the failure branches dead.
  DirectConnection direct(&server);
  OnTick(static_cast<ServerConnection&>(direct), now);
}

void SimulatedWorker::OnTick(ServerConnection& connection, double now) {
  if (crashed_) return;

  if (pending_report_) {
    // A completion loss is data; deliver it before anything else. If the
    // lease died during the outage the server acks it as stale — the
    // worker's obligation ends either way.
    const auto reply = connection.Send(*pending_report_, now);
    if (!reply || reply->at("type").AsString() != "ack") {
      // Undelivered (or bounced as an error after wire corruption): the
      // loss is still data — hold it and retry.
      next_action_ = now + NoteSendFailure();
      return;
    }
    backoff_ = 0;
    pending_report_.reset();
    ++jobs_completed_;
    next_action_ = now;
    return;
  }

  if (!job_) {
    if (!queue_.empty()) {
      // Run the next leased-ahead job without a server round-trip.
      auto [job_id, job] = std::move(queue_.front());
      queue_.pop_front();
      StartJob(std::move(job), job_id, now);
      return;
    }
    RequestWork(connection, now);
    return;
  }

  if (drop_time_ && now >= *drop_time_) {
    // The injected hazard preempted this job mid-run. Abandon it silently —
    // no report, no more heartbeats for this lease — so the server's lease
    // expiry turns it into a lost job, the same accounting a real preempted
    // worker produces. The worker itself lives on and picks up new work.
    job_.reset();
    drop_time_.reset();
    ++jobs_dropped_;
    next_action_ = now;
    return;
  }

  if (now >= finish_time_) {
    // Training finished: evaluate and report.
    const double loss = environment_.Loss(job_->config, job_->to_resource);
    // Built via BaseMessage so the study key (when pinned) is part of the
    // payload itself: if delivery fails and this becomes pending_report_,
    // the retry after reconnect still carries its routing key.
    Json report = BaseMessage("report");
    report.Set("job_id", Json(static_cast<std::int64_t>(job_id_)));
    report.Set("loss", Json(loss));
    const auto reply = connection.Send(report, now);
    job_.reset();
    drop_time_.reset();
    if (!reply || reply->at("type").AsString() != "ack") {
      pending_report_ = std::move(report);
      next_action_ = now + NoteSendFailure();
      return;
    }
    backoff_ = 0;
    ++jobs_completed_;
    next_action_ = now;  // immediately start queued work or ask for more
    return;
  }

  if (now >= next_heartbeat_) {
    SendHeartbeats(connection, now);
    if (!job_) return;  // lease lost; job abandoned
  }
  next_action_ = std::min(finish_time_, next_heartbeat_);
  if (drop_time_) next_action_ = std::min(next_action_, *drop_time_);
}

}  // namespace hypertune
