// A simulated worker speaking the tuning-service protocol — the client
// half of the distributed shell. Drives training through a JobEnvironment
// under virtual time, sends heartbeats while training, and can be crashed
// mid-job to exercise the server's lease expiry.
#pragma once

#include <cstdint>
#include <optional>

#include "common/json.h"
#include "service/server.h"
#include "sim/environment.h"

namespace hypertune {

class SimulatedWorker {
 public:
  SimulatedWorker(std::uint64_t id, JobEnvironment& environment,
                  double heartbeat_interval);

  /// Advances the worker to time `now`, exchanging whatever messages are
  /// due with the server (job requests, heartbeats, completion reports).
  void OnTick(TuningServer& server, double now);

  /// Simulates a crash: the worker stops sending anything. The in-flight
  /// job's lease will expire on the server.
  void Crash() { crashed_ = true; }

  bool IsTraining() const { return job_.has_value(); }
  std::size_t jobs_completed() const { return jobs_completed_; }
  /// Earliest time this worker wants another OnTick (for harness loops).
  double next_action_time() const { return next_action_; }

 private:
  std::uint64_t id_;
  JobEnvironment& environment_;
  double heartbeat_interval_;
  bool crashed_ = false;

  std::optional<Job> job_;
  std::uint64_t job_id_ = 0;
  double finish_time_ = 0;
  double next_heartbeat_ = 0;
  double next_action_ = 0;
  std::size_t jobs_completed_ = 0;
};

}  // namespace hypertune
