// A simulated worker speaking the tuning-service protocol — the client
// half of the distributed shell. Drives training through a JobEnvironment
// under virtual time, sends heartbeats while training, and can be crashed
// mid-job to exercise the server's lease expiry.
//
// With `prefetch` > 1 the worker uses the batched `request_jobs` message to
// lease several jobs per round-trip and runs them back to back, renewing
// every held lease (running and queued) at each heartbeat — the client
// side of the server's batched-lease fast path. The default (prefetch = 1)
// keeps the original single-job `request_job` protocol exchange
// byte-for-byte.
//
// Hazard injection (paper Appendix A.1) works on this backend too: give the
// worker a HazardInjector and each started job draws a straggler/drop fate
// — stragglers stretch the job's virtual duration; a dropped job is
// abandoned mid-run *without* telling the server, so its lease expires and
// the scheduler sees a lost job, exactly the failure mode a preempted
// cloud worker produces.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/json.h"
#include "lifecycle/hazards.h"
#include "service/server.h"
#include "sim/environment.h"

namespace hypertune {

class SimulatedWorker {
 public:
  /// `hazards` (optional, not owned, may be shared between workers) injects
  /// straggler/drop fates into each started job; fates are drawn in job
  /// start order, so a virtual-time harness replays them deterministically.
  SimulatedWorker(std::uint64_t id, JobEnvironment& environment,
                  double heartbeat_interval, std::size_t prefetch = 1,
                  HazardInjector* hazards = nullptr);

  /// Advances the worker to time `now`, exchanging whatever messages are
  /// due with the server (job requests, heartbeats, completion reports).
  void OnTick(TuningServer& server, double now);

  /// Simulates a crash: the worker stops sending anything. The in-flight
  /// job's lease will expire on the server.
  void Crash() { crashed_ = true; }

  bool IsTraining() const { return job_.has_value(); }
  std::size_t jobs_completed() const { return jobs_completed_; }
  /// Jobs abandoned mid-run by an injected drop (their leases expire
  /// server-side; the server accounts them as lost).
  std::size_t jobs_dropped() const { return jobs_dropped_; }
  std::size_t jobs_queued() const { return queue_.size(); }
  /// Earliest time this worker wants another OnTick (for harness loops).
  double next_action_time() const { return next_action_; }

 private:
  void RequestWork(TuningServer& server, double now);
  void StartJob(Job job, std::uint64_t job_id, double now);
  /// Renews the lease of every held job (running first, then queued, in
  /// acquisition order); drops queued jobs whose leases the server lost.
  void SendHeartbeats(TuningServer& server, double now);

  std::uint64_t id_;
  JobEnvironment& environment_;
  double heartbeat_interval_;
  std::size_t prefetch_;
  HazardInjector* hazards_;
  bool crashed_ = false;

  std::optional<Job> job_;
  std::uint64_t job_id_ = 0;
  /// Leased-ahead jobs not yet running (batched protocol only).
  std::deque<std::pair<std::uint64_t, Job>> queue_;
  double finish_time_ = 0;
  /// When the running job's injected drop fires (unset: no drop planned).
  std::optional<double> drop_time_;
  double next_heartbeat_ = 0;
  double next_action_ = 0;
  std::size_t jobs_completed_ = 0;
  std::size_t jobs_dropped_ = 0;
};

}  // namespace hypertune
