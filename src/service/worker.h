// A simulated worker speaking the tuning-service protocol — the client
// half of the distributed shell. Drives training through a JobEnvironment
// under virtual time, sends heartbeats while training, and can be crashed
// mid-job to exercise the server's lease expiry.
//
// With `prefetch` > 1 the worker uses the batched `request_jobs` message to
// lease several jobs per round-trip and runs them back to back, renewing
// every held lease (running and queued) at each heartbeat — the client
// side of the server's batched-lease fast path. The default (prefetch = 1)
// keeps the original single-job `request_job` protocol exchange
// byte-for-byte.
//
// Hazard injection (paper Appendix A.1) works on this backend too: give the
// worker a HazardInjector and each started job draws a straggler/drop fate
// — stragglers stretch the job's virtual duration; a dropped job is
// abandoned mid-run *without* telling the server, so its lease expires and
// the scheduler sees a lost job, exactly the failure mode a preempted
// cloud worker produces.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/json.h"
#include "common/rng.h"
#include "lifecycle/hazards.h"
#include "service/server.h"
#include "sim/environment.h"

namespace hypertune {

/// The worker's view of the network: delivers one protocol message and
/// returns the reply, or nullopt when the server is unreachable (crashed,
/// restarting, partitioned). Lets the same worker drive an in-process
/// server or a chaos harness that takes the server down mid-run.
class ServerConnection {
 public:
  virtual ~ServerConnection() = default;
  virtual std::optional<Json> Send(const Json& message, double now) = 0;
};

/// In-process connection to a TuningServer. Detach() simulates the server
/// going down (every Send fails); Attach() points at a (re)started server.
class DirectConnection final : public ServerConnection {
 public:
  explicit DirectConnection(TuningServer* server = nullptr)
      : server_(server) {}
  void Attach(TuningServer* server) { server_ = server; }
  void Detach() { server_ = nullptr; }
  std::optional<Json> Send(const Json& message, double now) override {
    if (server_ == nullptr) return std::nullopt;
    return server_->HandleMessage(message, now);
  }

 private:
  TuningServer* server_;
};

/// Reconnect behavior when the server is unreachable: capped exponential
/// backoff with optional seeded jitter (deterministic under virtual time).
struct WorkerRetryOptions {
  /// First retry delay after a failed exchange.
  double initial_backoff = 1.0;
  /// Backoff cap; delays never exceed this.
  double max_backoff = 30.0;
  /// Backoff growth factor per consecutive failure.
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1): each delay is scaled by (1 - jitter * u),
  /// u ~ Uniform[0,1) from a per-worker stream seeded by `seed` + worker
  /// id, de-synchronizing a fleet's reconnect stampede.
  double jitter = 0.0;
  std::uint64_t seed = 0;
  /// Optional sink for the service.worker_retries counter (not owned).
  Telemetry* telemetry = nullptr;
};

class SimulatedWorker {
 public:
  /// `hazards` (optional, not owned, may be shared between workers) injects
  /// straggler/drop fates into each started job; fates are drawn in job
  /// start order, so a virtual-time harness replays them deterministically.
  SimulatedWorker(std::uint64_t id, JobEnvironment& environment,
                  double heartbeat_interval, std::size_t prefetch = 1,
                  HazardInjector* hazards = nullptr,
                  WorkerRetryOptions retry = {});

  /// Advances the worker to time `now`, exchanging whatever messages are
  /// due with the server (job requests, heartbeats, completion reports).
  /// The in-process overload never fails; the connection overload retries
  /// failed exchanges with capped exponential backoff and holds an
  /// undeliverable completion report until the server is back.
  void OnTick(TuningServer& server, double now);
  void OnTick(ServerConnection& connection, double now);

  /// Simulates a crash: the worker stops sending anything. The in-flight
  /// job's lease will expire on the server.
  void Crash() { crashed_ = true; }

  /// Pins every message this worker sends to one study (multi-tenant
  /// serving, DESIGN.md §11). The key is baked into each payload as it is
  /// built — including the held completion report — so a report retried
  /// after an outage still routes to its study on the reconnected server.
  /// Empty (the default) omits the key: byte-identical single-tenant
  /// traffic.
  void SetStudy(std::string study) { study_ = std::move(study); }
  const std::string& study() const { return study_; }

  bool IsTraining() const { return job_.has_value(); }
  std::size_t jobs_completed() const { return jobs_completed_; }
  /// Jobs abandoned mid-run by an injected drop (their leases expire
  /// server-side; the server accounts them as lost).
  std::size_t jobs_dropped() const { return jobs_dropped_; }
  std::size_t jobs_queued() const { return queue_.size(); }
  /// Earliest time this worker wants another OnTick (for harness loops).
  double next_action_time() const { return next_action_; }
  /// Failed exchanges retried so far (server unreachable).
  std::size_t retries() const { return retries_; }
  /// True while a completion report is held back for an unreachable server.
  bool has_pending_report() const { return pending_report_.has_value(); }

 private:
  /// `{type, worker}` skeleton with the study routing key when pinned.
  Json BaseMessage(const char* type) const;
  void RequestWork(ServerConnection& connection, double now);
  void StartJob(Job job, std::uint64_t job_id, double now);
  /// Renews the lease of every held job (running first, then queued, in
  /// acquisition order); drops queued jobs whose leases the server lost.
  void SendHeartbeats(ServerConnection& connection, double now);
  /// Registers one failed exchange: bumps the retry counter (and the
  /// service.worker_retries telemetry counter) and returns the next retry
  /// delay — capped exponential with seeded jitter.
  double NoteSendFailure();

  std::uint64_t id_;
  /// Study every message routes to; empty = unscoped (default study).
  std::string study_;
  JobEnvironment& environment_;
  double heartbeat_interval_;
  std::size_t prefetch_;
  HazardInjector* hazards_;
  WorkerRetryOptions retry_;
  Rng retry_rng_;
  bool crashed_ = false;

  std::optional<Job> job_;
  std::uint64_t job_id_ = 0;
  /// Leased-ahead jobs not yet running (batched protocol only).
  std::deque<std::pair<std::uint64_t, Job>> queue_;
  double finish_time_ = 0;
  /// When the running job's injected drop fires (unset: no drop planned).
  std::optional<double> drop_time_;
  double next_heartbeat_ = 0;
  double next_action_ = 0;
  std::size_t jobs_completed_ = 0;
  std::size_t jobs_dropped_ = 0;
  /// Completion report that could not be delivered (server down); retried
  /// with backoff before any other work. The loss survives the outage even
  /// if the lease does not (a late delivery is acked as stale).
  std::optional<Json> pending_report_;
  std::size_t retries_ = 0;
  /// Current backoff delay; 0 = healthy (next failure starts at
  /// retry_.initial_backoff).
  double backoff_ = 0;
};

}  // namespace hypertune
