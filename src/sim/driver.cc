#include "sim/driver.h"

#include <queue>
#include <set>
#include <string>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

struct ActiveJob {
  Job job;
  double start = 0;
  double end = 0;
  bool dropped = false;
  int worker = 0;             // virtual worker executing this job
  std::uint64_t seq = 0;      // FIFO tie-break for equal event times

  bool operator>(const ActiveJob& other) const {
    if (end != other.end) return end > other.end;
    return seq > other.seq;
  }
};

}  // namespace

SimulationDriver::SimulationDriver(Scheduler& scheduler,
                                   JobEnvironment& environment,
                                   DriverOptions options)
    : scheduler_(scheduler), environment_(environment), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.time_limit > 0);
}

DriverResult SimulationDriver::Run() {
  Rng hazard_rng(options_.seed);
  const HazardModel hazards(options_.hazards);
  DriverResult result;
  Telemetry* const telemetry = options_.telemetry;

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>> queue;
  double now = 0;
  std::uint64_t seq = 0;
  // Lowest-index-first worker assignment keeps trace tracks deterministic.
  std::set<int> idle_workers;
  for (int w = 0; w < options_.num_workers; ++w) idle_workers.insert(w);

  auto dispatch_idle_workers = [&] {
    while (!idle_workers.empty()) {
      if (telemetry != nullptr) telemetry->AdvanceTo(now);
      auto job = scheduler_.GetJob();
      if (!job) break;  // no work right now; retry after the next event
      const double base = environment_.Duration(job->config, job->from_resource,
                                                job->to_resource);
      HT_CHECK_MSG(base > 0, "job duration must be positive, got " << base);
      const double duration = base * hazards.StragglerMultiplier(hazard_rng);
      const auto drop_after = hazards.DropTime(duration, hazard_rng);
      ActiveJob active;
      active.job = std::move(*job);
      active.start = now;
      active.end = now + (drop_after ? *drop_after : duration);
      active.dropped = drop_after.has_value();
      active.worker = *idle_workers.begin();
      active.seq = seq++;
      idle_workers.erase(idle_workers.begin());
      queue.push(std::move(active));
    }
  };

  auto note_recommendation = [&] {
    const auto rec = scheduler_.Current();
    if (!rec) return;
    if (!result.recommendations.empty()) {
      const auto& last = result.recommendations.back();
      if (last.trial_id == rec->trial_id && last.loss == rec->loss) return;
    }
    result.recommendations.push_back(
        {now, rec->trial_id, rec->loss, rec->resource});
    if (telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("trial", Json(rec->trial_id));
      args.Set("loss", Json(rec->loss));
      args.Set("resource", Json(rec->resource));
      telemetry->EventAt(now, "recommendation", "job", std::move(args));
    }
  };

  // Reused across events: the span's track name ("t<trial>:r<rung>") is
  // rebuilt in place instead of re-concatenated from temporaries.
  std::string span_name;

  dispatch_idle_workers();
  while (!queue.empty()) {
    if (queue.top().end > options_.time_limit) break;  // budget exhausted
    // Move the event out of the heap: ActiveJob carries a whole Job
    // (Configuration included), which at 500 workers made every pop a
    // deep copy. top() is const-qualified only to protect heap order,
    // which pop() is about to discard anyway.
    ActiveJob active = std::move(const_cast<ActiveJob&>(queue.top()));
    queue.pop();
    now = active.end;
    if (telemetry != nullptr) telemetry->AdvanceTo(now);
    idle_workers.insert(active.worker);
    result.busy_time += active.end - active.start;

    CompletionRecord record;
    record.time = now;
    record.trial_id = active.job.trial_id;
    record.from_resource = active.job.from_resource;
    record.to_resource = active.job.to_resource;
    record.rung = active.job.rung;
    record.bracket = active.job.bracket;
    record.dropped = active.dropped;

    if (active.dropped) {
      scheduler_.ReportLost(active.job);
      ++result.jobs_dropped;
    } else {
      record.loss = environment_.Loss(active.job.config, active.job.to_resource);
      scheduler_.ReportResult(active.job, record.loss);
      ++result.jobs_completed;
    }
    if (telemetry != nullptr) {
      Json args = JsonObject{};
      args.Set("trial", Json(active.job.trial_id));
      args.Set("rung", Json(active.job.rung));
      args.Set("bracket", Json(active.job.bracket));
      args.Set("from_resource", Json(active.job.from_resource));
      args.Set("to_resource", Json(active.job.to_resource));
      if (active.dropped) {
        args.Set("dropped", Json(true));
      } else {
        args.Set("loss", Json(record.loss));
      }
      span_name.clear();
      span_name += 't';
      span_name += std::to_string(active.job.trial_id);
      span_name += ":r";
      span_name += std::to_string(active.job.rung);
      telemetry->SpanAt(active.start, active.end - active.start, span_name,
                        "worker", std::move(args), active.worker);
      telemetry->Count(active.dropped ? "driver.jobs_dropped"
                                      : "driver.jobs_completed");
    }
    result.completions.push_back(record);
    note_recommendation();

    if (options_.max_completed_jobs > 0 &&
        result.jobs_completed >= options_.max_completed_jobs) {
      break;
    }
    if (scheduler_.Finished()) break;
    dispatch_idle_workers();
  }

  result.end_time = now;
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    metrics.gauge("driver.end_time").Set(result.end_time);
    if (result.end_time > 0) {
      metrics.gauge("driver.worker_utilization")
          .Set(result.busy_time /
               (static_cast<double>(options_.num_workers) * result.end_time));
    }
  }
  return result;
}

}  // namespace hypertune
