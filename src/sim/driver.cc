#include "sim/driver.h"

#include <queue>
#include <set>

#include "common/check.h"
#include "lifecycle/lifecycle.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

struct ActiveJob {
  LeasedJob lease;
  double start = 0;
  double end = 0;
  bool dropped = false;
  double queue_wait = 0;      // worker idle time before this job started
  int worker = 0;             // virtual worker executing this job
  std::uint64_t seq = 0;      // FIFO tie-break for equal event times

  bool operator>(const ActiveJob& other) const {
    if (end != other.end) return end > other.end;
    return seq > other.seq;
  }
};

}  // namespace

SimulationDriver::SimulationDriver(Scheduler& scheduler,
                                   JobEnvironment& environment,
                                   DriverOptions options)
    : scheduler_(scheduler), environment_(environment), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.time_limit > 0);
}

DriverResult SimulationDriver::Run() {
  HazardInjector hazards(options_.hazards, options_.seed);
  DriverResult result;
  Telemetry* const telemetry = options_.telemetry;
  TrialLifecycle lifecycle(scheduler_,
                           {.telemetry = telemetry,
                            .emit_spans = true,
                            .span_profile = SpanProfile::kFull,
                            .completed_counter = "driver.jobs_completed",
                            .lost_counter = "driver.jobs_dropped",
                            .track_recommendations = true,
                            .emit_recommendation_events = true});

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>> queue;
  double now = 0;
  std::uint64_t seq = 0;
  // Lowest-index-first worker assignment keeps trace tracks deterministic.
  std::set<int> idle_workers;
  // When each worker last became free (for RunRecord::queue_wait).
  std::vector<double> free_since(
      static_cast<std::size_t>(options_.num_workers), 0.0);
  for (int w = 0; w < options_.num_workers; ++w) idle_workers.insert(w);

  auto dispatch_idle_workers = [&] {
    while (!idle_workers.empty()) {
      if (telemetry != nullptr) telemetry->AdvanceTo(now);
      auto leased = lifecycle.Acquire();
      if (!leased) break;  // no work right now; retry after the next event
      const double base = environment_.Duration(leased->job.config,
                                                leased->job.from_resource,
                                                leased->job.to_resource);
      HT_CHECK_MSG(base > 0, "job duration must be positive, got " << base);
      const HazardPlan plan = hazards.Plan(base);
      ActiveJob active;
      active.lease = *std::move(leased);
      active.start = now;
      active.end = now + plan.end_after();
      active.dropped = plan.dropped();
      active.worker = *idle_workers.begin();
      active.queue_wait =
          now - free_since[static_cast<std::size_t>(active.worker)];
      active.seq = seq++;
      idle_workers.erase(idle_workers.begin());
      queue.push(std::move(active));
    }
  };

  dispatch_idle_workers();
  while (!queue.empty()) {
    if (queue.top().end > options_.time_limit) break;  // budget exhausted
    // Move the event out of the heap: ActiveJob carries a whole Job
    // (Configuration included), which at 500 workers made every pop a
    // deep copy. top() is const-qualified only to protect heap order,
    // which pop() is about to discard anyway.
    ActiveJob active = std::move(const_cast<ActiveJob&>(queue.top()));
    queue.pop();
    now = active.end;
    if (telemetry != nullptr) telemetry->AdvanceTo(now);
    idle_workers.insert(active.worker);
    free_since[static_cast<std::size_t>(active.worker)] = now;
    result.busy_time += active.end - active.start;

    const RunTiming timing{active.start, active.end, active.queue_wait,
                           active.worker};
    if (active.dropped) {
      lifecycle.Lose(active.lease, timing);
    } else {
      const double loss = environment_.Loss(active.lease.job.config,
                                            active.lease.job.to_resource);
      lifecycle.Complete(active.lease, loss, timing);
    }

    if (options_.max_completed_jobs > 0 &&
        lifecycle.completed_jobs() >= options_.max_completed_jobs) {
      break;
    }
    if (scheduler_.Finished()) break;
    dispatch_idle_workers();
  }

  result.end_time = now;
  result.jobs_completed = lifecycle.completed_jobs();
  result.jobs_dropped = lifecycle.lost_jobs();
  result.completions = lifecycle.TakeRecords();
  result.recommendations = lifecycle.TakeRecommendations();
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    metrics.gauge("driver.end_time").Set(result.end_time);
    if (result.end_time > 0) {
      metrics.gauge("driver.worker_utilization")
          .Set(result.busy_time /
               (static_cast<double>(options_.num_workers) * result.end_time));
    }
  }
  return result;
}

}  // namespace hypertune
