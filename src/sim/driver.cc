#include "sim/driver.h"

#include <queue>

#include "common/check.h"

namespace hypertune {

namespace {

struct ActiveJob {
  Job job;
  double start = 0;
  double end = 0;
  bool dropped = false;
  std::uint64_t seq = 0;  // FIFO tie-break for equal event times

  bool operator>(const ActiveJob& other) const {
    if (end != other.end) return end > other.end;
    return seq > other.seq;
  }
};

}  // namespace

SimulationDriver::SimulationDriver(Scheduler& scheduler,
                                   JobEnvironment& environment,
                                   DriverOptions options)
    : scheduler_(scheduler), environment_(environment), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.time_limit > 0);
}

DriverResult SimulationDriver::Run() {
  Rng hazard_rng(options_.seed);
  const HazardModel hazards(options_.hazards);
  DriverResult result;

  std::priority_queue<ActiveJob, std::vector<ActiveJob>, std::greater<>> queue;
  double now = 0;
  int idle = options_.num_workers;
  std::uint64_t seq = 0;

  auto dispatch_idle_workers = [&] {
    while (idle > 0) {
      auto job = scheduler_.GetJob();
      if (!job) break;  // no work right now; retry after the next event
      const double base = environment_.Duration(job->config, job->from_resource,
                                                job->to_resource);
      HT_CHECK_MSG(base > 0, "job duration must be positive, got " << base);
      const double duration = base * hazards.StragglerMultiplier(hazard_rng);
      const auto drop_after = hazards.DropTime(duration, hazard_rng);
      ActiveJob active;
      active.job = std::move(*job);
      active.start = now;
      active.end = now + (drop_after ? *drop_after : duration);
      active.dropped = drop_after.has_value();
      active.seq = seq++;
      queue.push(std::move(active));
      --idle;
    }
  };

  auto note_recommendation = [&] {
    const auto rec = scheduler_.Current();
    if (!rec) return;
    if (!result.recommendations.empty()) {
      const auto& last = result.recommendations.back();
      if (last.trial_id == rec->trial_id && last.loss == rec->loss) return;
    }
    result.recommendations.push_back(
        {now, rec->trial_id, rec->loss, rec->resource});
  };

  dispatch_idle_workers();
  while (!queue.empty()) {
    const ActiveJob active = queue.top();
    if (active.end > options_.time_limit) break;  // budget exhausted
    queue.pop();
    now = active.end;
    ++idle;
    result.busy_time += active.end - active.start;

    CompletionRecord record;
    record.time = now;
    record.trial_id = active.job.trial_id;
    record.from_resource = active.job.from_resource;
    record.to_resource = active.job.to_resource;
    record.rung = active.job.rung;
    record.bracket = active.job.bracket;
    record.dropped = active.dropped;

    if (active.dropped) {
      scheduler_.ReportLost(active.job);
      ++result.jobs_dropped;
    } else {
      record.loss = environment_.Loss(active.job.config, active.job.to_resource);
      scheduler_.ReportResult(active.job, record.loss);
      ++result.jobs_completed;
    }
    result.completions.push_back(record);
    note_recommendation();

    if (options_.max_completed_jobs > 0 &&
        result.jobs_completed >= options_.max_completed_jobs) {
      break;
    }
    if (scheduler_.Finished()) break;
    dispatch_idle_workers();
  }

  result.end_time = now;
  return result;
}

}  // namespace hypertune
