#include "sim/driver.h"

#include <utility>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

// Cold twin of the dispatch-path positivity check: keeps the ostringstream
// machinery out of the dispatch loop's instruction stream.
[[gnu::noinline]] void FailNonPositiveDuration(double base) {
  HT_CHECK_MSG(base > 0, "job duration must be positive, got " << base);
}

}  // namespace

// The run loop, templated over the event-queue engine. Everything the
// tuning algorithms observe — lease order, completion order, worker
// assignment, clock advances — is independent of Queue: both engines pop
// in identical (end, seq) order. All mutable per-run state lives in
// `context`, already reset by the caller; reusing a context across runs
// changes only where the storage comes from, never a byte of output.
template <typename Queue>
DriverResult SimulationDriver::RunLoop(Queue& queue, SimContext& context) {
  Scheduler& scheduler = scheduler_;
  JobEnvironment& environment = environment_;
  const DriverOptions& options = options_;
  HazardInjector hazards(options.hazards, options.seed);
  // Disabled hazards consume no randomness, so skipping Plan() entirely
  // leaves the fate sequence (there is none) unchanged.
  const bool hazards_on = hazards.enabled();
  DriverResult result;
  Telemetry* const telemetry = options.telemetry;
  VirtualClock* const vclock =
      telemetry != nullptr ? telemetry->virtual_clock() : nullptr;
  TrialLifecycle lifecycle(scheduler,
                           {.telemetry = telemetry,
                            .emit_spans = true,
                            .span_profile = SpanProfile::kFull,
                            .completed_counter = "driver.jobs_completed",
                            .lost_counter = "driver.jobs_dropped",
                            .track_recommendations =
                                options.track_recommendations,
                            .emit_recommendation_events =
                                options.track_recommendations,
                            .record_runs = options.record_runs,
                            .batch_telemetry = options.batch_telemetry});

  const auto workers = static_cast<std::size_t>(options.num_workers);
  // Slots past the worker count keep their (stale) contents; resize only
  // grows, so reused Configuration capacity in live slots survives.
  std::vector<SimContext::Slot>& slab = context.slab_;
  if (slab.size() < workers) slab.resize(workers);
  // When each worker last became free (for RunRecord::queue_wait). Nothing
  // reads queue_wait when records and telemetry are both off, so the
  // throughput path skips the per-job traffic on this array entirely.
  const bool need_timing = options.record_runs || telemetry != nullptr;
  std::vector<double>& free_since = context.free_since_;
  free_since.assign(workers, 0.0);
  // Lowest-index-first worker assignment keeps trace tracks deterministic.
  IdleWorkerSet& idle_workers = context.idle_workers_;
  idle_workers.Reset(options.num_workers);
  double now = 0;
  std::uint64_t seq = 0;

  auto dispatch_idle_workers = [&] {
    if (vclock != nullptr) vclock->Set(now);
    while (!idle_workers.empty()) {
      // Claim the lowest free worker before leasing so the job lands
      // straight in its slab slot; re-inserting the same lowest index on
      // a dry scheduler restores the set exactly.
      const int worker = idle_workers.PopLowest();
      const auto slot = static_cast<std::size_t>(worker);
      SimContext::Slot& active = slab[slot];
      if (!lifecycle.AcquireInto(active.lease)) {
        idle_workers.Insert(worker);
        break;  // no work right now; retry after the next event
      }
      const double base = environment.Duration(active.lease.job.config,
                                               active.lease.job.from_resource,
                                               active.lease.job.to_resource);
      if (!(base > 0)) [[unlikely]] FailNonPositiveDuration(base);
      double end_after = base;
      bool dropped = false;
      if (hazards_on) {
        const HazardPlan plan = hazards.Plan(base);
        end_after = plan.end_after();
        dropped = plan.dropped();
      }
      active.start = now;
      if (need_timing) active.queue_wait = now - free_since[slot];
      active.dropped = dropped;
      queue.Push({now + end_after, seq++, static_cast<std::uint32_t>(worker)});
    }
  };

  dispatch_idle_workers();
  while (!queue.empty()) {
    const SimEvent event = queue.Top();
    if (event.end > options.time_limit) break;  // budget exhausted
    queue.PopTop();
    now = event.end;
    if (vclock != nullptr) vclock->Set(now);
    const int worker = static_cast<int>(event.slot);
    SimContext::Slot& active = slab[event.slot];
    idle_workers.Insert(worker);
    if (need_timing) free_since[event.slot] = now;
    result.busy_time += now - active.start;

    const RunTiming timing{active.start, now, active.queue_wait, worker};
    if (active.dropped) {
      lifecycle.Lose(active.lease, timing);
    } else {
      const double loss = environment.Loss(active.lease.job.config,
                                           active.lease.job.to_resource);
      lifecycle.Complete(active.lease, loss, timing);
    }

    if (options.max_completed_jobs > 0 &&
        lifecycle.completed_jobs() >= options.max_completed_jobs) {
      break;
    }
    if (scheduler.Finished()) break;
    dispatch_idle_workers();
  }

  result.jobs_in_flight = queue.size();
  result.end_time = now;
  result.jobs_completed = lifecycle.completed_jobs();
  result.jobs_dropped = lifecycle.lost_jobs();
  result.completions = lifecycle.TakeRecords();
  result.recommendations = lifecycle.TakeRecommendations();
  lifecycle.FlushTelemetry();
  if (telemetry != nullptr) {
    auto& metrics = telemetry->metrics();
    if (result.jobs_in_flight > 0) {
      metrics.counter("driver.jobs_stranded")
          .Increment(static_cast<std::int64_t>(result.jobs_in_flight));
    }
    metrics.gauge("driver.end_time").Set(result.end_time);
    if (result.end_time > 0) {
      metrics.gauge("driver.worker_utilization")
          .Set(result.busy_time /
               (static_cast<double>(options.num_workers) * result.end_time));
    }
  }
  return result;
}

SimulationDriver::SimulationDriver(Scheduler& scheduler,
                                   JobEnvironment& environment,
                                   DriverOptions options)
    : scheduler_(scheduler), environment_(environment), options_(options) {
  HT_CHECK(options_.num_workers > 0);
  HT_CHECK(options_.time_limit > 0);
}

DriverResult SimulationDriver::Run() {
  SimContext context;
  return Run(context);
}

DriverResult SimulationDriver::Run(SimContext& context) {
  if (options_.event_queue == SimEngine::kCalendar) {
    context.calendar_.Reset(
        {.expected_events = static_cast<std::size_t>(options_.num_workers),
         .skip_ahead = options_.skip_ahead});
    return RunLoop(context.calendar_, context);
  }
  context.heap_.Clear();
  context.heap_.Reserve(static_cast<std::size_t>(options_.num_workers));
  return RunLoop(context.heap_, context);
}

}  // namespace hypertune
