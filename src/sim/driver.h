// The event-driven simulation driver: couples any Scheduler to a pool of
// virtual workers executing jobs in a JobEnvironment, with optional
// straggler/drop hazards, and records everything the paper's figures plot.
//
// This replaces the paper's physical clusters (25 AWS g2.2xlarge workers,
// 16 GPUs, 500 Vizier workers): the tuning algorithms observe exactly the
// same information — job hand-outs, completion times, losses — so their
// relative behaviour (promotion stalls, straggler sensitivity, linear
// scaling) is preserved while runs stay deterministic and fast.
//
// The driver is a thin adapter over the shared trial-lifecycle core
// (src/lifecycle): TrialLifecycle owns leasing, outcome validation,
// RunRecord/recommendation recording, and job-span emission; the driver
// contributes what is backend-specific — virtual time, the event queue,
// and deterministic lowest-free-index worker assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler.h"
#include "lifecycle/hazards.h"
#include "lifecycle/lifecycle.h"
#include "lifecycle/run_record.h"
#include "sim/environment.h"
#include "sim/event_queue.h"

namespace hypertune {

class Telemetry;

/// Which event-queue implementation orders completions (see
/// src/sim/event_queue.h). Both pop in exactly ascending (end, seq) order —
/// a property test holds them to identical pop sequences — so decisions,
/// records, and traces are byte-identical across engines.
enum class SimEngine {
  /// Array binary min-heap: O(log n) per event, the safe default.
  kBinaryHeap,
  /// Brown's calendar queue: amortized O(1) per event when completion
  /// times are spread evenly (the tabular-benchmark regime).
  kCalendar,
};

struct DriverOptions {
  int num_workers = 1;
  /// Virtual-time budget; events after this instant are not processed.
  double time_limit = 1e18;
  HazardOptions hazards;
  /// Seed for straggler/drop draws (independent of the scheduler's stream).
  std::uint64_t seed = 99;
  /// Stop early once this many jobs have completed (0 = no cap).
  std::size_t max_completed_jobs = 0;
  /// Optional observability sink (not owned; must outlive the run). The
  /// driver advances the sink's virtual clock to each event's virtual time
  /// before touching the scheduler, emits one span per job on the executing
  /// worker's track plus recommendation-change instants, and fills
  /// driver.* counters/gauges. With a virtual-clock sink and a fixed seed
  /// the recorded trace is byte-identical across reruns.
  Telemetry* telemetry = nullptr;
  /// Event-queue engine; changes throughput, never decisions.
  SimEngine event_queue = SimEngine::kBinaryHeap;
  /// Calendar engine only: when the current virtual "day" holds no due
  /// event, jump the cursor straight to the next event instead of stepping
  /// day by day across the idle gap.
  bool skip_ahead = true;
  /// Keep one RunRecord per resolved job in DriverResult::completions.
  /// Throughput harnesses (bench/micro_sim) turn this off; counters and
  /// recommendations are unaffected.
  bool record_runs = true;
  /// Record the incumbent trajectory (DriverResult::recommendations) and
  /// emit recommendation-change instants. Throughput harnesses turn this
  /// off to skip the per-completion Scheduler::Current() query.
  bool track_recommendations = true;
  /// Defer span/instant emissions and counter bumps into a per-run buffer
  /// flushed at sync points instead of paying Json assembly plus a tracer
  /// lock per job (see EventTracer::BatchSource). Exports are
  /// byte-identical to the unbatched path.
  bool batch_telemetry = true;
};

struct DriverResult {
  /// One record per resolved job (completions and hazard drops), in
  /// virtual-completion order.
  std::vector<RunRecord> completions;
  std::vector<RecommendationPoint> recommendations;
  double end_time = 0;
  /// Total worker-busy virtual time (for utilization checks).
  double busy_time = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_dropped = 0;
  /// Jobs still occupying workers when Run() stopped (time limit reached,
  /// max_completed_jobs hit, or the scheduler finished mid-flight). These
  /// leases were never resolved, so they appear in no other tally; when
  /// positive, the driver.jobs_stranded counter records the same value.
  std::size_t jobs_in_flight = 0;
};

/// Reusable cross-run storage for SimulationDriver — the event queues, the
/// payload slab (each slot's Configuration capacity included), the idle
/// bitmap, and the per-worker timing buffer. A sweep keeps one context per
/// thread and passes it to Run() for every cell, so storage is allocated
/// once per thread instead of once per run; Run() resets the contents, the
/// capacity survives. Runs using a context are byte-identical to runs
/// without one (pinned by test). Not thread-safe: one context serves one
/// run at a time.
class SimContext {
 public:
  SimContext() = default;
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

 private:
  friend class SimulationDriver;

  /// Everything a scheduled job carries besides its (end, seq) ordering
  /// key, indexed by worker slot — the simulator runs at most one job per
  /// worker — so the event queues sift only 20-byte SimEvents and the Job
  /// payload (Configuration included) is written once and never moved.
  struct Slot {
    LeasedJob lease;
    double start = 0;
    double queue_wait = 0;  // worker idle time before this job started
    bool dropped = false;
  };

  BinaryEventHeap heap_;
  CalendarEventQueue calendar_;
  std::vector<Slot> slab_;
  std::vector<double> free_since_;  // when each worker last became free
  IdleWorkerSet idle_workers_{1};
};

class SimulationDriver {
 public:
  SimulationDriver(Scheduler& scheduler, JobEnvironment& environment,
                   DriverOptions options);

  /// Runs until the time limit, the scheduler finishes, or the system goes
  /// idle with no dispatchable work.
  DriverResult Run();

  /// Same run, drawing all per-run storage from `context` (reset here, so
  /// any prior contents are discarded). Results are identical to Run().
  DriverResult Run(SimContext& context);

 private:
  template <typename Queue>
  DriverResult RunLoop(Queue& queue, SimContext& context);

  Scheduler& scheduler_;
  JobEnvironment& environment_;
  DriverOptions options_;
};

}  // namespace hypertune
