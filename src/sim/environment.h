// The simulator's view of "training a model": something that can say how
// long a job takes and what validation loss it produces. Surrogate
// benchmarks (src/surrogate) implement this; tests use tiny synthetic ones.
#pragma once

#include "core/types.h"
#include "searchspace/configuration.h"

namespace hypertune {

class JobEnvironment {
 public:
  virtual ~JobEnvironment() = default;

  /// Validation loss observed once `config` has been trained to `resource`.
  /// Implementations must be deterministic in (config, resource) within one
  /// environment instance so that re-evaluations are consistent.
  virtual double Loss(const Configuration& config, Resource resource) = 0;

  /// Base virtual-time duration of training `config` from `from` to `to`
  /// resource units, before straggler effects. `from` > 0 means the job
  /// resumes from a checkpoint.
  virtual double Duration(const Configuration& config, Resource from,
                          Resource to) = 0;
};

}  // namespace hypertune
