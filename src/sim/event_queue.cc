#include "sim/event_queue.h"

#include <bit>
#include <cstdlib>
#include <limits>

namespace hypertune {

namespace {

std::size_t NextPow2(std::size_t n) {
  if (n < 2) return 2;
  return std::size_t{1} << std::bit_width(n - 1);
}

}  // namespace

CalendarEventQueue::CalendarEventQueue(CalendarQueueOptions options) {
  Reset(options);
}

void CalendarEventQueue::Reset(CalendarQueueOptions options) {
  skip_ahead_ = options.skip_ahead;
  std::size_t buckets = NextPow2(2 * options.expected_events);
  if (buckets < 16) buckets = 16;
  if (buckets > (std::size_t{1} << 16)) buckets = std::size_t{1} << 16;
  // Shrinking keeps the larger calendar: each bucket vector retains its
  // capacity, which is the whole point of reuse, and extra buckets only
  // spread events thinner.
  if (buckets > buckets_.size()) buckets_.resize(buckets);
  for (auto& bucket : buckets_) bucket.clear();
  mask_ = buckets_.size() - 1;
  width_ = 1.0;
  cur_day_ = 0;
  floor_ = 0;
  size_ = 0;
  adapt_threshold_ = 64;
  pushes_ = 0;
  cache_valid_ = false;
}

void CalendarEventQueue::FailBelowFloor(double end) const {
  HT_CHECK_MSG(end >= floor_, "event time " << end
                                            << " precedes simulation time "
                                            << floor_);
  std::abort();  // unreachable: the check above always throws
}

void CalendarEventQueue::AdaptWidth() {
  adapt_threshold_ = 2 * size_;
  if (size_ < 2) return;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& bucket : buckets_) {
    for (const auto& event : bucket) {
      lo = event.end < lo ? event.end : lo;
      hi = event.end > hi ? event.end : hi;
    }
  }
  const double width = (hi - lo) / static_cast<double>(size_);
  if (!(width > 1e-12)) return;  // degenerate spread: keep the current width
  // Rehash every event under the new width.
  std::vector<SimEvent> events;
  events.reserve(size_);
  for (auto& bucket : buckets_) {
    events.insert(events.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  width_ = width;
  cur_day_ = DayOf(floor_);
  for (const auto& event : events) {
    buckets_[DayOf(event.end) & mask_].push_back(event);
  }
  cache_valid_ = false;
}

void CalendarEventQueue::DirectSearch() const {
  const SimEvent* best = nullptr;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      const SimEvent& event = buckets_[b][i];
      if (best == nullptr || EventBefore(event, *best)) {
        best = &event;
        cache_bucket_ = b;
        cache_pos_ = i;
      }
    }
  }
  HT_CHECK(best != nullptr);
  cache_valid_ = true;
}

void CalendarEventQueue::Locate() const {
  HT_CHECK(size_ > 0);
  // Step the day cursor forward looking for a due event. Without
  // skip-ahead this is the classic calendar-queue walk (direct search only
  // after a full calendar wrap); with skip-ahead an idle gap triggers the
  // direct jump after a couple of empty days.
  const std::size_t max_empty_days = skip_ahead_ ? 2 : buckets_.size();
  std::uint64_t day = cur_day_;
  for (std::size_t scanned = 0; scanned < max_empty_days; ++scanned, ++day) {
    const auto& bucket = buckets_[day & mask_];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (DayOf(bucket[i].end) != day) continue;
      if (!found || EventBefore(bucket[i], bucket[best])) {
        best = i;
        found = true;
      }
    }
    if (found) {
      cache_bucket_ = day & mask_;
      cache_pos_ = best;
      cache_valid_ = true;
      return;
    }
  }
  DirectSearch();
}

IdleWorkerSet::IdleWorkerSet(int n) { Reset(n); }

void IdleWorkerSet::Reset(int n) {
  HT_CHECK(n > 0);
  const std::size_t workers = static_cast<std::size_t>(n);
  words_.assign((workers + 63) / 64, ~std::uint64_t{0});
  // Clear the bits past n-1 in the last word.
  const std::size_t tail = workers % 64;
  if (tail != 0) words_.back() = (std::uint64_t{1} << tail) - 1;
  summary_.assign((words_.size() + 63) / 64, 0);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    summary_[w / 64] |= std::uint64_t{1} << (w % 64);
  }
  count_ = workers;
}

}  // namespace hypertune
