// Index-based event queues for the simulation engine.
//
// The driver used to keep whole ActiveJob payloads (a Job, Configuration
// included) inside a std::priority_queue, so every heap sift moved fat,
// heap-allocating objects. The engine now keeps payloads in a slab indexed
// by worker slot and orders only 20-byte {end, seq, slot} events. Two
// implementations share one ordering contract:
//
//   * BinaryEventHeap — a plain array binary min-heap; the safe default.
//   * CalendarEventQueue — Brown's calendar queue: events hash into
//     bucketed "days" by end time, so push and pop are O(1) when event
//     times are spread evenly (the zero-cost-benchmark regime). A
//     skip-ahead mode jumps the day cursor directly to the next event
//     instead of stepping day by day across idle gaps.
//
// Both pop in exactly ascending (end, seq) order — `seq` is the driver's
// FIFO tie-break for same-tick completions — and a property test
// (tests/sim_engine_test.cc) holds them to identical pop sequences on
// randomized event mixes. Precondition shared with the simulator: time is
// monotone, i.e. every pushed event's `end` is >= the last popped `end`.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace hypertune {

/// One scheduled completion: when (`end`), FIFO rank (`seq`), and which
/// slab slot holds the job payload (the executing worker's index).
struct SimEvent {
  double end = 0;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
};

/// The total order both queues pop in: by end time, FIFO within a tick.
inline bool EventBefore(const SimEvent& a, const SimEvent& b) {
  if (a.end != b.end) return a.end < b.end;
  return a.seq < b.seq;
}

class BinaryEventHeap {
 public:
  void Reserve(std::size_t n) { events_.reserve(n); }

  /// Empties the heap keeping its capacity — sweep contexts reuse one heap
  /// across thousands of runs instead of reallocating per run.
  void Clear() { events_.clear(); }

  // Push/PopTop are defined inline: they run once per simulated job and a
  // cross-TU call costs as much as the sift itself at small queue sizes.
  void Push(const SimEvent& event) {
    events_.push_back(event);
    std::size_t i = events_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!EventBefore(events_[i], events_[parent])) break;
      std::swap(events_[i], events_[parent]);
      i = parent;
    }
  }

  /// Smallest (end, seq) event; queue must be non-empty.
  const SimEvent& Top() const {
    HT_CHECK(!events_.empty());
    return events_.front();
  }

  void PopTop() {
    HT_CHECK(!events_.empty());
    events_.front() = events_.back();
    events_.pop_back();
    const std::size_t n = events_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      const std::size_t smallest =
          (right < n && EventBefore(events_[right], events_[left])) ? right
                                                                    : left;
      if (!EventBefore(events_[smallest], events_[i])) break;
      std::swap(events_[i], events_[smallest]);
      i = smallest;
    }
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<SimEvent> events_;  // implicit binary min-heap
};

struct CalendarQueueOptions {
  /// Expected concurrent event count (the driver passes its worker count);
  /// the bucket count is sized to ~2x this, rounded up to a power of two.
  std::size_t expected_events = 64;
  /// When the current day's bucket holds no due event, jump the cursor
  /// straight to the global minimum instead of stepping day by day.
  bool skip_ahead = true;
};

class CalendarEventQueue {
 public:
  explicit CalendarEventQueue(CalendarQueueOptions options = {});

  /// Reinitializes for a fresh run (time restarts at 0), reusing the bucket
  /// storage whenever the requested sizing keeps the same bucket count.
  void Reset(CalendarQueueOptions options);

  // Push/Top/PopTop are inline for the same reason as BinaryEventHeap's;
  // the searches they lean on (Locate/DirectSearch/AdaptWidth) stay
  // out of line.
  void Push(const SimEvent& event) {
    if (!(event.end >= floor_)) [[unlikely]] FailBelowFloor(event.end);
    if (size_ >= adapt_threshold_ || ++pushes_ == 64) AdaptWidth();
    const std::size_t bucket = DayOf(event.end) & mask_;
    buckets_[bucket].push_back(event);
    ++size_;
    if (cache_valid_ &&
        EventBefore(event, buckets_[cache_bucket_][cache_pos_])) {
      cache_bucket_ = bucket;
      cache_pos_ = buckets_[bucket].size() - 1;
    }
  }

  /// Smallest (end, seq) event; queue must be non-empty. The located
  /// position is cached, so a Top/PopTop pair costs one search.
  const SimEvent& Top() const {
    if (!cache_valid_) Locate();
    return buckets_[cache_bucket_][cache_pos_];
  }

  void PopTop() {
    if (!cache_valid_) Locate();
    auto& bucket = buckets_[cache_bucket_];
    const SimEvent top = bucket[cache_pos_];
    cur_day_ = DayOf(top.end);
    floor_ = top.end;
    bucket[cache_pos_] = bucket.back();
    bucket.pop_back();
    --size_;
    cache_valid_ = false;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  std::uint64_t DayOf(double end) const {
    const double day = end / width_;
    // Events beyond the representable day range all land on the last day;
    // ordering stays correct (the in-day scan compares (end, seq)
    // exactly), only bucket balance suffers.
    if (day >= 9.0e18) return std::uint64_t{9000000000000000000ull};
    return static_cast<std::uint64_t>(day);
  }

  [[noreturn]] void FailBelowFloor(double end) const;  // cold path
  void Locate() const;        // fills the top cache
  void DirectSearch() const;  // global min scan (the skip-ahead jump)
  void AdaptWidth();          // width re-tuning, run on size doublings

  std::vector<std::vector<SimEvent>> buckets_;
  std::size_t mask_ = 0;       // buckets_.size() - 1 (power of two)
  double width_ = 1.0;         // virtual-time span of one day
  std::uint64_t cur_day_ = 0;  // day of the last popped event
  double floor_ = 0;           // last popped end (monotone-time guard)
  std::size_t size_ = 0;
  // Re-tune the width when the live event count doubles past this (a
  // 64-event sample is enough for the first estimate; each re-tune costs
  // O(size), so doubling thresholds keep it amortized O(1) per push).
  std::size_t adapt_threshold_ = 64;
  std::size_t pushes_ = 0;  // trigger for the first (64-push-sample) tune
  bool skip_ahead_ = true;

  // Top cache: position of the minimum event, valid until the next PopTop
  // (pushes keep it correct — they only append, and a new minimum simply
  // replaces the cached position).
  mutable bool cache_valid_ = false;
  mutable std::size_t cache_bucket_ = 0;
  mutable std::size_t cache_pos_ = 0;
};

/// The idle-worker pool: a two-level bitmap with O(1) lowest-free-index pop,
/// replacing the std::set<int> (one node allocation per insert) while
/// preserving the deterministic lowest-index-first assignment order.
class IdleWorkerSet {
 public:
  /// All of 0..n-1 start idle.
  explicit IdleWorkerSet(int n);

  /// Re-marks all of 0..n-1 idle, reusing the bitmap storage when `n` does
  /// not outgrow it.
  void Reset(int n);

  // Inline like the event queues: one Insert/PopLowest pair per job.
  void Insert(int worker) {
    const auto w = static_cast<std::size_t>(worker);
    words_[w / 64] |= std::uint64_t{1} << (w % 64);
    summary_[(w / 64) / 64] |= std::uint64_t{1} << ((w / 64) % 64);
    ++count_;
  }

  /// Removes and returns the lowest idle index; set must be non-empty.
  int PopLowest() {
    HT_CHECK(count_ > 0);
    std::size_t group = 0;
    while (summary_[group] == 0) ++group;
    const std::size_t word =
        group * 64 +
        static_cast<std::size_t>(std::countr_zero(summary_[group]));
    const auto bit = static_cast<std::size_t>(std::countr_zero(words_[word]));
    words_[word] &= words_[word] - 1;  // clear lowest set bit
    if (words_[word] == 0) {
      summary_[group] &= ~(std::uint64_t{1} << (word % 64));
    }
    --count_;
    return static_cast<int>(word * 64 + bit);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

 private:
  std::vector<std::uint64_t> words_;    // bit per worker
  std::vector<std::uint64_t> summary_;  // bit per non-empty word
  std::size_t count_ = 0;
};

}  // namespace hypertune
