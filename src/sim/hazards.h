// Failure injection for the cluster simulator, following Appendix A.1:
//   * stragglers — a job's expected duration is multiplied by (1 + |z|),
//     z ~ N(0, straggler_std);
//   * dropped jobs — each running job is dropped with probability
//     `drop_probability` per unit of virtual time (so a job of length d
//     survives with probability (1 - p)^d).
#pragma once

#include <optional>

#include "common/rng.h"

namespace hypertune {

struct HazardOptions {
  /// Standard deviation of the half-normal straggler multiplier; 0 disables.
  double straggler_std = 0.0;
  /// Per-time-unit drop probability in [0, 1); 0 disables.
  double drop_probability = 0.0;
};

class HazardModel {
 public:
  explicit HazardModel(HazardOptions options);

  /// Multiplier >= 1 applied to a job's base duration.
  double StragglerMultiplier(Rng& rng) const;

  /// Time (from job start) at which the job is dropped, or nullopt if it
  /// survives the full `duration`. The drop clock is exponential with rate
  /// -ln(1 - p), the continuous-time equivalent of a per-unit Bernoulli.
  std::optional<double> DropTime(double duration, Rng& rng) const;

  const HazardOptions& options() const { return options_; }

 private:
  HazardOptions options_;
  double drop_rate_ = 0.0;  // -ln(1 - p)
};

}  // namespace hypertune
