// The stock StudySchedulerFactory: builds a study's scheduler from its creation
// config over one fixed search space. Deployments with richer needs (per
// study search spaces, custom scheduler kinds) supply their own factory;
// this one covers the CLI, the smoke tools, and the tests.

#include <memory>
#include <utility>

#include "core/asha.h"
#include "core/async_hyperband.h"
#include "core/random_search.h"
#include "core/sampler.h"
#include "core/sha.h"
#include "study/study_manager.h"

namespace hypertune {

namespace {

std::int64_t GetInt(const Json& config, const char* key, std::int64_t fallback) {
  return config.Has(key) ? config.at(key).AsInt() : fallback;
}

double GetDouble(const Json& config, const char* key, double fallback) {
  return config.Has(key) ? config.at(key).AsDouble() : fallback;
}

}  // namespace

StudySchedulerFactory MakeStudySchedulerFactory(SearchSpace space) {
  // The factory is copied into every call, so the space is shared, not
  // rebuilt per study.
  return [space = std::move(space)](
             const Json& config) -> std::unique_ptr<Scheduler> {
    if (!config.IsObject()) return nullptr;
    const std::string kind =
        config.Has("kind") ? config.at("kind").AsString() : "random";
    const auto seed = static_cast<std::uint64_t>(GetInt(config, "seed", 1));
    if (kind == "asha") {
      AshaOptions options;
      options.r = GetDouble(config, "r", 1);
      options.R = GetDouble(config, "R", 81);
      options.eta = GetDouble(config, "eta", 3);
      options.max_trials = GetInt(config, "max_trials", 300);
      options.seed = seed;
      return std::make_unique<AshaScheduler>(MakeRandomSampler(space),
                                             options);
    }
    if (kind == "sha") {
      ShaOptions options;
      options.n = static_cast<int>(GetInt(config, "n", 81));
      options.r = GetDouble(config, "r", 1);
      options.R = GetDouble(config, "R", 81);
      options.eta = GetDouble(config, "eta", 3);
      options.spawn_new_brackets = false;
      options.seed = seed;
      return std::make_unique<SyncShaScheduler>(MakeRandomSampler(space),
                                                options);
    }
    if (kind == "hyperband") {
      AsyncHyperbandOptions options;
      options.n0 = static_cast<int>(GetInt(config, "n0", 81));
      options.r = GetDouble(config, "r", 1);
      options.R = GetDouble(config, "R", 81);
      options.eta = GetDouble(config, "eta", 3);
      options.seed = seed;
      return std::make_unique<AsyncHyperbandScheduler>(
          MakeRandomSampler(space), options);
    }
    if (kind == "random") {
      RandomSearchOptions options;
      options.R = GetDouble(config, "R", 81);
      options.max_trials = GetInt(config, "max_trials", -1);
      options.seed = seed;
      return std::make_unique<RandomSearchScheduler>(MakeRandomSampler(space),
                                                     options);
    }
    return nullptr;  // unknown kind: reject
  };
}

}  // namespace hypertune
