#include "study/study_manager.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "telemetry/telemetry.h"

namespace hypertune {

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), "cannot read '" << path << "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Study names double as directory names, so the charset is the portable
/// filesystem-safe one. "*" (the any-study sentinel) fails this by
/// construction.
bool ValidStudyName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name == "." || name == "..") return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Json StudyManager::Error(const std::string& text) {
  Json reply = JsonObject{};
  reply.Set("type", Json("error"));
  reply.Set("message", Json(text));
  return reply;
}

Json StudyManager::Ack() {
  Json reply = JsonObject{};
  reply.Set("type", Json("ack"));
  return reply;
}

Json StudyManager::NoJobReply() const {
  Json reply = JsonObject{};
  reply.Set("type", Json("no_job"));
  reply.Set("retry_after", Json(options_.server.lease_timeout / 4));
  return reply;
}

StudyManager::StudyManager(StudySchedulerFactory factory,
                           StudyManagerOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  HT_CHECK_MSG(factory_ != nullptr, "StudyManager requires a factory");
  HT_CHECK_MSG(options_.shards >= 1, "StudyManager requires >= 1 shard");
  HT_CHECK_MSG(options_.server.journal == nullptr,
               "per-study servers install their own journal sinks");
  HT_CHECK_MSG(options_.default_study.empty() ||
                   ValidStudyName(options_.default_study),
               "invalid default study name '" << options_.default_study
                                              << "'");
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (durable()) RecoverStudies();
  if (!options_.default_config.IsNull() && !options_.default_study.empty() &&
      FindServer(options_.default_study) == nullptr) {
    HT_CHECK_MSG(
        CreateStudy(options_.default_study, options_.default_config, 0.0),
        "cannot create default study '" << options_.default_study << "'");
  }
}

StudyManager::~StudyManager() = default;

StudyManager::Shard& StudyManager::ShardFor(const std::string& name) {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

const StudyManager::Shard& StudyManager::ShardFor(
    const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

StudyManager::Study* StudyManager::FindLocked(Shard& shard,
                                              const std::string& name) {
  const auto it = shard.studies.find(name);
  return it == shard.studies.end() ? nullptr : it->second.get();
}

void StudyManager::IndexDeadline(Shard& shard, Study& study) {
  const auto earliest = study.server->EarliestDeadline();
  if (!earliest) return;
  // An entry at or before the current earliest is already queued; it will
  // re-probe the study when it pops. Only a genuinely new (or earlier)
  // deadline needs an entry.
  if (study.indexed_valid && study.indexed_deadline <= *earliest) return;
  shard.deadlines.push({*earliest, study.name});
  study.indexed_deadline = *earliest;
  study.indexed_valid = true;
}

std::string StudyManager::StudyDir(const std::string& name) const {
  return (std::filesystem::path(options_.durability_root) / "studies" / name)
      .string();
}

std::unique_ptr<StudyManager::Study> StudyManager::BuildStudy(
    const std::string& name, Json config, std::size_t max_leases) {
  auto scheduler = factory_(config);
  if (scheduler == nullptr) return nullptr;
  auto study = std::make_unique<Study>();
  study->name = name;
  study->config = std::move(config);
  study->max_leases = max_leases;
  study->scheduler = std::move(scheduler);
  ServerOptions server_options = options_.server;
  server_options.study_label = name;
  if (options_.telemetry != nullptr) {
    server_options.telemetry = options_.telemetry;
  }
  if (durable()) {
    const std::string dir = StudyDir(name);
    std::filesystem::create_directories(dir);
    // The manifest goes down before the server stack: recovery needs the
    // config to rebuild the scheduler, and the journal stores decisions,
    // not configuration. Written once; idempotent across recoveries.
    const std::string manifest_path =
        (std::filesystem::path(dir) / "study.json").string();
    if (!std::filesystem::exists(manifest_path)) {
      Json manifest = JsonObject{};
      manifest.Set("name", Json(name));
      manifest.Set("config", study->config);
      manifest.Set("max_leases",
                   Json(static_cast<std::int64_t>(max_leases)));
      HT_CHECK_MSG(WriteFile(manifest_path, manifest.Dump()),
                   "cannot write study manifest " << manifest_path);
    }
    study->durable = std::make_unique<DurableServer>(
        *study->scheduler, server_options,
        DurabilityOptions{.dir = dir,
                          .sync = options_.sync,
                          .sync_every = options_.sync_every,
                          .snapshot_every = options_.snapshot_every});
    study->service = study->durable.get();
    study->server = &study->durable->server();
  } else {
    study->plain =
        std::make_unique<TuningServer>(*study->scheduler, server_options);
    study->service = study->plain.get();
    study->server = study->plain.get();
  }
  return study;
}

void StudyManager::RecoverStudies() {
  const std::filesystem::path root =
      std::filesystem::path(options_.durability_root) / "studies";
  std::filesystem::create_directories(root);
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    const std::filesystem::path dir = entry.path();
    const std::string name = dir.filename().string();
    if (std::filesystem::exists(dir / "tombstone")) {
      // A delete crashed after its tombstone but before the removal:
      // finish it. The tombstone is the durable commit point.
      std::filesystem::remove_all(dir);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.tombstones_completed;
      continue;
    }
    if (!std::filesystem::exists(dir / "study.json")) {
      // A create crashed before its manifest: the study never durably
      // existed. Clear the debris.
      std::filesystem::remove_all(dir);
      continue;
    }
    const Json manifest =
        Json::Parse(ReadWholeFile((dir / "study.json").string()));
    HT_CHECK_MSG(manifest.at("name").AsString() == name,
                 "study manifest in " << dir.string() << " names '"
                                      << manifest.at("name").AsString()
                                      << "'");
    auto study = BuildStudy(
        name, manifest.at("config"),
        static_cast<std::size_t>(manifest.at("max_leases").AsInt()));
    HT_CHECK_MSG(study != nullptr,
                 "factory rejected persisted config for study '" << name
                                                                 << "'");
    const std::string state_path = (dir / "state.json").string();
    if (std::filesystem::exists(state_path)) {
      const Json state = Json::Parse(ReadWholeFile(state_path));
      if (state.at("suspended").AsBool()) {
        study->suspended = true;
        study->suspended_at = state.at("suspended_at").AsDouble();
        study->server->SetFrozen(true);
      }
    }
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    Study& ref = *study;
    shard.studies.emplace(name, std::move(study));
    if (!ref.suspended) IndexDeadline(shard, ref);
    ++study_count_;
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.recovered;
  }
}

void StudyManager::WriteStateFile(const Study& study) const {
  Json state = JsonObject{};
  state.Set("suspended", Json(study.suspended));
  state.Set("suspended_at", Json(study.suspended_at));
  const std::string path =
      (std::filesystem::path(StudyDir(study.name)) / "state.json").string();
  HT_CHECK_MSG(WriteFile(path, state.Dump()),
               "cannot write study state " << path);
}

void StudyManager::EmitAdminEvent(const char* event, const char* counter,
                                  const std::string& study, double now) {
  if (options_.telemetry == nullptr) return;
  options_.telemetry->AdvanceTo(now);
  Json args = JsonObject{};
  args.Set("study", Json(study));
  options_.telemetry->EventAt(now, event, "study", std::move(args));
  options_.telemetry->Count(counter);
}

bool StudyManager::CreateStudy(const std::string& name, const Json& config,
                               double now,
                               std::optional<std::size_t> max_leases) {
  if (!ValidStudyName(name)) return false;
  const std::size_t quota =
      max_leases.value_or(options_.default_max_leases);
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.studies.count(name) != 0) return false;
  auto study = BuildStudy(name, config, quota);
  if (study == nullptr) return false;
  shard.studies.emplace(name, std::move(study));
  ++study_count_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.created;
  }
  EmitAdminEvent("study_created", "studies.created", name, now);
  return true;
}

bool StudyManager::SuspendStudy(const std::string& name, double now) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Study* study = FindLocked(shard, name);
  if (study == nullptr) return false;
  if (study->suspended) return true;  // idempotent
  study->suspended = true;
  study->suspended_at = now;
  // Freeze before anything else can tick: reports and heartbeats are still
  // accepted while suspended (finished work must not be dropped), and the
  // server ticks internally on every message — frozen means those ticks
  // cannot expire the paused leases.
  study->server->SetFrozen(true);
  if (durable()) WriteStateFile(*study);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.suspended;
  }
  EmitAdminEvent("study_suspended", "studies.suspended", name, now);
  return true;
}

bool StudyManager::ResumeStudy(const std::string& name, double now) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Study* study = FindLocked(shard, name);
  if (study == nullptr) return false;
  if (!study->suspended) return true;  // idempotent
  const double delta = now - study->suspended_at;
  if (delta > 0) {
    if (study->durable != nullptr) {
      // Journaled control record: replay must reproduce the shifted
      // deadlines, or recovery would expire every lease that was frozen
      // across the suspension. JournalControl also applies the shift.
      Json record = JsonObject{};
      record.Set("kind", Json("shift"));
      record.Set("delta", Json(delta));
      record.Set("now", Json(now));
      study->durable->JournalControl(record);
    } else {
      study->server->ShiftDeadlines(delta);
    }
  }
  study->server->SetFrozen(false);
  study->suspended = false;
  study->suspended_at = 0;
  if (durable()) WriteStateFile(*study);
  IndexDeadline(shard, *study);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.resumed;
  }
  EmitAdminEvent("study_resumed", "studies.resumed", name, now);
  return true;
}

bool StudyManager::DeleteStudy(const std::string& name, double now) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.studies.find(name);
  if (it == shard.studies.end()) return false;
  if (durable()) {
    // Tombstone first: once this write is durable the delete is committed —
    // a crash anywhere after it finishes the removal on recovery. Without
    // it, a crash mid-remove_all could resurrect half a study.
    const std::string marker =
        (std::filesystem::path(StudyDir(name)) / "tombstone").string();
    HT_CHECK_MSG(WriteFile(marker, "{}"),
                 "cannot write tombstone " << marker);
  }
  shard.studies.erase(it);  // closes the study's journal writer
  if (durable()) std::filesystem::remove_all(StudyDir(name));
  --study_count_;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.deleted;
  }
  EmitAdminEvent("study_deleted", "studies.deleted", name, now);
  return true;
}

std::vector<StudyInfo> StudyManager::ListStudies() const {
  std::vector<StudyInfo> infos;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, study] : shard->studies) {
      StudyInfo info;
      info.name = name;
      info.suspended = study->suspended;
      info.max_leases = study->max_leases;
      const ServerStats stats = study->server->stats();
      info.active_leases = stats.active_leases;
      info.jobs_assigned = stats.jobs_assigned;
      info.jobs_completed = stats.jobs_completed;
      infos.push_back(std::move(info));
    }
  }
  std::sort(infos.begin(), infos.end(),
            [](const StudyInfo& a, const StudyInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

StudyManagerStats StudyManager::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  StudyManagerStats stats = stats_;
  stats.studies = study_count_.load();
  return stats;
}

std::size_t StudyManager::study_count() const { return study_count_.load(); }

TuningServer* StudyManager::FindServer(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Study* study = FindLocked(shard, name);
  return study == nullptr ? nullptr : study->server;
}

Scheduler* StudyManager::FindScheduler(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Study* study = FindLocked(shard, name);
  return study == nullptr ? nullptr : study->scheduler.get();
}

void StudyManager::Tick(double now) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    while (!shard.deadlines.empty() &&
           shard.deadlines.top().deadline <= now) {
      const DeadlineEntry entry = shard.deadlines.top();
      shard.deadlines.pop();
      Study* study = FindLocked(shard, entry.study);
      if (study == nullptr) continue;  // deleted: stale entry
      if (!study->indexed_valid ||
          study->indexed_deadline != entry.deadline) {
        continue;  // superseded by a newer entry: stale
      }
      study->indexed_valid = false;
      // The satellite contract: a suspended study's leases are frozen, so
      // the idle-expiry timer driving this Tick must skip it entirely.
      // Resume re-indexes the study.
      if (study->suspended) continue;
      const auto earliest = study->server->EarliestDeadline();
      if (!earliest) continue;
      if (*earliest <= now) study->service->Tick(now);
      IndexDeadline(shard, *study);
    }
  }
}

Json StudyManager::HandleScoped(const std::string& type, const Json& message,
                                const std::string& study_name, double now) {
  Shard& shard = ShardFor(study_name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Study* study = FindLocked(shard, study_name);
  if (study == nullptr) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.unknown_study_errors;
    return Error("unknown study '" + study_name + "'");
  }
  const bool is_request = type == "request_job" || type == "request_jobs";
  if (is_request && study->suspended) return NoJobReply();
  if (is_request && study->max_leases > 0) {
    // Expire what is due before counting against the quota, so a worker is
    // never starved by leases that are already dead.
    study->service->Tick(now);
    const std::size_t active = study->server->stats().active_leases;
    if (active >= study->max_leases) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.quota_denials;
      return NoJobReply();
    }
    const std::size_t remaining = study->max_leases - active;
    if (type == "request_jobs") {
      const auto requested = message.at("count").AsInt();
      if (requested >= 1 &&
          static_cast<std::size_t>(requested) > remaining) {
        Json clamped = message;
        clamped.Set("count", Json(static_cast<std::int64_t>(remaining)));
        Json reply = study->service->HandleMessage(clamped, now);
        IndexDeadline(shard, *study);
        return reply;
      }
    }
  }
  Json reply = study->service->HandleMessage(message, now);
  IndexDeadline(shard, *study);
  return reply;
}

Json StudyManager::HandleAnyStudy(const std::string& type,
                                  const Json& message, double now) {
  if (type != "request_job" && type != "request_jobs") {
    return Error("study '*' is only valid on job requests");
  }
  const auto worker =
      static_cast<std::uint64_t>(message.at("worker").AsInt());
  std::size_t want = 1;
  if (type == "request_jobs") {
    const auto requested = message.at("count").AsInt();
    HT_CHECK_MSG(requested >= 1,
                 "request_jobs count must be >= 1, got " << requested);
    want = std::min(static_cast<std::size_t>(requested),
                    options_.server.max_batch);
  }

  Json probe = JsonObject{};
  probe.Set("type", Json("request_job"));
  probe.Set("worker", Json(static_cast<std::int64_t>(worker)));

  Json entries = JsonArray{};
  std::size_t granted = 0;
  const std::size_t shard_count = shards_.size();
  // Rotate the starting shard across calls so shard 0's studies are not
  // structurally favored; within a shard the cursor rotates across ready
  // studies. One grant per ready study per pass = round-robin fairness.
  const std::size_t start = next_shard_.fetch_add(1) % shard_count;
  bool progress = true;
  while (granted < want && progress) {
    progress = false;
    for (std::size_t si = 0; si < shard_count && granted < want; ++si) {
      Shard& shard = *shards_[(start + si) % shard_count];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto& studies = shard.studies;
      if (studies.empty()) continue;
      auto it = studies.lower_bound(shard.next_study);
      if (it == studies.end()) it = studies.begin();
      const std::size_t cycle = studies.size();
      for (std::size_t tried = 0; tried < cycle && granted < want;
           ++tried) {
        Study& study = *it->second;
        ++it;
        if (it == studies.end()) it = studies.begin();
        if (study.suspended) continue;
        if (study.max_leases > 0 &&
            study.server->stats().active_leases >= study.max_leases) {
          continue;
        }
        Json reply = study.service->HandleMessage(probe, now);
        IndexDeadline(shard, study);
        if (reply.at("type").AsString() != "job") continue;
        Json entry = JsonObject{};
        entry.Set("job_id", reply.at("job_id"));
        entry.Set("job", reply.at("job"));
        entry.Set("study", Json(study.name));
        entries.PushBack(std::move(entry));
        ++granted;
        progress = true;
        // The next probe starts after the study that just granted.
        shard.next_study = it->first;
      }
    }
  }

  if (granted == 0) return NoJobReply();
  if (type == "request_job") {
    const Json& entry = entries.AsArray().front();
    Json reply = JsonObject{};
    reply.Set("type", Json("job"));
    reply.Set("job_id", entry.at("job_id"));
    reply.Set("job", entry.at("job"));
    reply.Set("lease_timeout", Json(options_.server.lease_timeout));
    reply.Set("study", entry.at("study"));
    return reply;
  }
  Json reply = JsonObject{};
  reply.Set("type", Json("jobs"));
  reply.Set("jobs", std::move(entries));
  reply.Set("lease_timeout", Json(options_.server.lease_timeout));
  if (granted < want) {
    reply.Set("retry_after", Json(options_.server.lease_timeout / 4));
  }
  return reply;
}

Json StudyManager::HandleAdmin(const std::string& type, const Json& message,
                               double now) {
  if (type == "list_studies") {
    Json list = JsonArray{};
    for (const StudyInfo& info : ListStudies()) {
      Json entry = JsonObject{};
      entry.Set("study", Json(info.name));
      entry.Set("state", Json(info.suspended ? "suspended" : "active"));
      entry.Set("max_leases",
                Json(static_cast<std::int64_t>(info.max_leases)));
      entry.Set("active_leases",
                Json(static_cast<std::int64_t>(info.active_leases)));
      entry.Set("jobs_assigned",
                Json(static_cast<std::int64_t>(info.jobs_assigned)));
      entry.Set("jobs_completed",
                Json(static_cast<std::int64_t>(info.jobs_completed)));
      list.PushBack(std::move(entry));
    }
    Json reply = JsonObject{};
    reply.Set("type", Json("studies"));
    reply.Set("studies", std::move(list));
    return reply;
  }

  const std::string& name = message.at("study").AsString();
  if (type == "create_study") {
    if (!ValidStudyName(name)) {
      return Error("invalid study name '" + name + "'");
    }
    std::optional<std::size_t> max_leases;
    if (message.Has("max_leases")) {
      const auto quota = message.at("max_leases").AsInt();
      HT_CHECK_MSG(quota >= 0, "max_leases must be >= 0, got " << quota);
      max_leases = static_cast<std::size_t>(quota);
    }
    const Json config =
        message.Has("config") ? message.at("config") : Json(JsonObject{});
    {
      Shard& shard = ShardFor(name);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (FindLocked(shard, name) != nullptr) {
        return Error("study '" + name + "' already exists");
      }
    }
    if (!CreateStudy(name, config, now, max_leases)) {
      // The name was valid and free, so the factory said no.
      return Error("config rejected for study '" + name + "'");
    }
    return Ack();
  }
  if (type == "suspend_study") {
    if (!SuspendStudy(name, now)) {
      return Error("unknown study '" + name + "'");
    }
    return Ack();
  }
  if (type == "resume_study") {
    if (!ResumeStudy(name, now)) {
      return Error("unknown study '" + name + "'");
    }
    return Ack();
  }
  if (type == "delete_study") {
    if (!DeleteStudy(name, now)) {
      return Error("unknown study '" + name + "'");
    }
    return Ack();
  }
  return Error("unknown message type '" + type + "'");
}

Json StudyManager::HandleMessage(const Json& message, double now) {
  try {
    const std::string& type = message.at("type").AsString();
    if (type == "create_study" || type == "suspend_study" ||
        type == "resume_study" || type == "delete_study" ||
        type == "list_studies") {
      return HandleAdmin(type, message, now);
    }
    const std::string study = message.Has("study")
                                  ? message.at("study").AsString()
                                  : options_.default_study;
    if (study == "*") return HandleAnyStudy(type, message, now);
    return HandleScoped(type, message, study, now);
  } catch (const std::exception& error) {
    // Same resilience contract as TuningServer: a hostile payload earns an
    // error reply, never a dead service.
    return Error(error.what());
  }
}

}  // namespace hypertune
