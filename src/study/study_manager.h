// StudyManager: one tuning service hosting thousands of concurrent studies.
//
// The paper's deployment regime (and Vizier's, which it extends) is
// tuning-as-a-service: one server multiplexes many users' experiments, each
// with its own scheduler, trial lifecycle, and durability generation. Every
// layer below this one — TuningServer (src/service), DurableServer
// (src/durability), NetServer (src/net) — hosts exactly one study;
// StudyManager is the multi-tenant shell that routes protocol messages to
// named studies and adds the admin vocabulary:
//
//   {"type":"create_study","study":S,"config":{...},"max_leases":Q}
//   {"type":"suspend_study","study":S}   (grants stop, leases freeze)
//   {"type":"resume_study","study":S}    (deadlines shift by the pause)
//   {"type":"delete_study","study":S}    (tombstone-first, then the dir)
//   {"type":"list_studies"}              -> {"type":"studies",...}
//
// Lease messages (request_job / request_jobs / heartbeat / report) carry an
// optional "study" field. An absent field routes to the default study, so a
// single-tenant client speaks the exact pre-manager protocol; the study
// "*" asks for work from ANY ready study, allocated fairly (round-robin
// across ready studies, FIFO within one — one hungry study cannot starve
// the rest), with each granted entry naming the study its report must
// route back to.
//
// Sharding: studies live in N shards (hash of the study id). Each shard
// has its own mutex, its own lease-deadline index (a lazy-deletion min-heap
// of per-study earliest deadlines, so an idle Tick touches only the shards
// and studies actually due), and its own round-robin cursor — unrelated
// studies never contend on one lock. Within one study the single-threaded
// MessageService contract still holds: the shard mutex serializes it.
//
// Durability (root non-empty): each study persists under
// <root>/studies/<name>/ — `study.json` (the factory config; the journal
// stores decisions, not configuration), `state.json` (suspension), and the
// standard DurableServer snapshot-%06g.json + wal-%06g.log generations.
// Recovery restores every study found on disk; deletion writes a tombstone
// marker durably *before* destroying anything, so a crash mid-delete
// finishes the delete on recovery instead of resurrecting half a study.
//
// Suspension semantics: a suspended study grants nothing (no_job), still
// accepts reports and heartbeats (a paused study must not discard finished
// work), and is skipped by Tick — its leases are frozen, not expired. On
// resume, every open deadline shifts by the pause duration (journaled as a
// "shift" control record so recovery reproduces it).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/scheduler.h"
#include "durability/durable_server.h"
#include "searchspace/space.h"
#include "service/server.h"

namespace hypertune {

class Telemetry;

/// Builds a study's scheduler from its creation config. The factory is the
/// deployment's policy hook: it decides which scheduler kinds and search
/// spaces studies may request. Must be thread-safe (shards call it under
/// different locks) and deterministic (recovery re-invokes it with the
/// persisted config). Returns nullptr to reject the config.
using StudySchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const Json& config)>;

/// The stock factory over one fixed search space. Config keys: "kind"
/// ("asha" | "sha" | "hyperband" | "random", default "random"), "seed",
/// and the kind's knobs ("r", "R", "eta", "max_trials", "n", "n0") with
/// the same defaults the decision-identity scenario uses (r=1, R=81,
/// eta=3). Unknown kinds are rejected.
StudySchedulerFactory MakeStudySchedulerFactory(SearchSpace space);

struct StudyManagerOptions {
  /// Number of study shards (>=1). Hash-of-name placement; more shards =
  /// less lock contention between unrelated studies.
  std::size_t shards = 4;
  /// Per-study server template. `journal` must be unset (DurableServer
  /// installs its own) and `study_label` is overwritten with each study's
  /// name.
  ServerOptions server;
  /// When non-empty, studies are durable under <root>/studies/<name>/ and
  /// construction recovers every study already on disk.
  std::string durability_root;
  /// Journal fsync policy for durable studies (see wal.h).
  SyncPolicy sync = SyncPolicy::kEveryN;
  std::size_t sync_every = 64;
  std::size_t snapshot_every = 1024;
  /// Quota applied to studies created without an explicit max_leases
  /// (0 = unlimited).
  std::size_t default_max_leases = 0;
  /// Where study-less messages route (the single-tenant compatibility
  /// path).
  std::string default_study = "default";
  /// Create the default study at construction with this config (skipped
  /// when recovery already restored it). Null = no auto-creation; study-less
  /// messages then error until someone creates the default study.
  Json default_config;
  /// Optional observability sink (not owned; must outlive the manager).
  Telemetry* telemetry = nullptr;
};

/// One row of list_studies / ListStudies().
struct StudyInfo {
  std::string name;
  bool suspended = false;
  std::size_t max_leases = 0;
  std::size_t active_leases = 0;
  std::size_t jobs_assigned = 0;
  std::size_t jobs_completed = 0;
};

struct StudyManagerStats {
  std::size_t studies = 0;
  std::size_t created = 0;
  std::size_t deleted = 0;
  std::size_t suspended = 0;
  std::size_t resumed = 0;
  std::size_t recovered = 0;
  /// Half-finished deletions completed during recovery (tombstone found).
  std::size_t tombstones_completed = 0;
  std::size_t unknown_study_errors = 0;
  /// Scoped requests denied (or clamped to zero) by a study quota.
  std::size_t quota_denials = 0;
};

class StudyManager final : public MessageService {
 public:
  StudyManager(StudySchedulerFactory factory, StudyManagerOptions options);
  ~StudyManager() override;

  StudyManager(const StudyManager&) = delete;
  StudyManager& operator=(const StudyManager&) = delete;

  /// Routes one protocol message: admin verbs are handled here, lease
  /// messages go to the study named by the "study" field (absent = the
  /// default study, "*" = fair allocation across all ready studies).
  /// Unknown studies and malformed messages get {"type":"error"} replies.
  /// Thread-safe: concurrent calls for studies in different shards run in
  /// parallel.
  Json HandleMessage(const Json& message, double now) override;

  /// Expires overdue leases across all studies. Suspended studies are
  /// skipped — their leases are frozen (satellite contract: an idle-expiry
  /// timer upstream must never expire a paused study's leases). Cost is
  /// O(due studies), not O(studies): each shard keeps a lazy min-heap of
  /// per-study earliest deadlines and only touches the studies whose heap
  /// entries are due.
  void Tick(double now) override;

  // Typed admin API (the wire verbs call straight into these).
  /// Creates a study. Fails (returns false) on duplicate names, invalid
  /// names (allowed: [A-Za-z0-9._-]{1,128}, not "." / ".."), or a config
  /// the factory rejects. `max_leases` nullopt = options default.
  bool CreateStudy(const std::string& name, const Json& config, double now,
                   std::optional<std::size_t> max_leases = std::nullopt);
  /// Stops grants and freezes leases. Idempotent; false if unknown.
  bool SuspendStudy(const std::string& name, double now);
  /// Unfreezes: shifts every open deadline by the pause duration (journaled
  /// for durable studies). Idempotent; false if unknown.
  bool ResumeStudy(const std::string& name, double now);
  /// Tombstones (durable studies) and destroys the study. False if unknown.
  bool DeleteStudy(const std::string& name, double now);
  /// All studies, sorted by name.
  std::vector<StudyInfo> ListStudies() const;

  StudyManagerStats stats() const;
  std::size_t study_count() const;

  /// Harness/test introspection: the study's underlying server/scheduler,
  /// or nullptr if unknown. NOT thread-safe against concurrent mutation of
  /// the same study — quiesce the manager first (tests and post-run dumps
  /// do).
  TuningServer* FindServer(const std::string& name);
  Scheduler* FindScheduler(const std::string& name);

 private:
  struct Study {
    std::string name;
    Json config;
    std::size_t max_leases = 0;
    std::unique_ptr<Scheduler> scheduler;
    // Exactly one of `plain` / `durable` is set; `service` and `server`
    // point into whichever owns the TuningServer.
    std::unique_ptr<TuningServer> plain;
    std::unique_ptr<DurableServer> durable;
    MessageService* service = nullptr;
    TuningServer* server = nullptr;
    bool suspended = false;
    double suspended_at = 0;
    /// The smallest deadline currently queued for this study in the shard's
    /// tick index (valid => exactly one live entry at that deadline exists;
    /// later duplicates are discarded as stale on pop). Keeps the index at
    /// ~one entry per study instead of one per message.
    double indexed_deadline = 0;
    bool indexed_valid = false;
  };

  /// One (deadline, study) entry in a shard's lazy-deletion tick index.
  struct DeadlineEntry {
    double deadline = 0;
    std::string study;
    bool operator>(const DeadlineEntry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return study > other.study;
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Study>> studies;
    std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                        std::greater<DeadlineEntry>>
        deadlines;
    /// Fair-allocation cursor: the name the next "*" grant probe starts
    /// from (names at/after it, wrapping). Deleted names are fine — probes
    /// lower_bound.
    std::string next_study;
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;
  /// Requires the shard lock.
  Study* FindLocked(Shard& shard, const std::string& name);
  /// Pushes the study's current earliest lease deadline into the shard's
  /// tick index. Requires the shard lock.
  void IndexDeadline(Shard& shard, Study& study);
  std::string StudyDir(const std::string& name) const;
  bool durable() const { return !options_.durability_root.empty(); }
  /// Builds the Study object (scheduler via factory + server stack).
  /// Returns nullptr when the factory rejects the config. `dir` empty for
  /// in-memory studies.
  std::unique_ptr<Study> BuildStudy(const std::string& name, Json config,
                                    std::size_t max_leases);
  /// Scans <root>/studies at construction: completes tombstoned deletions,
  /// recovers everything else.
  void RecoverStudies();
  void WriteStateFile(const Study& study) const;
  void EmitAdminEvent(const char* event, const char* counter,
                      const std::string& study, double now);

  Json HandleAdmin(const std::string& type, const Json& message, double now);
  Json HandleScoped(const std::string& type, const Json& message,
                    const std::string& study, double now);
  Json HandleAnyStudy(const std::string& type, const Json& message,
                      double now);
  Json NoJobReply() const;
  static Json Error(const std::string& text);
  static Json Ack();

  StudySchedulerFactory factory_;
  StudyManagerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> study_count_{0};
  /// "*" allocation: the shard the next any-study probe starts from.
  std::atomic<std::size_t> next_shard_{0};
  mutable std::mutex stats_mu_;
  StudyManagerStats stats_;
};

}  // namespace hypertune
