#include "surrogate/benchmark.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace hypertune {

namespace {

std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  // boost::hash_combine-style mixing on 64 bits.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h * 0xff51afd7ed558ccdULL;
}

std::uint64_t HashValue(const ParamValue& value) {
  return std::visit(
      [](const auto& v) -> std::uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, double>) {
          std::uint64_t bits = 0;
          static_assert(sizeof(bits) == sizeof(v));
          std::memcpy(&bits, &v, sizeof(bits));
          return bits;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
        } else {
          std::uint64_t h = 14695981039346656037ULL;
          for (char c : v) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
          return h;
        }
      },
      value);
}

std::uint64_t HashConfig(const Configuration& config) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const auto& [name, value] : config) {
    for (char c : name) h = MixHash(h, static_cast<unsigned char>(c));
    h = MixHash(h, HashValue(value));
  }
  return h;
}

}  // namespace

double ConfigUniform(const Configuration& config, std::uint64_t salt) {
  Rng rng(MixHash(HashConfig(config), salt));
  return rng.Uniform();
}

SyntheticBenchmark::SyntheticBenchmark(BenchmarkSpec spec,
                                       std::uint64_t trial_seed)
    : spec_(std::move(spec)), trial_seed_(trial_seed) {
  HT_CHECK(spec_.max_resource > 0);
  HT_CHECK(spec_.best_final_loss < spec_.random_guess_loss);
  HT_CHECK(spec_.landscape_scale >= 0);
  HT_CHECK(spec_.alpha_min > 0 && spec_.alpha_min <= spec_.alpha_max);
  HT_CHECK(spec_.gap_frac_min >= 0 && spec_.gap_frac_min <= spec_.gap_frac_max);
  HT_CHECK(spec_.time_exponent >= 1.0);
  HT_CHECK(spec_.divergence_fraction >= 0 && spec_.divergence_fraction <= 1);

  const std::size_t d = spec_.space.NumParams();
  HT_CHECK_MSG(d > 0, "benchmark search space is empty");
  Rng rng(spec_.landscape_seed);
  optima_.resize(d);
  weights_.resize(d);
  double weight_sum = 0;
  for (std::size_t j = 0; j < d; ++j) {
    optima_[j] = rng.Uniform(0.15, 0.85);
    // Geometrically decaying importance with a shuffled assignment so the
    // "important" dimensions are not always the first declared.
    weights_[j] = std::pow(0.65, static_cast<double>(j));
    weight_sum += weights_[j];
  }
  for (std::size_t j = d; j-- > 1;) {
    std::swap(weights_[j], weights_[rng.Index(j + 1)]);
  }
  for (double& w : weights_) w /= weight_sum;

  for (std::size_t j = 0; j < d; ++j) {
    if (spec_.space.name(j) == spec_.divergence_param) {
      divergence_dim_ = static_cast<int>(j);
    }
  }
}

double SyntheticBenchmark::HashNoise(const Configuration& config,
                                     std::uint64_t salt) const {
  Rng rng(MixHash(MixHash(HashConfig(config), salt), spec_.landscape_seed));
  return rng.Normal();
}

double SyntheticBenchmark::HashUniform(const Configuration& config,
                                       std::uint64_t salt) const {
  Rng rng(MixHash(MixHash(HashConfig(config), salt), spec_.landscape_seed));
  return rng.Uniform();
}

bool SyntheticBenchmark::IsDiverged(const Configuration& config) const {
  if (divergence_dim_ >= 0) {
    const auto j = static_cast<std::size_t>(divergence_dim_);
    const double u =
        spec_.space.domain(j).ToUnit(config.Get(spec_.space.name(j)));
    if (u > spec_.divergence_unit_threshold) return true;
  }
  return HashUniform(config, /*salt=*/11) < spec_.divergence_fraction;
}

double SyntheticBenchmark::FinalLoss(const Configuration& config) const {
  if (IsDiverged(config)) {
    double loss = spec_.divergence_loss;
    if (spec_.heavy_tail_sigma > 0) {
      loss *= std::exp(std::abs(HashNoise(config, 13)) * spec_.heavy_tail_sigma);
    }
    return loss;
  }
  const auto u = spec_.space.ToUnitVector(config);
  double q = 0;
  for (std::size_t j = 0; j < u.size(); ++j) {
    q += weights_[j] * std::pow(std::abs(u[j] - optima_[j]), 1.2);
  }
  // q in roughly [0, 0.8]; normalize so the landscape spans its full scale.
  q = std::min(1.0, q / 0.5);
  double final_loss = spec_.best_final_loss +
                      spec_.landscape_scale * std::pow(q, spec_.difficulty);
  final_loss += spec_.ruggedness * HashNoise(config, 17);
  if (spec_.extra_final_term) final_loss += spec_.extra_final_term(config);
  return std::clamp(final_loss, spec_.best_final_loss * 0.9,
                    spec_.random_guess_loss);
}

double SyntheticBenchmark::TrueLoss(const Configuration& config,
                                    Resource resource) const {
  HT_CHECK_MSG(resource > 0, "resource must be positive, got " << resource);
  const double final_loss = FinalLoss(config);
  if (IsDiverged(config)) return final_loss;  // divergence shows up early
  const double alpha =
      spec_.alpha_min +
      (spec_.alpha_max - spec_.alpha_min) * HashUniform(config, 19);
  const double gap_frac =
      spec_.gap_frac_min +
      (spec_.gap_frac_max - spec_.gap_frac_min) * HashUniform(config, 23);
  const double gap = (spec_.random_guess_loss - final_loss) * gap_frac;
  const double frac = std::min(1.0, resource / spec_.max_resource);
  const double loss = final_loss + gap * (std::pow(frac, -alpha) - 1.0);
  return std::min(loss, spec_.random_guess_loss);
}

double SyntheticBenchmark::Loss(const Configuration& config,
                                Resource resource) {
  double loss = TrueLoss(config, resource);
  if (spec_.eval_noise_std > 0 && !IsDiverged(config)) {
    // Deterministic per (trial instance, config, resource).
    std::uint64_t bits = 0;
    std::memcpy(&bits, &resource, sizeof(bits));
    Rng rng(MixHash(MixHash(HashConfig(config), bits), trial_seed_));
    loss += rng.Normal(0.0, spec_.eval_noise_std);
    loss = std::min(loss, spec_.random_guess_loss);
    loss = std::max(loss, spec_.best_final_loss * 0.5);
  }
  return loss;
}

double SyntheticBenchmark::TestMetric(const Configuration& config,
                                      Resource resource) const {
  double metric = TrueLoss(config, resource);
  if (spec_.test_noise_std > 0 && !IsDiverged(config)) {
    metric += spec_.test_noise_std * HashNoise(config, 29);
    metric = std::clamp(metric, spec_.best_final_loss * 0.5,
                        spec_.random_guess_loss);
  }
  return metric;
}

double SyntheticBenchmark::Duration(const Configuration& config, Resource from,
                                    Resource to) {
  HT_CHECK_MSG(to > from || !spec_.resumable,
               "job trains backwards: from=" << from << " to=" << to);
  const double cost = spec_.cost_per_unit ? spec_.cost_per_unit(config) : 1.0;
  HT_CHECK_MSG(cost > 0, "cost_per_unit must be positive");
  if (!spec_.resumable) from = 0;  // full retrain regardless of checkpoint
  if (spec_.time_exponent == 1.0) return cost * (to - from);
  return cost * (std::pow(to, spec_.time_exponent) -
                 std::pow(from, spec_.time_exponent));
}

double SyntheticBenchmark::MeanTimeOfR(std::size_t n) const {
  Rng rng(spec_.landscape_seed ^ 0xabcdef12345ULL);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Configuration config = spec_.space.Sample(rng);
    const double cost =
        spec_.cost_per_unit ? spec_.cost_per_unit(config) : 1.0;
    total += cost * std::pow(spec_.max_resource, spec_.time_exponent);
  }
  return total / static_cast<double>(n);
}

}  // namespace hypertune
