// Surrogate training workloads.
//
// The paper's experiments train real CNNs/LSTMs/SVMs; reproducing them here
// requires only that tuners observe realistic (config, resource) -> loss
// samples and realistic training times. SyntheticBenchmark provides both:
//
//   * a fixed loss landscape over the search space: each configuration has
//     an asymptotic validation loss final(θ) determined by a seeded smooth
//     "distance to per-dimension optima" term plus a rugged hash term, with
//     a diverging region (e.g. too-high learning rates) producing the
//     orders-of-magnitude outliers the paper observes on PTB (Section 4.3);
//   * a power-law learning curve
//         loss(θ, r) = final(θ) + gap(θ) * ((r / R)^(-alpha(θ)) - 1)
//     capped at the random-guess level, with per-configuration convergence
//     rate alpha and partial-training gap — so low-resource losses are
//     informative-but-imperfect rank predictors of final losses, exactly
//     the regime successive halving assumes;
//   * a per-configuration training-time model (architecture-dependent cost
//     per resource unit, optionally superlinear in the resource for
//     dataset-subset tasks like SVMs).
//
// The landscape is a deterministic function of the benchmark's landscape
// seed (fixed per task, shared across experiment trials); evaluation noise
// is seeded per trial instance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "searchspace/space.h"
#include "sim/environment.h"

namespace hypertune {

/// Deterministic U[0,1) keyed by (config, salt); exported so cost models in
/// benchmark factories can add per-configuration jitter without owning RNG
/// state.
double ConfigUniform(const Configuration& config, std::uint64_t salt);

struct BenchmarkSpec {
  std::string name;
  /// Reported metric label ("test error", "perplexity").
  std::string metric_name = "test error";
  SearchSpace space;
  /// Maximum per-configuration resource R (iterations / epochs / examples).
  double max_resource = 256;

  // ---- landscape (asymptotic loss) ----
  /// Loss of an untrained / random-guessing model; learning curves are
  /// capped here.
  double random_guess_loss = 1.0;
  /// Approximate loss of the global optimum.
  double best_final_loss = 0.1;
  /// Range of final losses across the non-diverged space:
  /// final in ~[best, best + landscape_scale].
  double landscape_scale = 0.5;
  /// Exponent sharpening the optimum (larger -> thinner good region).
  double difficulty = 1.5;
  /// Std of the rugged (hash) term added to final losses.
  double ruggedness = 0.01;
  /// Optional structured term added to the final loss (before clamping).
  /// Used e.g. to make larger architectures genuinely better (and slower) —
  /// the coupling behind BOHB's expensive-configuration bias and the
  /// straggler pressure on synchronous rungs (Section 4.2).
  std::function<double(const Configuration&)> extra_final_term;
  /// Fraction of the space that diverges regardless of location.
  double divergence_fraction = 0.05;
  /// If the space has this parameter, unit values above
  /// `divergence_unit_threshold` diverge (models exploding learning rates).
  std::string divergence_param = "learning_rate";
  double divergence_unit_threshold = 0.92;
  /// Loss reported by diverged configurations...
  double divergence_loss = 1.0;
  /// ...optionally multiplied by exp(|N(0, heavy_tail_sigma)|), giving the
  /// orders-of-magnitude perplexity outliers of Section 4.3.
  double heavy_tail_sigma = 0.0;

  // ---- learning curve ----
  double alpha_min = 0.5;
  double alpha_max = 1.6;
  /// gap(θ) = (random_guess - final) * U[gap_frac_min, gap_frac_max].
  double gap_frac_min = 0.05;
  double gap_frac_max = 0.4;
  /// Additive observation noise on validation losses.
  double eval_noise_std = 0.0;
  /// Std of the per-configuration validation -> test offset.
  double test_noise_std = 0.0;

  // ---- training time ----
  /// Virtual time per resource unit for a configuration (architecture
  /// dependence). Defaults to 1 when unset. Must be deterministic.
  std::function<double(const Configuration&)> cost_per_unit;
  /// Training time grows as resource^time_exponent. 1 = linear (iterative
  /// training); >1 models dataset-subset retraining (kernel SVMs).
  double time_exponent = 1.0;
  /// When false the task cannot checkpoint: duration ignores `from` and the
  /// full cost to `to` is always paid (dataset-subset tasks).
  bool resumable = true;

  /// Landscape seed: fixed per task so all experiment trials share one
  /// ground truth.
  std::uint64_t landscape_seed = 7;
};

class SyntheticBenchmark final : public JobEnvironment {
 public:
  /// `trial_seed` seeds observation noise only; the landscape is a function
  /// of spec.landscape_seed.
  SyntheticBenchmark(BenchmarkSpec spec, std::uint64_t trial_seed);

  const BenchmarkSpec& spec() const { return spec_; }
  const SearchSpace& space() const { return spec_.space; }
  double R() const { return spec_.max_resource; }
  const std::string& name() const { return spec_.name; }

  // JobEnvironment:
  double Loss(const Configuration& config, Resource resource) override;
  double Duration(const Configuration& config, Resource from,
                  Resource to) override;

  /// Offline test metric for a configuration trained to `resource`
  /// (validation curve plus a fixed per-configuration test offset).
  double TestMetric(const Configuration& config, Resource resource) const;

  /// Ground-truth asymptotic validation loss (no observation noise).
  double FinalLoss(const Configuration& config) const;

  /// Noise-free validation loss at a resource level.
  double TrueLoss(const Configuration& config, Resource resource) const;

  /// Whether the configuration falls in the diverging region.
  bool IsDiverged(const Configuration& config) const;

  /// Expected training time for the full resource R, averaged over `n`
  /// random configurations — the paper's time(R) unit (Figure 5).
  double MeanTimeOfR(std::size_t n = 200) const;

 private:
  /// Deterministic standard-normal draw keyed by (landscape, config, salt).
  double HashNoise(const Configuration& config, std::uint64_t salt) const;
  double HashUniform(const Configuration& config, std::uint64_t salt) const;

  BenchmarkSpec spec_;
  std::uint64_t trial_seed_;
  std::vector<double> optima_;   // per-dimension optimum in [0,1]
  std::vector<double> weights_;  // per-dimension weights, sum 1
  int divergence_dim_ = -1;      // index of spec.divergence_param, if any
};

}  // namespace hypertune
