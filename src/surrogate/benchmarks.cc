#include "surrogate/benchmarks.h"

#include <cmath>

#include "common/check.h"
#include "searchspace/spaces.h"

namespace hypertune::benchmarks {

namespace {

// Virtual-time unit is one minute for the CIFAR/SVHN/AWD tasks, matching the
// paper's x-axes; the PTB and unit-time tasks use abstract units.

double ArchSizeBonus(const Configuration& config) {
  // Bigger CNNs genuinely fit better (and train slower): couples loss to
  // cost, which drives BOHB's bias toward expensive configurations and the
  // straggling of synchronous rungs (Section 4.2).
  const auto layers = static_cast<double>(config.GetInt("num_layers"));
  const auto filters = static_cast<double>(config.GetInt("num_filters"));
  return 0.035 * (1.0 - (layers * filters) / (4.0 * 64.0));
}

double CifarArchCost(const Configuration& config) {
  // Per-iteration compute ~ layers * filters * batch (conv work per example
  // times examples per iteration); normalized so time(R=30000) averages
  // ~30 minutes with a wide architecture-driven spread (paper: 30 +/- 27).
  const auto layers = static_cast<double>(config.GetInt("num_layers"));
  const auto filters = static_cast<double>(config.GetInt("num_filters"));
  const auto batch = static_cast<double>(config.GetInt("batch_size"));
  const double arch = (layers / 3.0) * (filters / 40.0) *
                      std::pow(batch / 256.0, 0.7);
  const double jitter = 0.8 + 0.4 * ConfigUniform(config, 101);
  return 1.1e-3 * arch * jitter;  // minutes per iteration
}

}  // namespace

std::unique_ptr<SyntheticBenchmark> CifarConvnet(std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = "cifar_convnet";
  spec.metric_name = "test error";
  spec.space = spaces::CudaConvnetSpace();
  spec.max_resource = 30000;
  spec.random_guess_loss = 0.9;
  spec.best_final_loss = 0.17;
  spec.landscape_scale = 0.35;
  spec.difficulty = 1.2;
  spec.ruggedness = 0.008;
  spec.divergence_fraction = 0.03;
  spec.divergence_param = "learning_rate";
  spec.divergence_unit_threshold = 0.93;
  spec.divergence_loss = 0.9;
  spec.alpha_min = 0.4;
  spec.alpha_max = 0.9;
  spec.gap_frac_min = 0.015;
  spec.gap_frac_max = 0.06;
  spec.eval_noise_std = 0.003;
  spec.test_noise_std = 0.004;
  spec.cost_per_unit = [](const Configuration& config) {
    // Fixed architecture: training time is nearly configuration-independent
    // ("relative simplicity" of benchmark 1, Section 4.2).
    return 1.0e-3 * (0.9 + 0.2 * ConfigUniform(config, 103));
  };
  spec.landscape_seed = 0xC1FA1;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

std::unique_ptr<SyntheticBenchmark> CifarArch(std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = "cifar_arch";
  spec.metric_name = "test error";
  spec.space = spaces::SmallCnnArchSpace();
  spec.max_resource = 30000;
  spec.random_guess_loss = 0.9;
  spec.best_final_loss = 0.195;
  spec.landscape_scale = 0.35;
  spec.difficulty = 1.8;
  spec.ruggedness = 0.01;
  spec.divergence_fraction = 0.05;
  spec.divergence_param = "learning_rate";
  spec.divergence_unit_threshold = 0.92;
  spec.divergence_loss = 0.9;
  spec.alpha_min = 0.4;
  spec.alpha_max = 0.9;
  spec.gap_frac_min = 0.015;
  spec.gap_frac_max = 0.06;
  spec.eval_noise_std = 0.003;
  spec.test_noise_std = 0.004;
  spec.extra_final_term = ArchSizeBonus;
  spec.cost_per_unit = CifarArchCost;
  spec.landscape_seed = 0xC1FA2;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

std::unique_ptr<SyntheticBenchmark> PtbLstm(std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = "ptb_lstm";
  spec.metric_name = "perplexity";
  spec.space = spaces::PtbLstmSpace();
  spec.max_resource = 64;  // abstract units; r = R/64 = 1 in Section 4.3
  spec.random_guess_loss = 10000;  // ~vocabulary-size perplexity untrained
  spec.best_final_loss = 76.0;
  spec.landscape_scale = 60.0;
  // Low difficulty exponent keeps the sub-80-perplexity region tiny
  // (~0.05% of the space): with 500 workers, best-of-random full-resource
  // search needs several rounds to hit it, while ASHA screens tens of
  // thousands of cheap configurations (Figure 5's 3x gap vs Vizier).
  spec.difficulty = 1.10;
  spec.ruggedness = 0.5;
  spec.divergence_fraction = 0.10;
  spec.divergence_param = "learning_rate";
  spec.divergence_unit_threshold = 0.90;
  spec.divergence_loss = 1000.0;
  spec.heavy_tail_sigma = 2.5;  // outliers up to ~1e6 (Section 4.3)
  spec.alpha_min = 0.3;
  spec.alpha_max = 0.7;
  spec.gap_frac_min = 0.0005;
  spec.gap_frac_max = 0.004;
  spec.eval_noise_std = 0.4;
  spec.test_noise_std = 0.5;
  spec.cost_per_unit = [](const Configuration& config) {
    // LSTM step cost scales ~quadratically with the hidden size; mean
    // time(R) is calibrated to ~1.0 virtual unit so Figure 5's x-axis is in
    // units of time(R).
    const auto hidden = static_cast<double>(config.GetInt("hidden_nodes"));
    const double h = hidden / 1500.0;
    const double jitter = 0.95 + 0.1 * ConfigUniform(config, 107);
    return 0.029 * (0.25 + 0.75 * h * h) * jitter;
  };
  spec.landscape_seed = 0x9781;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

std::unique_ptr<SyntheticBenchmark> AwdLstm(std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = "awd_lstm";
  spec.metric_name = "validation perplexity";
  spec.space = spaces::AwdLstmSpace();
  spec.max_resource = 256;  // epochs (Section 4.3.1)
  spec.random_guess_loss = 800;
  spec.best_final_loss = 58.5;
  spec.landscape_scale = 22.0;
  spec.difficulty = 1.4;
  spec.ruggedness = 0.3;
  spec.divergence_fraction = 0.02;
  spec.divergence_param = "learning_rate";
  spec.divergence_unit_threshold = 0.95;
  spec.divergence_loss = 1000.0;
  spec.heavy_tail_sigma = 1.5;
  spec.alpha_min = 0.35;
  spec.alpha_max = 0.8;
  spec.gap_frac_min = 0.007;
  spec.gap_frac_max = 0.05;
  spec.eval_noise_std = 0.3;
  spec.test_noise_std = 0.4;
  spec.cost_per_unit = [](const Configuration& config) {
    // ~2 minutes/epoch on a single GPU; smaller batches train slower.
    const auto batch = static_cast<double>(config.GetInt("batch_size"));
    const double jitter = 0.9 + 0.2 * ConfigUniform(config, 109);
    return 2.0 * std::sqrt(20.0 / batch) * jitter;  // minutes per epoch
  };
  spec.landscape_seed = 0xA3D1;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

namespace {

std::unique_ptr<SyntheticBenchmark> MakeSvm(std::string name, double best,
                                            double rand_guess, double scale,
                                            double difficulty,
                                            double minutes_full,
                                            std::uint64_t landscape_seed,
                                            std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = std::move(name);
  spec.metric_name = "test error";
  spec.space = spaces::SvmSpace();
  spec.max_resource = 4096;  // training examples (abstract subset sizes)
  spec.random_guess_loss = rand_guess;
  spec.best_final_loss = best;
  spec.landscape_scale = scale;
  spec.difficulty = difficulty;
  spec.ruggedness = 0.01;
  spec.divergence_fraction = 0.0;  // SVMs degrade gracefully, never diverge
  spec.alpha_min = 0.3;
  spec.alpha_max = 0.8;
  spec.gap_frac_min = 0.05;
  spec.gap_frac_max = 0.25;
  spec.eval_noise_std = 0.004;
  spec.test_noise_std = 0.005;
  // Kernel-SVM training is superlinear in the dataset size, and training on
  // a larger subset is a full retrain (no checkpoints).
  spec.time_exponent = 1.7;
  spec.resumable = false;
  const double full_cost = std::pow(spec.max_resource, spec.time_exponent);
  spec.cost_per_unit = [minutes_full, full_cost](const Configuration& config) {
    const double jitter = 0.85 + 0.3 * ConfigUniform(config, 113);
    return minutes_full / full_cost * jitter;
  };
  spec.landscape_seed = landscape_seed;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

}  // namespace

std::unique_ptr<SyntheticBenchmark> SvmVehicle(std::uint64_t trial_seed) {
  return MakeSvm("svm_vehicle", /*best=*/0.17, /*rand_guess=*/0.75,
                 /*scale=*/0.45, /*difficulty=*/1.0, /*minutes_full=*/5.0,
                 /*landscape_seed=*/0x5E41, trial_seed);
}

std::unique_ptr<SyntheticBenchmark> SvmMnist(std::uint64_t trial_seed) {
  return MakeSvm("svm_mnist", /*best=*/0.014, /*rand_guess=*/0.9,
                 /*scale=*/0.35, /*difficulty=*/1.6, /*minutes_full=*/30.0,
                 /*landscape_seed=*/0x5E42, trial_seed);
}

std::unique_ptr<SyntheticBenchmark> SvhnCnn(std::uint64_t trial_seed) {
  BenchmarkSpec spec;
  spec.name = "svhn_cnn";
  spec.metric_name = "test error";
  spec.space = spaces::SmallCnnArchSpace();
  spec.max_resource = 30000;
  spec.random_guess_loss = 0.8;
  spec.best_final_loss = 0.022;
  spec.landscape_scale = 0.25;
  spec.difficulty = 1.6;
  spec.ruggedness = 0.006;
  spec.divergence_fraction = 0.04;
  spec.divergence_param = "learning_rate";
  spec.divergence_unit_threshold = 0.92;
  spec.divergence_loss = 0.8;
  spec.alpha_min = 0.4;
  spec.alpha_max = 0.9;
  spec.gap_frac_min = 0.015;
  spec.gap_frac_max = 0.06;
  spec.eval_noise_std = 0.002;
  spec.test_noise_std = 0.003;
  spec.extra_final_term = ArchSizeBonus;
  spec.cost_per_unit = CifarArchCost;
  spec.landscape_seed = 0x51A7;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

std::unique_ptr<SyntheticBenchmark> UnitTime(std::uint64_t trial_seed) {
  // Appendix A.1: the expected training time of a job equals its allocated
  // resource; used with r=1, R=256, eta=4, n=256 for Figures 7 and 8.
  BenchmarkSpec spec;
  spec.name = "unit_time";
  spec.metric_name = "loss";
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  spec.space = std::move(space);
  spec.max_resource = 256;
  spec.random_guess_loss = 1.0;
  spec.best_final_loss = 0.05;
  spec.landscape_scale = 0.9;
  spec.difficulty = 1.0;
  spec.ruggedness = 0.02;
  spec.divergence_fraction = 0.0;
  spec.alpha_min = 0.4;
  spec.alpha_max = 0.9;
  spec.gap_frac_min = 0.05;
  spec.gap_frac_max = 0.3;
  spec.eval_noise_std = 0.0;
  spec.cost_per_unit = nullptr;  // exactly 1 time unit per resource unit
  spec.landscape_seed = 0x0A1;
  return std::make_unique<SyntheticBenchmark>(std::move(spec), trial_seed);
}

std::unique_ptr<SyntheticBenchmark> ByName(const std::string& name,
                                           std::uint64_t trial_seed) {
  if (name == "cifar_convnet") return CifarConvnet(trial_seed);
  if (name == "cifar_arch") return CifarArch(trial_seed);
  if (name == "ptb_lstm") return PtbLstm(trial_seed);
  if (name == "awd_lstm") return AwdLstm(trial_seed);
  if (name == "svm_vehicle") return SvmVehicle(trial_seed);
  if (name == "svm_mnist") return SvmMnist(trial_seed);
  if (name == "svhn_cnn") return SvhnCnn(trial_seed);
  if (name == "unit_time") return UnitTime(trial_seed);
  throw CheckError("unknown benchmark '" + name + "'");
}

std::vector<std::string> AllNames() {
  return {"cifar_convnet", "cifar_arch", "ptb_lstm",  "awd_lstm",
          "svm_vehicle",   "svm_mnist",  "svhn_cnn", "unit_time"};
}

}  // namespace hypertune::benchmarks
