// Factory functions building the surrogate equivalent of every task in the
// paper's evaluation. Landscape seeds are fixed per task (all trials of an
// experiment share one ground truth); `trial_seed` varies observation noise
// across experiment repetitions.
//
// Calibration targets (paper -> surrogate):
//   * CifarConvnet   — benchmark 1 (Fig. 3/4/9): cuda-convnet on CIFAR-10,
//     R = 30k SGD iterations, best test error ~0.17-0.18, time(R) ~ 30 min,
//     low training-time variance ("relative simplicity").
//   * CifarArch      — benchmark 2 (Fig. 3/4): Table 1 small-CNN architecture
//     space, R = 30k iterations, best ~0.20, time(R) mean ~30 min with
//     std ~27 min (architecture-dependent cost drives Fig. 4's straggler
//     sensitivity).
//   * PtbLstm        — Fig. 5: Table 2 space, perplexities with best ~76 and
//     a diverging region producing orders-of-magnitude outliers (§4.3).
//   * AwdLstm        — Fig. 6: Table 3 space, validation perplexity best
//     ~58.5, R = 256 epochs.
//   * SvmVehicle / SvmMnist — Appendix A.2 (Fig. 9): resource = training
//     examples, superlinear training time, no checkpoint resume.
//   * SvhnCnn        — Appendix A.2 (Fig. 9): Table 1 space on SVHN.
//   * UnitTime       — Appendix A.1 (Fig. 7/8): expected job time equals the
//     allocated resource; the straggler/drop robustness workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "surrogate/benchmark.h"

namespace hypertune::benchmarks {

std::unique_ptr<SyntheticBenchmark> CifarConvnet(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> CifarArch(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> PtbLstm(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> AwdLstm(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> SvmVehicle(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> SvmMnist(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> SvhnCnn(std::uint64_t trial_seed);
std::unique_ptr<SyntheticBenchmark> UnitTime(std::uint64_t trial_seed);

/// Builds by name ("cifar_convnet", "cifar_arch", ...); throws on unknown.
std::unique_ptr<SyntheticBenchmark> ByName(const std::string& name,
                                           std::uint64_t trial_seed);

/// All task names, in the order they appear in the paper.
std::vector<std::string> AllNames();

}  // namespace hypertune::benchmarks
