#include "surrogate/table.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/rng.h"
#include "surrogate/benchmark.h"

namespace hypertune {

namespace {

constexpr char kMagic[8] = {'H', 'T', 'T', 'B', '0', '0', '0', '1'};
constexpr std::size_t kHeaderBytes = 24;
constexpr std::uint32_t kFlagResumable = 1u << 0;

std::uint32_t Crc32(const unsigned char* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ValidateShape(const TableData& data) {
  HT_CHECK_MSG(data.rows > 0, "table must have at least one row");
  const std::size_t f = data.fidelities.size();
  HT_CHECK_MSG(f > 0, "table must have at least one fidelity");
  const std::size_t cells = static_cast<std::size_t>(data.rows) * f;
  HT_CHECK_MSG(data.losses.size() == cells,
               "losses size " << data.losses.size() << " != rows*F "
                              << cells);
  HT_CHECK_MSG(data.cum_times.size() == cells,
               "cum_times size " << data.cum_times.size() << " != rows*F "
                                 << cells);
  for (std::size_t i = 0; i < f; ++i) {
    HT_CHECK_MSG(data.fidelities[i] > 0,
                 "fidelities must be positive, got " << data.fidelities[i]);
    HT_CHECK_MSG(i == 0 || data.fidelities[i] > data.fidelities[i - 1],
                 "fidelities must be strictly ascending");
  }
  for (std::uint32_t row = 0; row < data.rows; ++row) {
    const double* cum = data.cum_times.data() + std::size_t{row} * f;
    for (std::size_t i = 0; i < f; ++i) {
      HT_CHECK_MSG(cum[i] > 0, "cumulative times must be positive");
      HT_CHECK_MSG(i == 0 || cum[i] > cum[i - 1],
                   "cumulative times must be strictly ascending per row");
    }
  }
}

void AppendU32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void AppendDoubles(std::string& out, const std::vector<double>& v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size() * 8);
}

std::uint32_t ReadU32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// Header + shape + CRC validation shared by the mmap loader and
// UnpackTable. Returns {rows, F, resumable} and leaves `payload` pointing
// at the fidelity array.
struct ParsedHeader {
  std::uint32_t rows = 0;
  std::size_t num_fidelities = 0;
  bool resumable = true;
  const double* payload = nullptr;
};

ParsedHeader ParseHeader(const unsigned char* bytes, std::size_t size,
                         const std::string& origin) {
  HT_CHECK_MSG(size >= kHeaderBytes,
               origin << ": truncated table (" << size << " bytes)");
  HT_CHECK_MSG(std::memcmp(bytes, kMagic, 8) == 0,
               origin << ": not an HTTB0001 table");
  ParsedHeader header;
  header.rows = ReadU32(bytes + 8);
  header.num_fidelities = ReadU32(bytes + 12);
  const std::uint32_t flags = ReadU32(bytes + 16);
  const std::uint32_t crc = ReadU32(bytes + 20);
  header.resumable = (flags & kFlagResumable) != 0;
  HT_CHECK_MSG(header.rows > 0 && header.num_fidelities > 0,
               origin << ": empty table");
  const std::size_t cells =
      std::size_t{header.rows} * header.num_fidelities;
  const std::size_t expected =
      kHeaderBytes + 8 * (header.num_fidelities + 2 * cells);
  HT_CHECK_MSG(size == expected, origin << ": size " << size
                                        << " != expected " << expected);
  HT_CHECK_MSG(Crc32(bytes + kHeaderBytes, size - kHeaderBytes) == crc,
               origin << ": payload CRC mismatch");
  header.payload = reinterpret_cast<const double*>(bytes + kHeaderBytes);
  return header;
}

}  // namespace

std::string PackTable(const TableData& data) {
  ValidateShape(data);
  std::string out;
  const std::size_t cells =
      std::size_t{data.rows} * data.fidelities.size();
  out.reserve(kHeaderBytes + 8 * (data.fidelities.size() + 2 * cells));
  out.append(kMagic, 8);
  AppendU32(out, data.rows);
  AppendU32(out, static_cast<std::uint32_t>(data.fidelities.size()));
  AppendU32(out, data.resumable ? kFlagResumable : 0);
  AppendU32(out, 0);  // CRC patched below
  AppendDoubles(out, data.fidelities);
  AppendDoubles(out, data.losses);
  AppendDoubles(out, data.cum_times);
  const std::uint32_t crc =
      Crc32(reinterpret_cast<const unsigned char*>(out.data()) + kHeaderBytes,
            out.size() - kHeaderBytes);
  std::memcpy(out.data() + 20, &crc, 4);
  return out;
}

TableVerifyStats VerifyTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HT_CHECK_MSG(in.good(), path << ": cannot open for verification");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const ParsedHeader header =
      ParseHeader(reinterpret_cast<const unsigned char*>(bytes.data()),
                  bytes.size(), path);
  const std::size_t f = header.num_fidelities;
  const double* const fidelities = header.payload;
  const double* const losses = fidelities + f;
  const double* const cum_times = losses + std::size_t{header.rows} * f;
  for (std::size_t i = 0; i < f; ++i) {
    HT_CHECK_MSG(std::isfinite(fidelities[i]) && fidelities[i] > 0,
                 path << ": fidelity " << i << " not positive ("
                      << fidelities[i] << ")");
    HT_CHECK_MSG(i == 0 || fidelities[i] > fidelities[i - 1],
                 path << ": fidelity ladder not strictly ascending at " << i);
  }
  for (std::uint32_t row = 0; row < header.rows; ++row) {
    const double* const loss_row = losses + std::size_t{row} * f;
    const double* const cum_row = cum_times + std::size_t{row} * f;
    for (std::size_t i = 0; i < f; ++i) {
      HT_CHECK_MSG(std::isfinite(loss_row[i]),
                   path << ": non-finite loss at row " << row << " fidelity "
                        << i);
      HT_CHECK_MSG(std::isfinite(cum_row[i]) && cum_row[i] > 0,
                   path << ": non-positive cumulative time at row " << row
                        << " fidelity " << i);
      HT_CHECK_MSG(i == 0 || cum_row[i] > cum_row[i - 1],
                   path << ": cumulative times not strictly ascending at row "
                        << row << " fidelity " << i);
    }
  }
  return {header.rows, f, header.resumable, bytes.size()};
}

TableData TabulateBenchmark(SyntheticBenchmark& benchmark, std::uint32_t rows,
                            std::size_t num_fidelities, std::uint64_t seed) {
  HT_CHECK_MSG(num_fidelities > 0, "tabulation needs at least one fidelity");
  TableData data;
  data.rows = rows;
  data.resumable = benchmark.spec().resumable;
  // Geometric ladder ending at R, successive-halving style (factor 2).
  const double R = benchmark.R();
  data.fidelities.resize(num_fidelities);
  for (std::size_t i = 0; i < num_fidelities; ++i) {
    data.fidelities[num_fidelities - 1 - i] =
        R / static_cast<double>(std::uint64_t{1} << i);
  }
  const std::size_t cells = std::size_t{rows} * num_fidelities;
  data.losses.reserve(cells);
  data.cum_times.reserve(cells);
  Rng rng(seed);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const Configuration config = benchmark.space().Sample(rng);
    for (double fidelity : data.fidelities) {
      data.losses.push_back(benchmark.Loss(config, fidelity));
      data.cum_times.push_back(benchmark.Duration(config, 0, fidelity));
    }
  }
  return data;
}

TableData UnpackTable(const std::string& bytes) {
  const ParsedHeader header =
      ParseHeader(reinterpret_cast<const unsigned char*>(bytes.data()),
                  bytes.size(), "buffer");
  TableData data;
  data.rows = header.rows;
  data.resumable = header.resumable;
  const std::size_t f = header.num_fidelities;
  const std::size_t cells = std::size_t{header.rows} * f;
  data.fidelities.assign(header.payload, header.payload + f);
  data.losses.assign(header.payload + f, header.payload + f + cells);
  data.cum_times.assign(header.payload + f + cells,
                        header.payload + f + 2 * cells);
  return data;
}

/// Read-only mmap of the whole file; unmapped on destruction.
struct TabularBenchmark::Mapping {
  const unsigned char* bytes = nullptr;
  std::size_t size = 0;

  ~Mapping() {
    if (bytes != nullptr) {
      munmap(const_cast<unsigned char*>(bytes), size);
    }
  }
};

void TabularBenchmark::InitFromPointers() {
  space_ = SearchSpace{};
  space_.Add("row",
             Domain::Integer(0, static_cast<std::int64_t>(rows_) - 1));
}

TabularBenchmark::TabularBenchmark(TableData data) : owned_(std::move(data)) {
  ValidateShape(owned_);
  rows_ = owned_.rows;
  num_fidelities_ = owned_.fidelities.size();
  resumable_ = owned_.resumable;
  fidelities_ = owned_.fidelities.data();
  losses_ = owned_.losses.data();
  cum_times_ = owned_.cum_times.data();
  InitFromPointers();
}

std::unique_ptr<TabularBenchmark> TabularBenchmark::FromFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  HT_CHECK_MSG(fd >= 0, path << ": open failed (" << std::strerror(errno)
                             << ")");
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    HT_CHECK_MSG(false, path << ": fstat failed");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages alive
  if (addr == MAP_FAILED) {
    // mmap unavailable (exotic filesystem): fall back to an owned copy.
    std::ifstream in(path, std::ios::binary);
    HT_CHECK_MSG(in.good(), path << ": read failed");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return std::make_unique<TabularBenchmark>(UnpackTable(bytes));
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->bytes = static_cast<const unsigned char*>(addr);
  mapping->size = size;
  const ParsedHeader header = ParseHeader(mapping->bytes, size, path);
  std::unique_ptr<TabularBenchmark> bench(new TabularBenchmark());
  bench->mapping_ = std::move(mapping);
  bench->rows_ = header.rows;
  bench->num_fidelities_ = header.num_fidelities;
  bench->resumable_ = header.resumable;
  bench->fidelities_ = header.payload;
  const std::size_t cells = std::size_t{header.rows} * header.num_fidelities;
  bench->losses_ = header.payload + header.num_fidelities;
  bench->cum_times_ = bench->losses_ + cells;
  bench->InitFromPointers();
  return bench;
}

std::size_t TabularBenchmark::LargeFidelityIndex(double resource) const {
  const double* const end = fidelities_ + num_fidelities_;
  const double* it = std::lower_bound(fidelities_, end, resource);
  if (it == end) --it;
  return static_cast<std::size_t>(it - fidelities_);
}

void TabularBenchmark::FailRowRange(std::uint32_t row) const {
  HT_CHECK_MSG(row < rows_, "row " << row << " out of range (" << rows_
                                   << " rows)");
  std::abort();  // unreachable: the check above always throws
}

double TabularBenchmark::Loss(const Configuration& config,
                              Resource resource) {
  const std::uint32_t row = RowOf(config);
  return losses_[row * num_fidelities_ + FidelityIndex(resource)];
}

double TabularBenchmark::Duration(const Configuration& config, Resource from,
                                  Resource to) {
  const std::uint32_t row = RowOf(config);
  const double* const cum = cum_times_ + row * num_fidelities_;
  const double total = cum[FidelityIndex(to)];
  if (!resumable_ || from <= 0) return total;
  const double duration = total - cum[FidelityIndex(from)];
  HT_CHECK_MSG(duration > 0, "non-positive tabular duration: from " << from
                                                                    << " to "
                                                                    << to);
  return duration;
}

}  // namespace hypertune
