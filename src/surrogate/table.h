// Tabular (zero-cost) benchmarks: pre-evaluated (row, fidelity) tables
// served by O(1) lookup, the regime where the simulator engine — not the
// surrogate — must be the bottleneck (≥10M simulated job-completions/sec,
// see bench/micro_sim.cc).
//
// A table stores, for each of `rows` configurations and each fidelity on an
// ascending resource ladder:
//   * the validation loss after training to that fidelity, and
//   * the cumulative training time from scratch to that fidelity
// so Duration(from, to) is one subtraction (resumable tables) or one load
// (non-resumable), with no per-call learning-curve or cost-model math.
//
// On-disk format "HTTB0001" (little-endian, written by tools/table_pack):
//
//   offset  size  field
//   0       8     magic "HTTB0001"
//   8       4     uint32 rows
//   12      4     uint32 num_fidelities (F)
//   16      4     uint32 flags (bit 0: resumable)
//   20      4     uint32 CRC-32 of everything after the header
//   24      8*F   double fidelities[F]        (strictly ascending, > 0)
//   ...     8*rows*F  double losses[rows][F]     (row-major)
//   ...     8*rows*F  double cum_times[rows][F]  (strictly ascending per row)
//
// Every payload scalar is a naturally aligned double, so a loader may mmap
// the file and serve lookups straight from the mapping — TabularBenchmark
// does exactly that (falling back to an owned copy when mmap is
// unavailable). The search space is a single integer parameter "row" in
// [0, rows).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "searchspace/space.h"
#include "sim/environment.h"

namespace hypertune {

/// In-memory table contents (the packer's input, the loader's output).
struct TableData {
  std::uint32_t rows = 0;
  bool resumable = true;
  /// Ascending resource ladder, length F.
  std::vector<double> fidelities;
  /// rows * F losses, row-major.
  std::vector<double> losses;
  /// rows * F cumulative training times from scratch, row-major, strictly
  /// ascending within each row.
  std::vector<double> cum_times;
};

/// Serializes to the HTTB0001 byte layout. Validates shape/monotonicity
/// (CheckError on violation).
std::string PackTable(const TableData& data);

/// Parses an HTTB0001 byte buffer (header, shape, and CRC are validated).
TableData UnpackTable(const std::string& bytes);

class SyntheticBenchmark;

/// Tabulates `rows` sampled configurations of a synthetic task on a
/// geometric `num_fidelities`-point ladder ending at the task's R
/// (successive-halving factor 2). Deterministic in (task, rows, F, seed) —
/// table_pack and sweep_run build identical tables from the same inputs.
TableData TabulateBenchmark(SyntheticBenchmark& benchmark, std::uint32_t rows,
                            std::size_t num_fidelities, std::uint64_t seed);

/// What VerifyTableFile walked (tools/table_pack --verify prints this).
struct TableVerifyStats {
  std::uint32_t rows = 0;
  std::size_t num_fidelities = 0;
  bool resumable = true;
  /// Total file size in bytes (header included).
  std::size_t file_bytes = 0;
};

/// Full-file integrity walk for CI gating: re-reads every byte of `path`
/// (no lazy mmap paging), revalidates the header and the payload CRC, then
/// re-walks every section and row — ladder positive and strictly
/// ascending, every loss finite, every cumulative-time row positive and
/// strictly ascending. Throws CheckError naming the first violation;
/// returns the walked shape otherwise. Strictly stronger than FromFile's
/// checks: the mmap loader stops at header + CRC and trusts the packer for
/// row invariants, and loss finiteness is checked nowhere else.
TableVerifyStats VerifyTableFile(const std::string& path);

class TabularBenchmark final : public JobEnvironment {
 public:
  /// Takes ownership of in-memory data (tests, the packer).
  explicit TabularBenchmark(TableData data);

  /// Maps `path` read-only and serves lookups from the mapping; the file
  /// must outlive the benchmark. Header/CRC-validated; CheckError on a
  /// truncated or corrupt file.
  static std::unique_ptr<TabularBenchmark> FromFile(const std::string& path);

  const SearchSpace& space() const { return space_; }
  std::uint32_t rows() const { return rows_; }
  std::size_t num_fidelities() const { return num_fidelities_; }
  bool resumable() const { return resumable_; }
  /// Largest fidelity on the ladder (the table's R).
  double max_resource() const { return fidelities_[num_fidelities_ - 1]; }

  // JobEnvironment. The config's "row" parameter selects the table row; a
  // resource maps to the smallest ladder fidelity >= resource (clamped to
  // the top), so rung ladders that subset the table ladder hit exact cells.
  double Loss(const Configuration& config, Resource resource) override;
  double Duration(const Configuration& config, Resource from,
                  Resource to) override;

  /// Raw-row accessors for harnesses that bypass Configuration decoding.
  double LossAt(std::uint32_t row, std::size_t fidelity_index) const {
    return losses_[row * num_fidelities_ + fidelity_index];
  }
  double CumTimeAt(std::uint32_t row, std::size_t fidelity_index) const {
    return cum_times_[row * num_fidelities_ + fidelity_index];
  }

 private:
  struct Mapping;  // RAII mmap handle (table.cc)

  TabularBenchmark() = default;  // FromFile fills the view fields directly

  // Smallest ladder fidelity >= resource, clamped to the top — rung
  // ladders that subset the table ladder hit exact cells; anything else
  // rounds up. Ladders are short, so a branchless counting scan (inline,
  // no data-dependent branches) serves the simulator hot path; long
  // ladders fall back to binary search.
  std::size_t FidelityIndex(double resource) const {
    if (num_fidelities_ <= 32) {
      std::size_t index = 0;
      for (std::size_t i = 0; i < num_fidelities_; ++i) {
        index += fidelities_[i] < resource;
      }
      return index < num_fidelities_ ? index : num_fidelities_ - 1;
    }
    return LargeFidelityIndex(resource);
  }
  std::size_t LargeFidelityIndex(double resource) const;

  std::uint32_t RowOf(const Configuration& config) const {
    const auto row = static_cast<std::uint32_t>(config.GetInt("row"));
    if (row >= rows_) [[unlikely]] FailRowRange(row);
    return row;
  }
  [[noreturn]] void FailRowRange(std::uint32_t row) const;  // cold path
  void InitFromPointers();

  // Either views into mapping_ or into owned_.*.
  const double* fidelities_ = nullptr;
  const double* losses_ = nullptr;
  const double* cum_times_ = nullptr;
  std::uint32_t rows_ = 0;
  std::size_t num_fidelities_ = 0;
  bool resumable_ = true;
  SearchSpace space_;
  TableData owned_;
  std::shared_ptr<Mapping> mapping_;
};

}  // namespace hypertune
