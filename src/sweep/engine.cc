#include "sweep/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "sweep/stats.h"

namespace hypertune {

namespace {

// Everything the per-thread cell loop reads, fixed before the fan-out.
struct SweepShared {
  SweepShared(const SweepSpec& spec_in,
              const std::vector<BenchmarkNorms>& norms_in,
              std::size_t cells_in)
      : spec(spec_in), norms(norms_in), cells(cells_in) {}

  const SweepSpec& spec;
  const std::vector<BenchmarkNorms>& norms;
  std::size_t cells = 0;
  // The work queue: one fetch_add claims one cell. Relaxed is enough — the
  // only cross-thread edges that matter are the claim itself (RMW total
  // order) and the join at the end, which publishes the result slots.
  std::atomic<std::size_t> next{0};
  // First failure wins; losers stop claiming.
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
};

// One cell: build the tuner, run the study in the thread's reusable
// context, reduce to the deterministic result row. `TabularBenchmark`
// lookups are const-pure, so many threads share one instance; the
// scheduler and driver are cell-local.
SweepCellResult RunCell(const SweepShared& shared, const SweepCell& cell,
                        SimContext& context) {
  const SweepSpec& spec = shared.spec;
  const SweepBenchmark& benchmark = spec.benchmarks[cell.benchmark];
  const BenchmarkNorms& norms = shared.norms[cell.benchmark];
  TabularBenchmark& table = *benchmark.table;

  TunerParams params = spec.params;
  params.seed = spec.seeds[cell.seed_index];
  auto scheduler = MakeTuner(spec.schedulers[cell.scheduler],
                             {.space = &table.space(),
                              .R = table.max_resource(),
                              .resumable = table.resumable(),
                              .random_guess_loss = norms.random_guess},
                             params);

  DriverOptions options;
  options.num_workers = spec.fleets[cell.fleet_index];
  options.time_limit = spec.time_limit;
  if (spec.full_train_budget > 0) {
    options.time_limit =
        std::min(options.time_limit,
                 spec.full_train_budget * norms.mean_full_time);
  }
  options.max_completed_jobs = spec.max_jobs;
  options.event_queue = spec.event_queue;
  options.record_runs = false;
  options.track_recommendations = false;
  SimulationDriver driver(*scheduler, table, options);
  const DriverResult run = driver.Run(context);

  SweepCellResult result;
  result.benchmark = static_cast<std::uint32_t>(cell.benchmark);
  result.scheduler = static_cast<std::uint32_t>(cell.scheduler);
  result.seed = params.seed;
  result.workers = options.num_workers;
  const auto incumbent = scheduler->Current();
  result.final_loss = incumbent.has_value()
                          ? incumbent->loss
                          : std::numeric_limits<double>::quiet_NaN();
  result.normalized_regret =
      NormalizedRegret(result.final_loss, norms.best_final,
                       norms.median_final);
  result.end_time = run.end_time;
  result.utilization =
      run.end_time > 0
          ? run.busy_time /
                (static_cast<double>(options.num_workers) * run.end_time)
          : 0.0;
  result.jobs_completed = run.jobs_completed;
  result.jobs_dropped = run.jobs_dropped;
  result.trials = scheduler->trials().size();
  return result;
}

void CellLoop(SweepShared& shared, std::vector<SweepCellResult>& results) {
  SimContext context;  // one per thread, reused across every claimed cell
  for (;;) {
    if (shared.failed.load(std::memory_order_relaxed)) return;
    const std::size_t index =
        shared.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= shared.cells) return;
    try {
      results[index] = RunCell(shared, CellAt(shared.spec, index), context);
    } catch (...) {
      const std::scoped_lock lock(shared.error_mutex);
      if (shared.error == nullptr) shared.error = std::current_exception();
      shared.failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace

BenchmarkNorms ComputeNorms(const TabularBenchmark& table) {
  const std::size_t top = table.num_fidelities() - 1;
  std::vector<double> finals;
  finals.reserve(table.rows());
  BenchmarkNorms norms;
  norms.best_final = std::numeric_limits<double>::infinity();
  norms.random_guess = -std::numeric_limits<double>::infinity();
  double total_full_time = 0;
  for (std::uint32_t row = 0; row < table.rows(); ++row) {
    const double final_loss = table.LossAt(row, top);
    finals.push_back(final_loss);
    if (final_loss < norms.best_final) norms.best_final = final_loss;
    const double first_loss = table.LossAt(row, 0);
    if (first_loss > norms.random_guess) norms.random_guess = first_loss;
    total_full_time += table.CumTimeAt(row, top);
  }
  norms.median_final = Median(finals);
  norms.mean_full_time = total_full_time / table.rows();
  return norms;
}

std::vector<SweepCellResult> RunSweep(const SweepSpec& spec,
                                      const SweepOptions& options,
                                      SweepThroughput* throughput) {
  ValidateSpec(spec);
  HT_CHECK_MSG(options.threads > 0, "sweep needs at least one thread");
  const auto start = std::chrono::steady_clock::now();

  std::vector<BenchmarkNorms> norms;
  norms.reserve(spec.benchmarks.size());
  for (const auto& benchmark : spec.benchmarks) {
    norms.push_back(ComputeNorms(*benchmark.table));
  }

  SweepShared shared{spec, norms, CellCount(spec)};
  std::vector<SweepCellResult> results(shared.cells);
  const auto workers = static_cast<std::size_t>(options.threads);
  if (workers <= 1 || shared.cells <= 1) {
    CellLoop(shared, results);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      threads.emplace_back([&] { CellLoop(shared, results); });
    }
    for (auto& thread : threads) thread.join();
  }
  if (shared.error != nullptr) std::rethrow_exception(shared.error);

  if (throughput != nullptr) {
    throughput->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    throughput->cells = shared.cells;
    throughput->jobs = 0;
    for (const auto& result : results) {
      throughput->jobs += result.jobs_completed;
    }
  }
  return results;
}

}  // namespace hypertune
