// The parallel sweep engine: fans a SweepSpec grid across a thread pool
// where each cell runs a full SimulationDriver study against the shared
// tabular benchmark. Engineered for thousands of cells per CI minute:
//
//   * one mmap'd table per benchmark, shared immutably by every thread —
//     loaded once, never copied;
//   * per-thread reusable run contexts (SimContext: event-queue storage,
//     payload slab, idle bitmap, timing buffers) reset between cells
//     instead of reallocated;
//   * atomic-counter cell claiming — a fetch_add per cell, so stragglers
//     never serialize the tail behind a static partition;
//   * per-cell result slots merged by cell index, so the output is
//     byte-identical at any thread count (each cell is a deterministic
//     function of its spec alone; pinned by tests/sweep_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "sweep/spec.h"

namespace hypertune {

/// The deterministic outcome of one cell. Everything here feeds the report
/// and must be a pure function of the cell spec — no wall-clock, no thread
/// identity.
struct SweepCellResult {
  std::uint32_t benchmark = 0;
  std::uint32_t scheduler = 0;
  std::uint64_t seed = 0;
  int workers = 0;
  /// Incumbent validation loss at end of run (Scheduler::Current); NaN when
  /// the tuner never produced a recommendation.
  double final_loss = 0;
  /// See NormalizedRegret: (final_loss - table best) / (table median - best)
  /// over the table's top-fidelity column.
  double normalized_regret = 0;
  /// Virtual end time and fleet utilization of the cell's study.
  double end_time = 0;
  double utilization = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_dropped = 0;
  std::uint64_t trials = 0;
};

struct SweepOptions {
  /// Worker threads claiming cells; 1 runs inline on the caller's thread.
  int threads = 1;
};

/// Wall-clock throughput of one RunSweep call — the non-deterministic side
/// channel for benches and logs. Never feeds the report.
struct SweepThroughput {
  double wall_seconds = 0;
  std::size_t cells = 0;
  /// Simulated job completions summed over cells.
  std::uint64_t jobs = 0;
};

/// Table-derived normalization constants, computed once per benchmark
/// before the fan-out (all three over the table's rows):
struct BenchmarkNorms {
  /// Minimum loss at the top fidelity — the best any tuner can reach.
  double best_final = 0;
  /// Median loss at the top fidelity — the regret reference (an average
  /// configuration trained to completion).
  double median_final = 0;
  /// Maximum loss at the lowest fidelity — the untrained-model proxy
  /// (PBT's random-guess level).
  double random_guess = 0;
  /// Mean cumulative time to train a row to the top fidelity — the unit of
  /// SweepSpec::full_train_budget.
  double mean_full_time = 0;
};

BenchmarkNorms ComputeNorms(const TabularBenchmark& table);

/// Runs the whole grid; results are indexed by cell (CellAt order) and
/// byte-identical at any thread count. Throws CheckError on an invalid
/// spec; a failure inside any cell (unknown tuner name, table row range)
/// stops the sweep and rethrows on the calling thread.
std::vector<SweepCellResult> RunSweep(const SweepSpec& spec,
                                      const SweepOptions& options,
                                      SweepThroughput* throughput = nullptr);

}  // namespace hypertune
