#include "sweep/report.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/table.h"
#include "sweep/stats.h"

namespace hypertune {

namespace {

Json CiJson(const BootstrapCi& ci) {
  Json object;
  object.Set("mean", Json(ci.mean));
  object.Set("lo", Json(ci.lo));
  object.Set("hi", Json(ci.hi));
  return object;
}

std::string CiText(const Json& ci, int precision) {
  return FormatDouble(ci.at("mean").AsDouble(), precision) + " [" +
         FormatDouble(ci.at("lo").AsDouble(), precision) + ", " +
         FormatDouble(ci.at("hi").AsDouble(), precision) + "]";
}

}  // namespace

Json BuildSweepReport(const SweepSpec& spec,
                      const std::vector<SweepCellResult>& results,
                      const SweepReportOptions& options) {
  HT_CHECK_MSG(results.size() == CellCount(spec),
               "result count " << results.size() << " != grid cells "
                               << CellCount(spec));
  Json report;
  report.Set("format", Json("htsweep-report-v1"));

  Json grid;
  Json benchmark_names, scheduler_names, seeds, fleets;
  for (const auto& benchmark : spec.benchmarks) {
    benchmark_names.PushBack(Json(benchmark.name));
  }
  for (const auto& name : spec.schedulers) {
    scheduler_names.PushBack(Json(name));
  }
  for (const auto seed : spec.seeds) seeds.PushBack(Json(seed));
  for (const int fleet : spec.fleets) fleets.PushBack(Json(fleet));
  grid.Set("benchmarks", std::move(benchmark_names));
  grid.Set("schedulers", std::move(scheduler_names));
  grid.Set("seeds", std::move(seeds));
  grid.Set("fleets", std::move(fleets));
  grid.Set("cells", Json(static_cast<std::int64_t>(results.size())));
  grid.Set("max_jobs", Json(static_cast<std::int64_t>(spec.max_jobs)));
  grid.Set("time_limit", Json(spec.time_limit));
  grid.Set("full_train_budget", Json(spec.full_train_budget));
  Json params;
  params.Set("eta", Json(spec.params.eta));
  params.Set("r_divisor", Json(spec.params.r_divisor));
  params.Set("n", Json(static_cast<std::int64_t>(spec.params.n)));
  params.Set("s", Json(spec.params.s));
  params.Set("resume", Json(spec.params.resume));
  grid.Set("params", std::move(params));
  report.Set("grid", std::move(grid));

  Json cells;
  for (const auto& result : results) {
    Json cell;
    cell.Set("benchmark", Json(spec.benchmarks[result.benchmark].name));
    cell.Set("scheduler", Json(spec.schedulers[result.scheduler]));
    cell.Set("seed", Json(result.seed));
    cell.Set("workers", Json(result.workers));
    cell.Set("final_loss", Json(result.final_loss));
    cell.Set("normalized_regret", Json(result.normalized_regret));
    cell.Set("jobs", Json(static_cast<std::int64_t>(result.jobs_completed)));
    cell.Set("dropped", Json(static_cast<std::int64_t>(result.jobs_dropped)));
    cell.Set("trials", Json(static_cast<std::int64_t>(result.trials)));
    cell.Set("end_time", Json(result.end_time));
    cell.Set("utilization", Json(result.utilization));
    cells.PushBack(std::move(cell));
  }
  report.Set("cells", std::move(cells));

  // Aggregates per (benchmark, fleet): rank schedulers within each seed,
  // then bootstrap each scheduler's per-seed loss/regret/rank samples.
  const std::size_t num_schedulers = spec.schedulers.size();
  const std::size_t num_seeds = spec.seeds.size();
  const std::size_t num_fleets = spec.fleets.size();
  auto cell_index = [&](std::size_t b, std::size_t s, std::size_t d,
                        std::size_t f) {
    return ((b * num_schedulers + s) * num_seeds + d) * num_fleets + f;
  };
  Json aggregates;
  std::uint64_t row_counter = 0;
  for (std::size_t b = 0; b < spec.benchmarks.size(); ++b) {
    for (std::size_t f = 0; f < num_fleets; ++f) {
      std::vector<std::vector<double>> losses(
          num_seeds, std::vector<double>(num_schedulers));
      for (std::size_t d = 0; d < num_seeds; ++d) {
        for (std::size_t s = 0; s < num_schedulers; ++s) {
          losses[d][s] = results[cell_index(b, s, d, f)].final_loss;
        }
      }
      const auto ranks = RankRows(losses);
      for (std::size_t s = 0; s < num_schedulers; ++s) {
        std::vector<double> loss_col(num_seeds), regret_col(num_seeds),
            rank_col(num_seeds);
        for (std::size_t d = 0; d < num_seeds; ++d) {
          loss_col[d] = losses[d][s];
          regret_col[d] = results[cell_index(b, s, d, f)].normalized_regret;
          rank_col[d] = ranks[d][s];
        }
        // One derived bootstrap stream per (row, metric) so rows are
        // decorrelated while the whole report stays a pure function of
        // bootstrap_seed.
        const std::uint64_t base = options.bootstrap_seed + 3 * row_counter;
        ++row_counter;
        Json row;
        row.Set("benchmark", Json(spec.benchmarks[b].name));
        row.Set("workers", Json(spec.fleets[f]));
        row.Set("scheduler", Json(spec.schedulers[s]));
        row.Set("seeds", Json(static_cast<std::int64_t>(num_seeds)));
        row.Set("final_loss",
                CiJson(BootstrapMeanCi(loss_col, options.bootstrap_resamples,
                                       options.confidence, base)));
        row.Set("normalized_regret",
                CiJson(BootstrapMeanCi(regret_col,
                                       options.bootstrap_resamples,
                                       options.confidence, base + 1)));
        row.Set("rank",
                CiJson(BootstrapMeanCi(rank_col, options.bootstrap_resamples,
                                       options.confidence, base + 2)));
        aggregates.PushBack(std::move(row));
      }
    }
  }
  report.Set("aggregates", std::move(aggregates));
  return report;
}

std::string SweepReportText(const Json& report) {
  std::string out;
  const JsonArray& aggregates = report.at("aggregates").AsArray();
  std::size_t i = 0;
  while (i < aggregates.size()) {
    const std::string& benchmark = aggregates[i].at("benchmark").AsString();
    const std::int64_t workers = aggregates[i].at("workers").AsInt();
    // The group [i, j): rows share (benchmark, workers) by construction.
    std::size_t j = i;
    std::vector<std::size_t> group;
    while (j < aggregates.size() &&
           aggregates[j].at("benchmark").AsString() == benchmark &&
           aggregates[j].at("workers").AsInt() == workers) {
      group.push_back(j);
      ++j;
    }
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t c) {
      return aggregates[a].at("rank").at("mean").AsDouble() <
             aggregates[c].at("rank").at("mean").AsDouble();
    });
    out += "### " + benchmark + " @ " + std::to_string(workers) +
           " workers (" +
           std::to_string(aggregates[i].at("seeds").AsInt()) + " seeds)\n";
    TextTable table({"scheduler", "mean rank [95% CI]",
                     "final loss [95% CI]", "norm. regret"});
    for (const std::size_t row : group) {
      table.AddRow({aggregates[row].at("scheduler").AsString(),
                    CiText(aggregates[row].at("rank"), 2),
                    CiText(aggregates[row].at("final_loss"), 4),
                    FormatDouble(
                        aggregates[row].at("normalized_regret").at("mean")
                            .AsDouble(),
                        4)});
    }
    out += table.ToMarkdown();
    out += "\n";
    i = j;
  }
  return out;
}

}  // namespace hypertune
