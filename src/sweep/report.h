// Sweep report emission: the machine-readable JSON document CI diffs
// against a committed golden, plus a human text rendering. The JSON is a
// pure function of (spec, results, report options) — doubles serialize via
// Json's fixed %.17g, the bootstrap is seeded here — so two sweeps of the
// same grid produce byte-identical reports at any thread count.
//
// Schema (format "htsweep-report-v1"; see DESIGN.md §10):
//   grid        — the axes (benchmark names, scheduler names, seeds,
//                 fleets), cell count, and stop criteria;
//   cells       — one row per cell in CellAt order: identity plus
//                 final_loss, normalized_regret, jobs, dropped, trials,
//                 end_time, utilization;
//   aggregates  — one row per (benchmark, fleet, scheduler): mean ± seeded
//                 bootstrap CI of final loss, normalized regret, and the
//                 per-seed fractional rank (1 = best among schedulers).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "sweep/engine.h"

namespace hypertune {

struct SweepReportOptions {
  std::size_t bootstrap_resamples = 1000;
  double confidence = 0.95;
  /// Seed for the bootstrap's resampling streams (derived per aggregate
  /// row, so rows are decorrelated but the report stays deterministic).
  std::uint64_t bootstrap_seed = 7;
};

Json BuildSweepReport(const SweepSpec& spec,
                      const std::vector<SweepCellResult>& results,
                      const SweepReportOptions& options = {});

/// Markdown tables per (benchmark, fleet): one row per scheduler with mean
/// rank, final loss, and regret (CIs bracketed), sorted by mean rank.
std::string SweepReportText(const Json& report);

}  // namespace hypertune
