#include "sweep/spec.h"

#include "common/check.h"

namespace hypertune {

void ValidateSpec(const SweepSpec& spec) {
  HT_CHECK_MSG(!spec.benchmarks.empty(), "sweep needs at least one benchmark");
  HT_CHECK_MSG(!spec.schedulers.empty(), "sweep needs at least one scheduler");
  HT_CHECK_MSG(!spec.seeds.empty(), "sweep needs at least one seed");
  HT_CHECK_MSG(!spec.fleets.empty(), "sweep needs at least one fleet size");
  for (const auto& benchmark : spec.benchmarks) {
    HT_CHECK_MSG(benchmark.table != nullptr,
                 "sweep benchmark '" << benchmark.name << "' has no table");
  }
  for (const int fleet : spec.fleets) {
    HT_CHECK_MSG(fleet > 0, "fleet size must be positive, got " << fleet);
  }
  HT_CHECK_MSG(spec.full_train_budget >= 0,
               "full_train_budget must be non-negative, got "
                   << spec.full_train_budget);
  HT_CHECK_MSG(
      spec.max_jobs > 0 || spec.time_limit < 1e18 ||
          spec.full_train_budget > 0,
      "sweep cells need a stop criterion (max_jobs, time_limit, or "
      "full_train_budget) — open-ended tuners would never return");
}

std::size_t CellCount(const SweepSpec& spec) {
  return spec.benchmarks.size() * spec.schedulers.size() *
         spec.seeds.size() * spec.fleets.size();
}

SweepCell CellAt(const SweepSpec& spec, std::size_t index) {
  HT_CHECK_MSG(index < CellCount(spec), "cell index " << index
                                                      << " out of range");
  const std::size_t fleets = spec.fleets.size();
  const std::size_t seeds = spec.seeds.size();
  const std::size_t schedulers = spec.schedulers.size();
  SweepCell cell;
  cell.index = index;
  cell.fleet_index = index % fleets;
  index /= fleets;
  cell.seed_index = index % seeds;
  index /= seeds;
  cell.scheduler = index % schedulers;
  cell.benchmark = index / schedulers;
  return cell;
}

}  // namespace hypertune
