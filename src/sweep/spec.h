// The sweep grid: a (benchmark × scheduler × seed × worker-fleet) cross
// product where each cell is one full SimulationDriver study. The grid is
// flattened into a dense cell index space with a fixed enumeration order —
// benchmark-major, then scheduler, seed, fleet — so any thread can claim a
// cell by index and results merge back deterministically regardless of who
// ran what when (see engine.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "registry/registry.h"
#include "sim/driver.h"
#include "surrogate/table.h"

namespace hypertune {

/// One benchmark axis entry. The table is not owned and must outlive the
/// sweep; it is shared across all engine threads — TabularBenchmark's
/// Loss/Duration are non-const only because JobEnvironment's interface is,
/// but they are pure reads into the mmap/owned payload, so a grid of
/// thousands of cells touches one copy of the data with no synchronization.
struct SweepBenchmark {
  /// Report label ("cifar", "ptb", ...).
  std::string name;
  TabularBenchmark* table = nullptr;
};

struct SweepSpec {
  std::vector<SweepBenchmark> benchmarks;
  /// Registry tuner names (see TunerNames()).
  std::vector<std::string> schedulers;
  std::vector<std::uint64_t> seeds;
  /// Worker-fleet sizes (DriverOptions::num_workers per cell).
  std::vector<int> fleets;
  /// Shared tuner sizing; `seed` is overridden with the cell's seed.
  TunerParams params;
  /// Per-cell virtual-time budget (absolute simulator time).
  double time_limit = 1e18;
  /// Per-cell virtual-time budget in units of the benchmark's mean
  /// full-training time (0 = unused). This is the paper's equal-time
  /// comparison: benchmarks whose R differs by orders of magnitude get the
  /// same budget in "average full trainings", scaled per table from its
  /// top-fidelity cumulative-time column (BenchmarkNorms::mean_full_time).
  double full_train_budget = 0;
  /// Per-cell completion cap (0 = none). Open-ended tuners (ASHA) need at
  /// least one of the three stop criteria.
  std::size_t max_jobs = 0;
  /// Event-queue engine for every cell; changes throughput, never results.
  SimEngine event_queue = SimEngine::kCalendar;
};

/// A resolved grid cell: the dense index plus its axis coordinates.
struct SweepCell {
  std::size_t index = 0;
  std::size_t benchmark = 0;
  std::size_t scheduler = 0;
  std::size_t seed_index = 0;
  std::size_t fleet_index = 0;
};

/// CheckError unless every axis is non-empty, every table pointer is set,
/// every fleet is positive, and at least one stop criterion bounds cells.
void ValidateSpec(const SweepSpec& spec);

std::size_t CellCount(const SweepSpec& spec);

/// The fixed enumeration: index = ((b * S + s) * D + d) * F + f over
/// schedulers S, seeds D, fleets F.
SweepCell CellAt(const SweepSpec& spec, std::size_t index);

}  // namespace hypertune
