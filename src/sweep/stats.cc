#include "sweep/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"

namespace hypertune {

BootstrapCi BootstrapMeanCi(std::span<const double> xs,
                            std::size_t resamples, double confidence,
                            std::uint64_t seed) {
  BootstrapCi ci;
  ci.n = xs.size();
  if (xs.empty()) return ci;
  ci.mean = Mean(xs);
  if (xs.size() == 1) {
    ci.lo = ci.hi = xs[0];
    return ci;
  }
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    double sum = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum += xs[rng.Index(xs.size())];
    }
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  const double tail = (1.0 - confidence) / 2.0;
  ci.lo = Quantile(means, tail);
  ci.hi = Quantile(means, 1.0 - tail);
  return ci;
}

std::vector<std::vector<double>> RankRows(
    const std::vector<std::vector<double>>& rows) {
  std::vector<std::vector<double>> ranks;
  ranks.reserve(rows.size());
  std::vector<double> cleaned;
  for (const auto& row : rows) {
    cleaned.assign(row.begin(), row.end());
    for (double& x : cleaned) {
      if (std::isnan(x)) x = std::numeric_limits<double>::infinity();
    }
    ranks.push_back(Ranks(cleaned));
  }
  return ranks;
}

double NormalizedRegret(double loss, double best, double reference) {
  const double gap = loss - best;
  if (!(reference > best)) return gap;
  return gap / (reference - best);
}

}  // namespace hypertune
