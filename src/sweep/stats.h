// The sweep's statistics layer: the rank / regret / confidence-interval
// machinery behind the paper's cross-seed scheduler comparisons (Figures
// 3–8 at real sample sizes). Everything here is deterministic: the
// bootstrap draws from a caller-seeded Rng, so a sweep report is a pure
// function of the grid results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hypertune {

/// Percentile-bootstrap confidence interval for a sample mean.
struct BootstrapCi {
  double mean = 0;
  double lo = 0;
  double hi = 0;
  std::size_t n = 0;
};

/// Mean of `xs` with a seeded percentile-bootstrap CI: `resamples` means of
/// n-with-replacement resamples, interval at the (1±confidence)/2
/// quantiles. Degenerate inputs collapse exactly: n == 1 (or constant data)
/// yields lo == hi == mean; n == 0 yields all zeros with n = 0.
BootstrapCi BootstrapMeanCi(std::span<const double> xs,
                            std::size_t resamples, double confidence,
                            std::uint64_t seed);

/// Rank aggregation input: one row per group (e.g. per seed), one column
/// per scheduler. Returns fractional ascending ranks per row (1 = lowest
/// loss = best; ties share the average rank). NaN entries rank as +inf
/// (worst), so a scheduler that produced no recommendation loses every
/// comparison rather than poisoning the ordering.
std::vector<std::vector<double>> RankRows(
    const std::vector<std::vector<double>>& rows);

/// Regret of `loss` above `best`, normalized by the (reference - best) gap
/// so benchmarks with different loss scales are comparable: 0 = matched the
/// best final loss in the table, 1 = no better than the reference (the
/// table's median final loss). Falls back to the raw gap when the
/// reference does not exceed best.
double NormalizedRegret(double loss, double best, double reference);

}  // namespace hypertune
