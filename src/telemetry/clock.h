// Time sources for telemetry timestamps.
//
// Trace determinism is a first-class requirement: a seeded simulation must
// produce byte-identical traces across reruns. The simulator therefore
// drives a VirtualClock (advanced to each event's virtual time before any
// instrumented code runs), while real executions use a SteadyClock anchored
// at construction. Instrumented layers never pick a clock themselves — they
// read whatever clock their Telemetry sink carries.
#pragma once

#include <chrono>

namespace hypertune {

class TelemetryClock {
 public:
  virtual ~TelemetryClock() = default;

  /// Current time in seconds. The origin is clock-specific: virtual time 0
  /// for VirtualClock, construction time for SteadyClock.
  virtual double Now() const = 0;
};

/// Manually advanced clock for deterministic (simulated) runs. The driver
/// owns the notion of "now" and pushes it here before emitting events.
class VirtualClock final : public TelemetryClock {
 public:
  void Set(double now) { now_ = now; }
  double Now() const override { return now_; }

 private:
  double now_ = 0;
};

/// Monotonic wall clock reporting seconds since construction.
class SteadyClock final : public TelemetryClock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}
  double Now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hypertune
