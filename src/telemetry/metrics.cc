#include "telemetry/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace hypertune {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  HT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bucket bounds must be sorted ascending");
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> ExponentialBuckets(double scale, double base,
                                       std::size_t count) {
  HT_CHECK(scale > 0 && base > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = scale;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= base;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

Json MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = JsonObject{};
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, Json(counter->value()));
  }
  Json gauges = JsonObject{};
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, Json(gauge->value()));
  }
  Json histograms = JsonObject{};
  for (const auto& [name, histogram] : histograms_) {
    Json entry = JsonObject{};
    entry.Set("count", Json(histogram->count()));
    entry.Set("sum", Json(histogram->sum()));
    Json bounds = JsonArray{};
    for (double bound : histogram->bounds()) bounds.PushBack(Json(bound));
    entry.Set("bounds", std::move(bounds));
    Json buckets = JsonArray{};
    for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
      buckets.PushBack(Json(histogram->bucket(i)));
    }
    entry.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(entry));
  }
  Json snapshot = JsonObject{};
  snapshot.Set("counters", std::move(counters));
  snapshot.Set("gauges", std::move(gauges));
  snapshot.Set("histograms", std::move(histograms));
  return snapshot;
}

}  // namespace hypertune
