// MetricsRegistry — named counters, gauges, and fixed-bucket histograms.
//
// Designed for the executor's hot path: once an instrument is looked up
// (registration takes a mutex), updates are plain atomic operations with no
// locking, so worker threads can increment counters and observe histogram
// samples concurrently. Snapshot() renders the whole registry as Json for
// export; instrument names are emitted in lexicographic order so snapshots
// of identical runs are byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace hypertune {

/// Monotonically increasing integer metric (events, jobs, errors, ...).
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point level (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
/// overflow bucket counts the rest. Bounds are immutable after creation, so
/// Observe() is lock-free (bucket search + two atomic adds).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::int64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Exponential bucket bounds base^0..base^(n-1) scaled by `scale` — the
/// usual shape for latency histograms.
std::vector<double> ExponentialBuckets(double scale, double base,
                                       std::size_t count);

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime (instruments are never removed), so hot paths
  /// should look up once and cache the pointer.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used on first creation only; later calls with the
  /// same name return the existing histogram regardless of bounds.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted lexicographically.
  Json Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hypertune
