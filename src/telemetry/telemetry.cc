#include "telemetry/telemetry.h"

#include <map>

#include "common/table.h"

namespace hypertune {

Telemetry::Telemetry(std::unique_ptr<TelemetryClock> clock)
    : clock_(clock ? std::move(clock) : std::make_unique<SteadyClock>()) {
  virtual_clock_ = dynamic_cast<VirtualClock*>(clock_.get());
}

void Telemetry::Event(std::string name, std::string category, Json args,
                      std::int64_t worker) {
  EventAt(Now(), std::move(name), std::move(category), std::move(args),
          worker);
}

void Telemetry::EventAt(double time, std::string name, std::string category,
                        Json args, std::int64_t worker) {
  TraceEvent event;
  event.time = time;
  event.name = std::move(name);
  event.category = std::move(category);
  event.worker = worker;
  event.args = std::move(args);
  tracer_.Record(std::move(event));
}

void Telemetry::SpanAt(double start, double duration, std::string name,
                       std::string category, Json args, std::int64_t worker) {
  TraceEvent event;
  event.time = start;
  event.duration = duration;
  event.name = std::move(name);
  event.category = std::move(category);
  event.worker = worker;
  event.args = std::move(args);
  tracer_.Record(std::move(event));
}

Json Telemetry::MetricsJson() const {
  Json out = JsonObject{};
  out.Set("metrics", metrics_.Snapshot());
  out.Set("events", Json(static_cast<std::int64_t>(tracer_.size())));
  return out;
}

std::string Telemetry::SummaryText() const {
  std::string out;

  std::map<std::string, std::int64_t> by_category;
  for (const auto& event : tracer_.Events()) ++by_category[event.category];
  if (!by_category.empty()) {
    TextTable events({"event category", "count"});
    for (const auto& [category, count] : by_category) {
      events.AddRow({category, std::to_string(count)});
    }
    out += events.ToMarkdown();
  }

  const Json snapshot = metrics_.Snapshot();
  const auto& counters = snapshot.at("counters").AsObject();
  const auto& gauges = snapshot.at("gauges").AsObject();
  if (!counters.empty() || !gauges.empty()) {
    TextTable table({"metric", "value"});
    for (const auto& [name, value] : counters) {
      table.AddRow({name, std::to_string(value.AsInt())});
    }
    for (const auto& [name, value] : gauges) {
      table.AddRow({name, FormatDouble(value.AsDouble())});
    }
    if (!out.empty()) out += "\n";
    out += table.ToMarkdown();
  }

  const auto& histograms = snapshot.at("histograms").AsObject();
  if (!histograms.empty()) {
    TextTable table({"histogram", "count", "sum", "mean"});
    for (const auto& [name, entry] : histograms) {
      const auto count = entry.at("count").AsInt();
      const double sum = entry.at("sum").AsDouble();
      table.AddRow({name, std::to_string(count), FormatDouble(sum),
                    FormatDouble(count > 0
                                     ? sum / static_cast<double>(count)
                                     : 0.0)});
    }
    if (!out.empty()) out += "\n";
    out += table.ToMarkdown();
  }
  return out;
}

}  // namespace hypertune
