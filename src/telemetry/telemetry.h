// Telemetry — the sink instrumented layers write to.
//
// Contract (see DESIGN.md): every instrumented component holds a nullable
// `Telemetry*` that defaults to nullptr, and guards each emission with
// `if (telemetry_)`. Disabled telemetry therefore costs one pointer
// compare per site — no locks, no allocation, no time-stamping.
//
// A Telemetry object bundles the three pieces every layer needs:
//   - a clock (virtual for simulations, steady for real executions),
//   - a MetricsRegistry (atomic counters/gauges/histograms),
//   - an EventTracer (structured timestamped events).
// Components that know their own time (TuningServer, SimulationDriver —
// both are handed `now` explicitly) emit with EventAt/SpanAt; components
// that do not (schedulers, inside GetJob/Report) emit with Event(), which
// stamps from the clock. Drivers advance the virtual clock *before* calling
// into instrumented code so both paths agree on "now".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace hypertune {

class TextTable;

class Telemetry {
 public:
  /// Uses a SteadyClock when `clock` is null (the real-execution default).
  explicit Telemetry(std::unique_ptr<TelemetryClock> clock = nullptr);

  /// Convenience factory for deterministic simulated runs.
  static std::unique_ptr<Telemetry> ForSimulation() {
    return std::make_unique<Telemetry>(std::make_unique<VirtualClock>());
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventTracer& tracer() { return tracer_; }
  const EventTracer& tracer() const { return tracer_; }

  double Now() const { return clock_->Now(); }

  /// The clock as a VirtualClock, or nullptr when this sink runs on wall
  /// time. Simulation drivers use this to push virtual time forward.
  VirtualClock* virtual_clock() { return virtual_clock_; }

  /// Advances the virtual clock when present; no-op on a steady clock.
  void AdvanceTo(double now) {
    if (virtual_clock_ != nullptr) virtual_clock_->Set(now);
  }

  /// Instant event stamped with the sink's clock.
  void Event(std::string name, std::string category, Json args = Json(),
             std::int64_t worker = 0);
  /// Instant event at an explicit time (clock-agnostic components).
  void EventAt(double time, std::string name, std::string category,
               Json args = Json(), std::int64_t worker = 0);
  /// Span [start, start + duration] on the given worker track.
  void SpanAt(double start, double duration, std::string name,
              std::string category, Json args = Json(),
              std::int64_t worker = 0);

  /// Counter/histogram shorthands for single-shot sites; hot paths should
  /// cache the instrument reference instead.
  void Count(const std::string& name, std::int64_t delta = 1) {
    metrics_.counter(name).Increment(delta);
  }

  /// Metrics snapshot plus trace summary: {"metrics": ..., "events": N}.
  Json MetricsJson() const;

  /// Human-readable summary: per-category event counts and every counter
  /// and histogram, rendered as markdown tables.
  std::string SummaryText() const;

 private:
  std::unique_ptr<TelemetryClock> clock_;
  VirtualClock* virtual_clock_ = nullptr;  // non-owning view of clock_
  MetricsRegistry metrics_;
  EventTracer tracer_;
};

}  // namespace hypertune
