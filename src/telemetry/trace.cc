#include "telemetry/trace.h"

namespace hypertune {

void EventTracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_source_ != nullptr) batch_source_->Drain(events_);
  events_.push_back(std::move(event));
}

void EventTracer::RecordBatch(std::vector<TraceEvent>&& events) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& event : events) events_.push_back(std::move(event));
}

void EventTracer::AttachBatchSource(BatchSource* source) {
  std::lock_guard<std::mutex> lock(mutex_);
  batch_source_ = source;
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

namespace {

Json JsonlLine(const TraceEvent& event) {
  Json line = JsonObject{};
  line.Set("t", Json(event.time));
  if (event.IsSpan()) line.Set("dur", Json(event.duration));
  line.Set("name", Json(event.name));
  line.Set("cat", Json(event.category));
  line.Set("worker", Json(event.worker));
  if (!event.args.IsNull()) line.Set("args", event.args);
  return line;
}

}  // namespace

std::string EventTracer::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& event : events_) {
    out += JsonlLine(event).Dump();
    out += '\n';
  }
  return out;
}

Json EventTracer::ToChromeTrace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json trace_events = JsonArray{};
  for (const auto& event : events_) {
    Json entry = JsonObject{};
    entry.Set("name", Json(event.name));
    entry.Set("cat", Json(event.category));
    entry.Set("ph", Json(event.IsSpan() ? "X" : "i"));
    // trace_event timestamps are microseconds.
    entry.Set("ts", Json(event.time * 1e6));
    if (event.IsSpan()) {
      entry.Set("dur", Json(event.duration * 1e6));
    } else {
      entry.Set("s", Json("t"));  // instant scope: thread
    }
    entry.Set("pid", Json(std::int64_t{0}));
    entry.Set("tid", Json(event.worker));
    if (!event.args.IsNull()) entry.Set("args", event.args);
    trace_events.PushBack(std::move(entry));
  }
  Json trace = JsonObject{};
  trace.Set("traceEvents", std::move(trace_events));
  trace.Set("displayTimeUnit", Json("ms"));
  return trace;
}

}  // namespace hypertune
