// EventTracer — an append-only log of structured, timestamped events.
//
// Two event shapes cover everything the system emits: instants (a trial was
// promoted, a lease expired) and spans (a worker ran a job from t to
// t+dur). Events carry a category for filtering, a worker/track id, and an
// optional Json args object. The tracer is thread-safe (one mutex around
// the append) — cheap enough for the executor, and irrelevant for the
// single-threaded simulator.
//
// Exports:
//   ToJsonl()       one compact JSON object per line — grep/jq-friendly.
//   ToChromeTrace() the Chrome trace_event format (JSON object with a
//                   "traceEvents" array), loadable in chrome://tracing and
//                   https://ui.perfetto.dev. Spans become "X" (complete)
//                   events, instants become "i" events; `worker` maps to
//                   tid so each worker gets its own track.
// Both are deterministic functions of the recorded events.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace hypertune {

struct TraceEvent {
  /// Seconds (virtual or steady, per the owning Telemetry's clock).
  double time = 0;
  /// Span length in seconds; negative means an instant event.
  double duration = -1;
  std::string name;
  /// Dotted lowercase taxonomy: "trial", "rung", "job", "lease", "worker".
  std::string category;
  /// Track id: worker index for spans, 0 for scheduler/server events.
  std::int64_t worker = 0;
  /// Optional structured payload (Json object) or null.
  Json args;

  bool IsSpan() const { return duration >= 0; }
};

class EventTracer {
 public:
  /// A deferred-event source (see src/lifecycle's telemetry batching): the
  /// simulation hot path coalesces its span/instant emissions into a local
  /// buffer instead of paying one Record (Json assembly + mutex) per event.
  /// While a source is attached, any direct Record first drains the source,
  /// so deferred events keep their exact log position relative to events
  /// recorded by other components (schedulers emitting mid-run) and every
  /// export stays byte-identical to the unbatched path.
  ///
  /// Attaching a source restricts the tracer to single-threaded use until
  /// it is detached — the drain reads buffer state the owner mutates
  /// without a lock. Reads (size/Events/ToJsonl/ToChromeTrace) do NOT
  /// drain; owners flush at their sync points before anyone reads.
  class BatchSource {
   public:
    virtual ~BatchSource() = default;
    /// Appends all buffered events, in emission order, and clears the
    /// buffer. Must not call back into the tracer.
    virtual void Drain(std::vector<TraceEvent>& out) = 0;
  };

  void Record(TraceEvent event);

  /// Bulk append under one lock; does not trigger a source drain (this is
  /// the call a draining source's owner uses to flush).
  void RecordBatch(std::vector<TraceEvent>&& events);

  /// Attaches (or, with nullptr, detaches) the deferred-event source.
  void AttachBatchSource(BatchSource* source);

  std::size_t size() const;
  /// Copy of all events recorded so far (in record order).
  std::vector<TraceEvent> Events() const;

  std::string ToJsonl() const;
  Json ToChromeTrace() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  BatchSource* batch_source_ = nullptr;
};

}  // namespace hypertune
