#include <gtest/gtest.h>

#include <cmath>

#include "analysis/aggregate.h"
#include "analysis/experiment.h"
#include "analysis/report.h"
#include "analysis/trajectory.h"
#include "common/check.h"
#include "core/asha.h"
#include "core/random_search.h"
#include "surrogate/benchmarks.h"

namespace hypertune {
namespace {

TEST(Trajectory, StepFunctionSemantics) {
  Trajectory trajectory;
  EXPECT_TRUE(std::isnan(trajectory.At(1.0)));
  trajectory.Add(10, 0.5);
  trajectory.Add(20, 0.3);
  EXPECT_TRUE(std::isnan(trajectory.At(9.9)));
  EXPECT_DOUBLE_EQ(trajectory.At(10), 0.5);
  EXPECT_DOUBLE_EQ(trajectory.At(15), 0.5);
  EXPECT_DOUBLE_EQ(trajectory.At(20), 0.3);
  EXPECT_DOUBLE_EQ(trajectory.At(1e9), 0.3);
}

TEST(Trajectory, RejectsOutOfOrderTimes) {
  Trajectory trajectory;
  trajectory.Add(10, 0.5);
  EXPECT_THROW(trajectory.Add(5, 0.4), CheckError);
}

TEST(Trajectory, TimeToReach) {
  Trajectory trajectory;
  trajectory.Add(10, 0.5);
  trajectory.Add(20, 0.3);
  trajectory.Add(30, 0.1);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(0.5), 10);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(0.2), 30);
  EXPECT_TRUE(std::isnan(trajectory.TimeToReach(0.05)));
}

TEST(Aggregate, GridAndBands) {
  Trajectory a, b;
  a.Add(1, 0.4);
  a.Add(5, 0.2);
  b.Add(2, 0.6);
  const auto series = Aggregate({a, b}, {1, 3, 6});
  ASSERT_EQ(series.times.size(), 3u);
  // t=1: only a defined.
  EXPECT_EQ(series.count[0], 1u);
  EXPECT_DOUBLE_EQ(series.mean[0], 0.4);
  // t=3: a=0.4, b=0.6.
  EXPECT_EQ(series.count[1], 2u);
  EXPECT_DOUBLE_EQ(series.mean[1], 0.5);
  EXPECT_DOUBLE_EQ(series.min[1], 0.4);
  EXPECT_DOUBLE_EQ(series.max[1], 0.6);
  // t=6: a=0.2, b=0.6.
  EXPECT_DOUBLE_EQ(series.mean[2], 0.4);
}

TEST(Aggregate, AllUndefinedYieldsNaN) {
  Trajectory a;
  a.Add(100, 0.5);
  const auto series = Aggregate({a}, {1});
  EXPECT_EQ(series.count[0], 0u);
  EXPECT_TRUE(std::isnan(series.mean[0]));
}

TEST(Aggregate, UniformGridExcludesZero) {
  const auto grid = UniformGrid(100, 4);
  EXPECT_EQ(grid, (std::vector<double>{25, 50, 75, 100}));
  EXPECT_THROW(UniformGrid(0, 4), CheckError);
}

TEST(Aggregate, MeanTimeToReach) {
  Trajectory a, b;
  a.Add(10, 0.1);
  b.Add(30, 0.1);
  EXPECT_DOUBLE_EQ(MeanTimeToReach({a, b}, 0.1), 20.0);
  EXPECT_TRUE(std::isnan(MeanTimeToReach({a, b}, 0.01)));
}

TEST(Experiment, RunsAndAggregates) {
  ExperimentOptions options;
  options.num_trials = 3;
  options.num_workers = 2;
  options.time_limit = 2000;
  options.grid_points = 8;
  const auto result = RunExperiment(
      "ASHA",
      [](std::uint64_t seed) { return benchmarks::UnitTime(seed); },
      [](const SyntheticBenchmark& bench, std::uint64_t seed) {
        AshaOptions asha;
        asha.r = 1;
        asha.R = bench.R();
        asha.eta = 4;
        asha.seed = seed;
        return std::make_unique<AshaScheduler>(
            MakeRandomSampler(bench.space()), asha);
      },
      options);
  EXPECT_EQ(result.method, "ASHA");
  EXPECT_EQ(result.trajectories.size(), 3u);
  EXPECT_EQ(result.series.times.size(), 8u);
  EXPECT_GT(result.mean_trials_evaluated, 10);
  EXPECT_GT(result.mean_worker_utilization, 0.8);
  // Final mean metric must be defined and sane for the unit benchmark.
  EXPECT_LT(result.series.mean.back(), 0.7);
  EXPECT_GE(result.series.mean.back(), 0.0);
}

TEST(Experiment, DeterministicAcrossCalls) {
  ExperimentOptions options;
  options.num_trials = 2;
  options.time_limit = 500;
  auto run = [&] {
    return RunExperiment(
        "Random",
        [](std::uint64_t seed) { return benchmarks::UnitTime(seed); },
        [](const SyntheticBenchmark& bench, std::uint64_t seed) {
          RandomSearchOptions rs;
          rs.R = bench.R();
          rs.seed = seed;
          return std::make_unique<RandomSearchScheduler>(
              MakeRandomSampler(bench.space()), rs);
        },
        options);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.series.mean.size(), b.series.mean.size());
  for (std::size_t i = 0; i < a.series.mean.size(); ++i) {
    if (std::isnan(a.series.mean[i])) {
      EXPECT_TRUE(std::isnan(b.series.mean[i]));
    } else {
      EXPECT_DOUBLE_EQ(a.series.mean[i], b.series.mean[i]);
    }
  }
}

TEST(Report, TablesRender) {
  MethodResult method;
  method.method = "ASHA";
  Trajectory trajectory;
  trajectory.Add(1, 0.5);
  trajectory.Add(2, 0.25);
  method.trajectories.push_back(trajectory);
  method.series = Aggregate(method.trajectories, {1, 2});
  method.mean_trials_evaluated = 12;

  const auto series_table = SeriesTable({method}, "minutes", "test error");
  EXPECT_EQ(series_table.NumRows(), 2u);
  EXPECT_NE(series_table.ToMarkdown().find("ASHA"), std::string::npos);

  const auto summary = SummaryTable({method}, "test error");
  EXPECT_NE(summary.ToMarkdown().find("0.2500"), std::string::npos);

  const auto ttt = TimeToTargetTable({method}, 0.3, "minutes");
  EXPECT_NE(ttt.ToMarkdown().find("2.0"), std::string::npos);
  const auto never = TimeToTargetTable({method}, 0.01, "minutes");
  EXPECT_NE(never.ToMarkdown().find("never"), std::string::npos);
}

TEST(Report, FormatMetricNaN) {
  EXPECT_EQ(FormatMetric(std::nan(""), 2), "-");
  EXPECT_EQ(FormatMetric(1.5, 2), "1.50");
}

TEST(Trajectory, TestMetricMappingUsesRunningBest) {
  // Build a fake driver result with two recommendations where the second
  // has a worse *test* metric; the trajectory must not regress.
  auto bench = benchmarks::UnitTime(1);
  TrialBank bank;
  Rng rng(1);
  const auto c0 = bench->space().Sample(rng);
  const auto c1 = bench->space().Sample(rng);
  const TrialId t0 = bank.Create(c0, 0);
  const TrialId t1 = bank.Create(c1, 0);
  DriverResult result;
  result.recommendations.push_back({1.0, t0, 0.5, 256});
  result.recommendations.push_back({2.0, t1, 0.4, 256});
  const auto trajectory = TestMetricTrajectory(result, bank, *bench);
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_LE(trajectory.points()[1].second, trajectory.points()[0].second);
}

}  // namespace
}  // namespace hypertune
