#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/bohb.h"
#include "baselines/fabolas.h"
#include "baselines/vizier.h"
#include "common/check.h"

namespace hypertune {
namespace {

SearchSpace BowlSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0))
      .Add("y", Domain::Continuous(0.0, 1.0));
  return space;
}

/// Smooth 2-d bowl with minimum 0 at (0.3, 0.6).
double Bowl(const Configuration& config) {
  const double dx = config.GetDouble("x") - 0.3;
  const double dy = config.GetDouble("y") - 0.6;
  return dx * dx + dy * dy;
}

// ------------------------------------------------------------------- BOHB

TEST(Bohb, IsSyncShaWithTpeSampling) {
  BohbOptions options;
  options.sha.n = 9;
  options.sha.r = 1;
  options.sha.R = 9;
  options.sha.eta = 3;
  options.sha.spawn_new_brackets = false;
  auto bohb = MakeBohb(BowlSpace(), options);
  EXPECT_EQ(bohb->name(), "BOHB");
  // Exact SHA mechanics: 9 rung-0 jobs then a barrier.
  for (int i = 0; i < 9; ++i) {
    const auto job = bohb->GetJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->rung, 0);
  }
  EXPECT_FALSE(bohb->GetJob().has_value());
}

TEST(Bohb, ModelImprovesSamplingOverBrackets) {
  // After enough observations the TPE model samples near the bowl minimum
  // more often than uniform would.
  BohbOptions options;
  options.sha.n = 27;
  options.sha.r = 1;
  options.sha.R = 9;
  options.sha.eta = 3;
  options.sha.spawn_new_brackets = true;
  options.tpe.random_fraction = 0.1;
  options.tpe.min_points = 5;
  auto bohb = MakeBohb(BowlSpace(), options);
  // Run several brackets sequentially.
  double sum_distance_late = 0;
  int late_count = 0;
  for (int step = 0; step < 400; ++step) {
    const auto job = bohb->GetJob();
    ASSERT_TRUE(job.has_value());
    bohb->ReportResult(*job, Bowl(job->config));
    if (step >= 300 && job->rung == 0) {
      const double dx = job->config.GetDouble("x") - 0.3;
      const double dy = job->config.GetDouble("y") - 0.6;
      sum_distance_late += std::sqrt(dx * dx + dy * dy);
      ++late_count;
    }
  }
  ASSERT_GT(late_count, 10);
  // Uniform sampling would average ~0.48 distance from (0.3, 0.6).
  EXPECT_LT(sum_distance_late / late_count, 0.35);
}

TEST(AshaTpe, LabeledAndFunctional) {
  AshaOptions asha;
  asha.r = 1;
  asha.R = 9;
  asha.eta = 3;
  auto tuner = MakeAshaTpe(BowlSpace(), asha, {});
  EXPECT_EQ(tuner->name(), "ASHA+TPE");
  for (int i = 0; i < 20; ++i) {
    const auto job = tuner->GetJob();
    ASSERT_TRUE(job.has_value());
    tuner->ReportResult(*job, Bowl(job->config));
  }
  EXPECT_TRUE(tuner->Current().has_value());
}

// ----------------------------------------------------------------- Vizier

TEST(Vizier, FullResourceJobsOnly) {
  VizierOptions options;
  options.R = 50;
  VizierScheduler vizier(BowlSpace(), options);
  for (int i = 0; i < 5; ++i) {
    const auto job = vizier.GetJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_DOUBLE_EQ(job->to_resource, 50);
    EXPECT_DOUBLE_EQ(job->from_resource, 0);
    vizier.ReportResult(*job, Bowl(job->config));
  }
  EXPECT_EQ(vizier.NumCompleted(), 5u);
}

TEST(Vizier, ModelConcentratesNearOptimum) {
  VizierOptions options;
  options.R = 1;
  options.num_initial_random = 8;
  options.refit_every = 2;
  options.candidates_per_suggest = 256;
  VizierScheduler vizier(BowlSpace(), options);
  double late_distance = 0;
  int late_count = 0;
  for (int i = 0; i < 60; ++i) {
    const auto job = *vizier.GetJob();
    vizier.ReportResult(job, Bowl(job.config));
    if (i >= 40) {
      const double dx = job.config.GetDouble("x") - 0.3;
      const double dy = job.config.GetDouble("y") - 0.6;
      late_distance += std::sqrt(dx * dx + dy * dy);
      ++late_count;
    }
  }
  EXPECT_LT(late_distance / late_count, 0.3);  // uniform would be ~0.48
  ASSERT_TRUE(vizier.Current().has_value());
  EXPECT_LT(vizier.Current()->loss, 0.05);
}

TEST(Vizier, ConstantLiarSpreadsParallelSuggestions) {
  VizierOptions options;
  options.R = 1;
  options.num_initial_random = 6;
  options.refit_every = 1;
  VizierScheduler vizier(BowlSpace(), options);
  // Seed the model.
  for (int i = 0; i < 8; ++i) {
    const auto job = *vizier.GetJob();
    vizier.ReportResult(job, Bowl(job.config));
  }
  // Ask for several jobs *without* reporting: they must not collapse onto
  // one point.
  std::set<std::pair<double, double>> points;
  for (int i = 0; i < 4; ++i) {
    const auto job = *vizier.GetJob();
    points.insert({job.config.GetDouble("x"), job.config.GetDouble("y")});
  }
  EXPECT_GE(points.size(), 3u);
}

TEST(Vizier, LossCapAppliedToModel) {
  VizierOptions options;
  options.R = 1;
  options.loss_cap = 10.0;
  VizierScheduler vizier(BowlSpace(), options);
  const auto job = *vizier.GetJob();
  vizier.ReportResult(job, 1e6);
  // The incumbent keeps the raw loss; the model sees the cap. Both visible
  // effects: Current() reports 1e6, and later fits do not throw.
  EXPECT_DOUBLE_EQ(vizier.Current()->loss, 1e6);
  for (int i = 0; i < 15; ++i) {
    const auto j = *vizier.GetJob();
    vizier.ReportResult(j, Bowl(j.config));
  }
  SUCCEED();
}

TEST(Vizier, LostJobsRemovePending) {
  VizierScheduler vizier(BowlSpace(), {});
  const auto job = *vizier.GetJob();
  vizier.ReportLost(job);
  EXPECT_EQ(vizier.trials().Get(job.trial_id).status, TrialStatus::kLost);
  EXPECT_EQ(vizier.NumCompleted(), 0u);
}

// ---------------------------------------------------------------- Fabolas

TEST(Fabolas, InitialDesignUsesCheapestFidelity) {
  FabolasOptions options;
  options.R = 64;
  FabolasScheduler fabolas(BowlSpace(), options);
  for (int i = 0; i < 5; ++i) {
    const auto job = *fabolas.GetJob();
    EXPECT_DOUBLE_EQ(job.to_resource, 1.0);  // R/64
    fabolas.ReportResult(job, Bowl(job.config) + 0.1);
  }
}

TEST(Fabolas, FidelityScheduleVisitsFullData) {
  FabolasOptions options;
  options.R = 64;
  options.num_initial_random = 4;
  FabolasScheduler fabolas(BowlSpace(), options);
  std::set<double> fidelities;
  for (int i = 0; i < 40; ++i) {
    const auto job = *fabolas.GetJob();
    fidelities.insert(job.to_resource);
    // Cheap evaluations are biased upward (less data -> worse loss).
    const double penalty = 0.3 * (1.0 - job.to_resource / 64.0);
    fabolas.ReportResult(job, Bowl(job.config) + penalty);
  }
  EXPECT_TRUE(fidelities.contains(64.0));   // full data evaluated
  EXPECT_TRUE(fidelities.contains(1.0));    // cheap subsets dominate
  EXPECT_GE(fidelities.size(), 3u);
}

TEST(Fabolas, IncumbentIsPredictedFullDataBest) {
  FabolasOptions options;
  options.R = 64;
  options.num_initial_random = 6;
  options.refit_every = 3;
  FabolasScheduler fabolas(BowlSpace(), options);
  for (int i = 0; i < 50; ++i) {
    const auto job = *fabolas.GetJob();
    const double penalty = 0.3 * (1.0 - job.to_resource / 64.0);
    fabolas.ReportResult(job, Bowl(job.config) + penalty);
  }
  ASSERT_TRUE(fabolas.Current().has_value());
  const auto rec = *fabolas.Current();
  EXPECT_DOUBLE_EQ(rec.resource, 64.0);  // judged at full data
  const auto& config = fabolas.trials().Get(rec.trial_id).config;
  EXPECT_LT(Bowl(config), 0.15);  // found a good region
}

TEST(Fabolas, OptionValidation) {
  FabolasOptions options;
  options.fidelities = {0.5, 1.0};
  options.fidelity_repeats = {1};  // size mismatch
  EXPECT_THROW(FabolasScheduler(BowlSpace(), options), CheckError);
  options = {};
  options.fidelities = {0.25, 0.5};  // must end at 1.0
  options.fidelity_repeats = {1, 1};
  EXPECT_THROW(FabolasScheduler(BowlSpace(), options), CheckError);
}

}  // namespace
}  // namespace hypertune
