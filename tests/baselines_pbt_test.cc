#include "baselines/pbt.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"

namespace hypertune {
namespace {

SearchSpace UnitSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0));
  return space;
}

PbtOptions SmallOptions() {
  PbtOptions options;
  options.population_size = 4;
  options.step_resource = 10;
  options.max_resource = 40;
  options.sync_window = 20;
  options.truncation_fraction = 0.25;
  options.spawn_new_populations = false;
  return options;
}

TEST(Pbt, InitialJobsCoverPopulation) {
  PbtScheduler pbt(UnitSpace(), SmallOptions());
  std::set<TrialId> trials;
  for (int i = 0; i < 4; ++i) {
    const auto job = pbt.GetJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_DOUBLE_EQ(job->from_resource, 0);
    EXPECT_DOUBLE_EQ(job->to_resource, 10);
    trials.insert(job->trial_id);
  }
  EXPECT_EQ(trials.size(), 4u);
  EXPECT_EQ(pbt.NumPopulations(), 1u);
  // All members running, spawning disabled -> no work.
  EXPECT_FALSE(pbt.GetJob().has_value());
}

TEST(Pbt, MembersProgressInSteps) {
  PbtScheduler pbt(UnitSpace(), SmallOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  for (const auto& job : jobs) pbt.ReportResult(job, 0.5);
  const auto next = *pbt.GetJob();
  EXPECT_DOUBLE_EQ(next.from_resource, 10);
  EXPECT_DOUBLE_EQ(next.to_resource, 20);
}

TEST(Pbt, SyncWindowBlocksRunahead) {
  auto options = SmallOptions();
  options.sync_window = 10;  // exactly one step of run-ahead allowed
  PbtScheduler pbt(UnitSpace(), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  // Complete only member 0's job; it is now at 10, others at 0.
  pbt.ReportResult(jobs[0], 0.5);
  // Member 0 may not start its next step: 10 - 0 >= sync_window.
  EXPECT_FALSE(pbt.GetJob().has_value());
  // After another member reports, member 0 is still blocked by the two at 0.
  pbt.ReportResult(jobs[1], 0.6);
  EXPECT_FALSE(pbt.GetJob().has_value());
  pbt.ReportResult(jobs[2], 0.7);
  pbt.ReportResult(jobs[3], 0.8);
  // Everyone at 10: all four eligible again.
  EXPECT_TRUE(pbt.GetJob().has_value());
}

TEST(Pbt, ExploitCopiesFromTopAndExplores) {
  auto options = SmallOptions();
  options.explore.perturb_probability = 1.0;  // deterministic-ish explore
  PbtScheduler pbt(UnitSpace(), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  // Member 3 is clearly worst -> exploited after reporting.
  pbt.ReportResult(jobs[0], 0.1);
  pbt.ReportResult(jobs[1], 0.2);
  pbt.ReportResult(jobs[2], 0.3);
  const auto before = pbt.trials().size();
  pbt.ReportResult(jobs[3], 0.9);
  // Exploit created a new trial (copied + explored config).
  EXPECT_EQ(pbt.trials().size(), before + 1);
  const Trial& old_trial = pbt.trials().Get(jobs[3].trial_id);
  EXPECT_EQ(old_trial.status, TrialStatus::kStopped);
  // The new trial inherits the donor's resource position (weights copied).
  const Trial& new_trial = pbt.trials().Get(static_cast<TrialId>(before));
  EXPECT_DOUBLE_EQ(new_trial.resource_trained, 10);
}

TEST(Pbt, GoodMembersAreNotExploited) {
  PbtScheduler pbt(UnitSpace(), SmallOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  const auto before = pbt.trials().size();
  pbt.ReportResult(jobs[0], 0.9);  // first report: no ranking context yet
  pbt.ReportResult(jobs[1], 0.1);  // best member: never exploited
  EXPECT_EQ(pbt.trials().size(), before);
}

TEST(Pbt, FinishesAtMaxResource) {
  auto options = SmallOptions();
  options.truncation_fraction = 0.5;
  PbtScheduler pbt(UnitSpace(), options);
  std::map<TrialId, int> steps;
  int guard = 0;
  while (!pbt.Finished() && guard++ < 200) {
    const auto job = pbt.GetJob();
    if (!job) break;
    // Equal losses: no exploitation pressure.
    pbt.ReportResult(*job, 0.5);
  }
  EXPECT_TRUE(pbt.Finished());
  int completed = 0;
  for (const auto& trial : pbt.trials()) {
    completed += trial.status == TrialStatus::kCompleted;
  }
  EXPECT_EQ(completed, 4);
}

TEST(Pbt, SpawnsNewPopulationWhenBlocked) {
  auto options = SmallOptions();
  options.spawn_new_populations = true;
  PbtScheduler pbt(UnitSpace(), options);
  for (int i = 0; i < 4; ++i) (void)*pbt.GetJob();
  // All members busy: a fifth worker gets a fresh population.
  const auto job = pbt.GetJob();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(pbt.NumPopulations(), 2u);
  EXPECT_EQ(job->bracket, 1);  // population index
  EXPECT_FALSE(pbt.Finished());
}

TEST(Pbt, RandomGuessResamplingReplacesBadFirstSteps) {
  auto options = SmallOptions();
  options.random_guess_loss = 0.8;
  PbtScheduler pbt(UnitSpace(), options);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  const auto before = pbt.trials().size();
  // First member reports at random-guess level while 0/1 are above guessing:
  // it must be resampled (new trial, resource reset).
  pbt.ReportResult(jobs[0], 0.9);
  EXPECT_EQ(pbt.trials().size(), before + 1);
  const auto next = *pbt.GetJob();  // the resampled member restarts at 0
  EXPECT_DOUBLE_EQ(next.from_resource, 0);
}

TEST(Pbt, LostJobRestartsMemberFresh) {
  PbtScheduler pbt(UnitSpace(), SmallOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  const auto before = pbt.trials().size();
  pbt.ReportLost(jobs[2]);
  EXPECT_EQ(pbt.trials().size(), before + 1);
  EXPECT_EQ(pbt.trials().Get(jobs[2].trial_id).status, TrialStatus::kLost);
}

TEST(Pbt, ArchitectureParamsFrozenDuringExplore) {
  SearchSpace space;
  space.Add("arch", Domain::Integer(1, 8))
      .Add("lr", Domain::Continuous(0.0, 1.0));
  auto options = SmallOptions();
  options.explore.frozen = [](std::string_view name) {
    return name == "arch";
  };
  PbtScheduler pbt(space, options);
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  pbt.ReportResult(jobs[0], 0.1);
  pbt.ReportResult(jobs[1], 0.2);
  pbt.ReportResult(jobs[2], 0.3);
  pbt.ReportResult(jobs[3], 0.9);  // exploited from one of the top members
  const auto& new_trial = pbt.trials().Get(
      static_cast<TrialId>(pbt.trials().size() - 1));
  // The inherited arch matches some top member's arch exactly.
  std::set<std::int64_t> top_archs;
  for (int i = 0; i < 3; ++i) {
    top_archs.insert(pbt.trials().Get(jobs[i].trial_id).config.GetInt("arch"));
  }
  EXPECT_TRUE(top_archs.contains(new_trial.config.GetInt("arch")));
}

TEST(Pbt, OptionValidation) {
  auto options = SmallOptions();
  options.population_size = 1;
  EXPECT_THROW(PbtScheduler(UnitSpace(), options), CheckError);
  options = SmallOptions();
  options.truncation_fraction = 0.6;
  EXPECT_THROW(PbtScheduler(UnitSpace(), options), CheckError);
  options = SmallOptions();
  options.sync_window = 5;  // below one step
  EXPECT_THROW(PbtScheduler(UnitSpace(), options), CheckError);
}

TEST(Pbt, IncumbentTracksBestReported) {
  PbtScheduler pbt(UnitSpace(), SmallOptions());
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(*pbt.GetJob());
  pbt.ReportResult(jobs[0], 0.4);
  pbt.ReportResult(jobs[1], 0.2);
  ASSERT_TRUE(pbt.Current().has_value());
  EXPECT_EQ(pbt.Current()->trial_id, jobs[1].trial_id);
  EXPECT_DOUBLE_EQ(pbt.Current()->loss, 0.2);
}

}  // namespace
}  // namespace hypertune
