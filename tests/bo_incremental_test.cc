// Property tests for the incremental BO substrate: the rank-1 append path,
// packed-storage Cholesky, batched prediction, and parallel EI scoring must
// all reproduce the results of their naive counterparts — mostly exactly
// (bit-identical), at worst within 1e-8 — so that seeded tuning runs make
// identical decisions whichever path computed them.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bo/acquisition.h"
#include "bo/gp.h"
#include "bo/matrix.h"
#include "common/check.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace hypertune {
namespace {

std::vector<std::vector<double>> RandomPoints(std::size_t n, std::size_t dim,
                                              Rng& rng) {
  std::vector<std::vector<double>> x(n, std::vector<double>(dim));
  for (auto& p : x) {
    for (auto& v : p) v = rng.Uniform();
  }
  return x;
}

std::vector<double> RandomTargets(std::size_t n, Rng& rng) {
  std::vector<double> y(n);
  for (auto& v : y) v = rng.Normal();
  return y;
}

/// Builds a random SPD matrix A = B B^T + n I in both layouts.
void RandomSpd(std::size_t n, Rng& rng, Matrix* dense,
               TriangularMatrix* packed) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b.at(i, j) = rng.Uniform();
  *dense = Matrix(n, n);
  *packed = TriangularMatrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0;
      for (std::size_t k = 0; k < n; ++k) sum += b.at(i, k) * b.at(j, k);
      if (i == j) sum += static_cast<double>(n);
      dense->at(i, j) = sum;
      if (j <= i) packed->at(i, j) = sum;
    }
  }
}

TEST(TriangularMatrix, PackedCholeskyMatchesDenseBitwise) {
  Rng rng(11);
  for (const std::size_t n : {1u, 2u, 5u, 17u, 40u}) {
    Matrix dense;
    TriangularMatrix packed;
    RandomSpd(n, rng, &dense, &packed);
    const Matrix ld = CholeskyFactor(dense, 1e-10);
    const TriangularMatrix lp = CholeskyFactor(packed, 1e-10);
    ASSERT_EQ(lp.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        EXPECT_EQ(lp.at(i, j), ld.at(i, j)) << "n=" << n << " (" << i << ","
                                            << j << ")";
  }
}

TEST(TriangularMatrix, AppendRowMatchesRefactorizationBitwise) {
  // Factor the leading k x k block, then extend row by row; every
  // intermediate factor must equal the from-scratch factorization of the
  // corresponding leading block, bit for bit.
  Rng rng(12);
  const std::size_t n = 24;
  Matrix dense;
  TriangularMatrix packed;
  RandomSpd(n, rng, &dense, &packed);

  const std::size_t start = 6;
  TriangularMatrix head(start);
  for (std::size_t i = 0; i < start; ++i)
    for (std::size_t j = 0; j <= i; ++j) head.at(i, j) = packed.at(i, j);
  TriangularMatrix l = CholeskyFactor(head, 1e-10);

  for (std::size_t m = start; m < n; ++m) {
    std::vector<double> k(m);
    for (std::size_t j = 0; j < m; ++j) k[j] = packed.at(m, j);
    const double new_diag = CholeskyAppendRow(l, k, packed.at(m, m), 1e-10);
    ASSERT_EQ(l.size(), m + 1);
    EXPECT_EQ(new_diag, l.at(m, m));

    TriangularMatrix block(m + 1);
    for (std::size_t i = 0; i <= m; ++i)
      for (std::size_t j = 0; j <= i; ++j) block.at(i, j) = packed.at(i, j);
    const TriangularMatrix ref = CholeskyFactor(block, 1e-10);
    for (std::size_t i = 0; i <= m; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        ASSERT_EQ(l.at(i, j), ref.at(i, j))
            << "m=" << m << " (" << i << "," << j << ")";
  }
}

TEST(TriangularMatrix, AppendRowRejectsNonPdExtension) {
  // Extending with a row that makes the matrix singular must throw and is
  // detected by the sqrt of a non-positive pivot.
  TriangularMatrix a(1);
  a.at(0, 0) = 1.0;
  TriangularMatrix l = CholeskyFactor(a, 0.0);
  // [[1, 1], [1, 1]] is singular.
  EXPECT_THROW(CholeskyAppendRow(l, std::vector<double>{1.0}, 1.0, 0.0),
               CheckError);
}

TEST(TriangularMatrix, MultiRhsSolveMatchesScalarBitwise) {
  Rng rng(13);
  const std::size_t n = 20, m = 7;
  Matrix dense;
  TriangularMatrix packed;
  RandomSpd(n, rng, &dense, &packed);
  const TriangularMatrix l = CholeskyFactor(packed, 1e-10);

  Matrix b(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) b.at(i, j) = rng.Normal();
  Matrix b_solved = b;
  SolveLowerInPlace(l, b_solved);

  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = b.at(i, j);
    const auto x = SolveLower(l, col);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(b_solved.at(i, j), x[i]) << "rhs " << j << " row " << i;
  }
}

TEST(Gp, AppendMatchesFromScratchFit) {
  // The headline property: over randomized sequences, growing a GP one
  // Append at a time gives the same mean/variance/LML as a from-scratch Fit
  // on the full data — within 1e-8 (in practice bit-identical).
  for (const std::uint64_t seed : {1ull, 7ull, 21ull}) {
    Rng rng(seed);
    const std::size_t dim = 3, total = 48, start = 5;
    const auto x = RandomPoints(total, dim, rng);
    const auto y = RandomTargets(total, rng);
    const auto queries = RandomPoints(16, dim, rng);

    GaussianProcess incremental;
    incremental.Fit({x.begin(), x.begin() + start},
                    {y.begin(), y.begin() + start});
    for (std::size_t i = start; i < total; ++i) {
      incremental.Append(x[i], y[i]);

      GaussianProcess scratch;
      scratch.Fit({x.begin(), x.begin() + i + 1}, {y.begin(), y.begin() + i + 1});
      ASSERT_NEAR(incremental.LogMarginalLikelihood(),
                  scratch.LogMarginalLikelihood(), 1e-8)
          << "seed " << seed << " n=" << i + 1;
      ASSERT_EQ(incremental.FittedLengthscale(), scratch.FittedLengthscale());
      for (const auto& q : queries) {
        const auto a = incremental.Predict(q);
        const auto b = scratch.Predict(q);
        ASSERT_NEAR(a.mean, b.mean, 1e-8) << "seed " << seed << " n=" << i + 1;
        ASSERT_NEAR(a.variance, b.variance, 1e-8)
            << "seed " << seed << " n=" << i + 1;
      }
    }
  }
}

TEST(Gp, FitDetectsPrefixExtensionAndStaysExact) {
  // Fit called with data that extends the previous fit takes the rank-1
  // path (visible in fit_stats) yet remains equivalent to a full refit.
  Rng rng(3);
  const auto x = RandomPoints(30, 2, rng);
  const auto y = RandomTargets(30, rng);

  GaussianProcess gp;
  gp.Fit({x.begin(), x.begin() + 10}, {y.begin(), y.begin() + 10});
  EXPECT_EQ(gp.fit_stats().full_fits, 1);
  EXPECT_EQ(gp.fit_stats().rank1_updates, 0);

  gp.Fit(x, y);  // extends the previous data by 20 points
  EXPECT_EQ(gp.fit_stats().full_fits, 1);
  EXPECT_EQ(gp.fit_stats().rank1_updates, 20);

  GaussianProcess scratch;
  scratch.Fit(x, y);
  EXPECT_NEAR(gp.LogMarginalLikelihood(), scratch.LogMarginalLikelihood(),
              1e-8);
  const auto q = RandomPoints(1, 2, rng).front();
  EXPECT_NEAR(gp.Predict(q).mean, scratch.Predict(q).mean, 1e-8);

  // Refitting on *different* data (here: a shuffled prefix) falls back to
  // the full path.
  std::vector<std::vector<double>> reordered{x[1], x[0]};
  gp.Fit(reordered, {y[1], y[0]});
  EXPECT_EQ(gp.fit_stats().full_fits, 2);
}

TEST(Gp, PredictBatchMatchesScalarPredictBitwise) {
  Rng rng(5);
  const auto x = RandomPoints(40, 4, rng);
  const auto y = RandomTargets(40, rng);
  GaussianProcess gp;
  gp.Fit(x, y);

  const auto queries = RandomPoints(33, 4, rng);
  const auto batch = gp.PredictBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto scalar = gp.Predict(queries[i]);
    EXPECT_EQ(batch[i].mean, scalar.mean) << "query " << i;
    EXPECT_EQ(batch[i].variance, scalar.variance) << "query " << i;
  }
  EXPECT_TRUE(gp.PredictBatch({}).empty());
}

TEST(Acquisition, MultiThreadedEiMatchesSingleThreadedBitwise) {
  Rng rng(9);
  const auto x = RandomPoints(50, 3, rng);
  const auto y = RandomTargets(50, rng);
  GaussianProcess gp;
  gp.Fit(x, y);

  const auto candidates = RandomPoints(301, 3, rng);  // odd: uneven chunks
  const auto base = ScoreEiBatch(gp, candidates, 0.1, 1);
  for (const int threads : {2, 3, 8}) {
    const auto scores = ScoreEiBatch(gp, candidates, 0.1, threads);
    ASSERT_EQ(scores.size(), base.size());
    for (std::size_t i = 0; i < scores.size(); ++i)
      ASSERT_EQ(scores[i], base[i]) << "threads=" << threads << " i=" << i;
  }

  // And the selected point is therefore identical for any thread count.
  Rng r1(17), r4(17);
  const auto p1 = SuggestByEi(gp, 3, 0.1, 128, r1, 1);
  const auto p4 = SuggestByEi(gp, 3, 0.1, 128, r4, 4);
  EXPECT_EQ(p1, p4);
}

TEST(Acquisition, ArgMaxScoreBreaksTiesToLowestIndex) {
  EXPECT_EQ(ArgMaxScore(std::vector<double>{0.5}), 0u);
  EXPECT_EQ(ArgMaxScore(std::vector<double>{1.0, 2.0, 2.0, 0.0}), 1u);
  EXPECT_EQ(ArgMaxScore(std::vector<double>{3.0, 3.0}), 0u);
}

TEST(Gp, TelemetryCountsFitPaths) {
  auto telemetry = Telemetry::ForSimulation();
  Rng rng(2);
  const auto x = RandomPoints(12, 2, rng);
  const auto y = RandomTargets(12, rng);

  GaussianProcess gp;
  gp.SetTelemetry(telemetry.get());
  gp.Fit({x.begin(), x.begin() + 8}, {y.begin(), y.begin() + 8});
  gp.Fit(x, y);           // prefix extension: 4 rank-1 updates
  gp.Append(x[0], y[0]);  // one more rank-1 update

  auto& metrics = telemetry->metrics();
  EXPECT_EQ(metrics.counter("bo.fit_full").value(), 1);
  EXPECT_EQ(metrics.counter("bo.fit_rank1").value(), 5);
  EXPECT_EQ(
      metrics.histogram("bo.fit_seconds", ExponentialBuckets(1e-5, 4.0, 12))
          .count(),
      3);  // one observation per Fit/Append call
  EXPECT_EQ(gp.fit_stats().full_fits, 1);
  EXPECT_EQ(gp.fit_stats().rank1_updates, 5);
  EXPECT_GE(gp.fit_stats().fit_seconds, 0.0);
}

}  // namespace
}  // namespace hypertune
