#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "bo/kde.h"
#include "bo/tpe.h"
#include "common/check.h"

namespace hypertune {
namespace {

TEST(Kde, RejectsEmptyAndMismatchedInput) {
  EXPECT_THROW(KernelDensityEstimator kde({}), CheckError);
  std::vector<std::vector<double>> points{{0.1, 0.2}, {0.3}};
  EXPECT_THROW(KernelDensityEstimator kde(points), CheckError);
}

TEST(Kde, PdfHigherNearMass) {
  std::vector<std::vector<double>> points;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    points.push_back({0.3 + 0.02 * rng.Normal(), 0.7 + 0.02 * rng.Normal()});
  }
  const KernelDensityEstimator kde(points);
  EXPECT_GT(kde.Pdf({0.3, 0.7}), kde.Pdf({0.9, 0.1}));
  EXPECT_EQ(kde.Dim(), 2u);
  EXPECT_EQ(kde.NumPoints(), 100u);
}

TEST(Kde, PdfIntegratesToApproximatelyOne) {
  std::vector<std::vector<double>> points{{0.4}, {0.5}, {0.6}};
  const KernelDensityEstimator kde(points);
  double integral = 0;
  const int n = 2000;
  // Integrate over a wide interval (mass near [0,1] but tails exist).
  for (int i = 0; i < n; ++i) {
    const double u = -1.0 + 3.0 * (i + 0.5) / n;
    integral += kde.Pdf({u}) * 3.0 / n;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, SamplesStayInUnitCubeAndNearMass) {
  std::vector<std::vector<double>> points{{0.95, 0.05}};
  const KernelDensityEstimator kde(points, 1e-3, 3.0);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto x = kde.Sample(rng);
    ASSERT_EQ(x.size(), 2u);
    EXPECT_GE(x[0], 0.0);
    EXPECT_LE(x[0], 1.0);
    EXPECT_GE(x[1], 0.0);
    EXPECT_LE(x[1], 1.0);
  }
}

TEST(Kde, BandwidthShrinksWithMorePoints) {
  Rng rng(3);
  auto make_points = [&](int n) {
    std::vector<std::vector<double>> points;
    for (int i = 0; i < n; ++i) points.push_back({rng.Uniform()});
    return points;
  };
  const KernelDensityEstimator small(make_points(10));
  const KernelDensityEstimator large(make_points(1000));
  EXPECT_GT(small.bandwidths()[0], large.bandwidths()[0]);
}

SearchSpace TpeSpace() {
  SearchSpace space;
  space.Add("x", Domain::Continuous(0.0, 1.0))
      .Add("y", Domain::Continuous(0.0, 1.0));
  return space;
}

TEST(Tpe, RandomUntilEnoughObservations) {
  TpeSampler tpe(TpeSpace());
  EXPECT_EQ(tpe.ModelResource(), -1);
  Rng rng(4);
  const auto config = tpe.Sample(rng);  // must not crash without a model
  EXPECT_TRUE(TpeSpace().Contains(config));
}

TEST(Tpe, ModelUsesHighestQualifiedResource) {
  TpeOptions options;
  options.min_points = 3;
  options.top_fraction = 0.5;  // good/bad split reaches min_points quickly
  TpeSampler tpe(TpeSpace(), options);
  const auto space = TpeSpace();
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    tpe.Observe(space.Sample(rng), /*resource=*/1.0, /*loss=*/0.5);
  }
  EXPECT_DOUBLE_EQ(tpe.ModelResource(), 1.0);
  for (int i = 0; i < 12; ++i) {
    tpe.Observe(space.Sample(rng), /*resource=*/4.0, /*loss=*/0.4);
  }
  EXPECT_DOUBLE_EQ(tpe.ModelResource(), 4.0);
}

TEST(Tpe, IgnoresNonFiniteLosses) {
  TpeOptions options;
  options.min_points = 2;
  options.top_fraction = 0.5;
  TpeSampler tpe(TpeSpace(), options);
  const auto space = TpeSpace();
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    tpe.Observe(space.Sample(rng), 1.0,
                std::numeric_limits<double>::infinity());
  }
  EXPECT_EQ(tpe.ModelResource(), -1);  // nothing usable recorded
}

TEST(Tpe, ConcentratesSamplesOnGoodRegion) {
  // Good configs cluster near x=0.2, y=0.8; bad ones elsewhere. With
  // random_fraction = 0 the sampler should propose near the good cluster.
  TpeOptions options;
  options.random_fraction = 0.0;
  options.min_points = 5;
  TpeSampler tpe(TpeSpace(), options);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    Configuration config;
    const bool good = i % 3 == 0;
    const double x = good ? 0.2 + 0.02 * rng.Normal() : rng.Uniform();
    const double y = good ? 0.8 + 0.02 * rng.Normal() : rng.Uniform();
    config.Set("x", ParamValue{std::clamp(x, 0.0, 1.0)});
    config.Set("y", ParamValue{std::clamp(y, 0.0, 1.0)});
    const double dist = std::abs(x - 0.2) + std::abs(y - 0.8);
    tpe.Observe(config, 1.0, dist);
  }
  double mean_x = 0, mean_y = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const auto config = tpe.Sample(rng);
    mean_x += config.GetDouble("x");
    mean_y += config.GetDouble("y");
  }
  EXPECT_NEAR(mean_x / n, 0.2, 0.15);
  EXPECT_NEAR(mean_y / n, 0.8, 0.15);
}

TEST(Tpe, OptionValidation) {
  TpeOptions bad;
  bad.top_fraction = 0.0;
  EXPECT_THROW(TpeSampler(TpeSpace(), bad), CheckError);
  bad = {};
  bad.random_fraction = 1.5;
  EXPECT_THROW(TpeSampler(TpeSpace(), bad), CheckError);
}

}  // namespace
}  // namespace hypertune
