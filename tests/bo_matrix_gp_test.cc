#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bo/acquisition.h"
#include "bo/gp.h"
#include "bo/kernel.h"
#include "bo/matrix.h"
#include "common/check.h"
#include "common/rng.h"

namespace hypertune {
namespace {

TEST(Matrix, MatVec) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  const auto y = a.MatVec(std::vector<double>{1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  EXPECT_THROW(a.MatVec(std::vector<double>{1, 1}), CheckError);
}

TEST(Matrix, CholeskyKnownFactorization) {
  // A = [[4, 2], [2, 3]] = L L^T with L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 3;
  const Matrix l = CholeskyFactor(a, 0.0);
  EXPECT_NEAR(l.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l.at(0, 1), 0.0);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 2; a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyFactor(a, 0.0), CheckError);
  EXPECT_THROW(CholeskyFactor(Matrix(2, 3)), CheckError);  // non-square
}

TEST(Matrix, TriangularSolvesRoundTrip) {
  Matrix a(3, 3);
  // SPD matrix.
  const double vals[3][3] = {{6, 2, 1}, {2, 5, 2}, {1, 2, 4}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) a.at(i, j) = vals[i][j];
  const Matrix l = CholeskyFactor(a, 0.0);
  const std::vector<double> b{1, 2, 3};
  // Solve A x = b via L then L^T; verify A x = b.
  const auto z = SolveLower(l, b);
  const auto x = SolveLowerTranspose(l, z);
  const auto back = a.MatVec(x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Kernel, RbfProperties) {
  const RbfKernel k(0.5, 2.0);
  const std::vector<double> x{0.3, 0.7};
  EXPECT_DOUBLE_EQ(k(x, x), 2.0);  // k(x,x) = signal variance
  const std::vector<double> y{0.4, 0.7};
  EXPECT_LT(k(x, y), 2.0);
  EXPECT_GT(k(x, y), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(k(x, y), k(y, x));
  // Known value: d2 = 0.01, l = 0.5 -> 2 exp(-0.02).
  EXPECT_NEAR(k(x, y), 2.0 * std::exp(-0.01 / (2 * 0.25)), 1e-12);
}

TEST(Kernel, Matern52Properties) {
  const Matern52Kernel k(0.5);
  const std::vector<double> x{0.0}, y{0.5};
  EXPECT_DOUBLE_EQ(k(x, x), 1.0);
  EXPECT_DOUBLE_EQ(k(x, y), k(y, x));
  // d/l = 1: (1 + sqrt5 + 5/3) exp(-sqrt5).
  const double expected =
      (1 + std::sqrt(5.0) + 5.0 / 3.0) * std::exp(-std::sqrt(5.0));
  EXPECT_NEAR(k(x, y), expected, 1e-12);
  // Decreases with distance.
  const std::vector<double> z{1.0};
  EXPECT_LT(k(x, z), k(x, y));
}

TEST(Gp, InterpolatesNoiselessData) {
  GpOptions options;
  options.noise_variance = 1e-8;
  GaussianProcess gp(options);
  std::vector<std::vector<double>> x{{0.1}, {0.5}, {0.9}};
  std::vector<double> y{1.0, -1.0, 2.0};
  gp.Fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto pred = gp.Predict(x[i]);
    EXPECT_NEAR(pred.mean, y[i], 1e-3);
    EXPECT_LT(pred.variance, 1e-2);
  }
}

TEST(Gp, RevertsToPriorFarFromData) {
  GaussianProcess gp;
  std::vector<std::vector<double>> x{{0.0, 0.0}};
  std::vector<double> y{5.0};
  gp.Fit(x, y);
  // Constant target: y_std falls back to 1; far away the mean reverts to
  // the target mean and variance grows toward the prior.
  const auto pred = gp.Predict(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(pred.mean, 5.0, 1.0);
  EXPECT_GT(pred.variance, 0.3);
}

TEST(Gp, LearnsSmoothFunction) {
  GaussianProcess gp;
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    const double u = rng.Uniform();
    x.push_back({u});
    y.push_back(std::sin(6.0 * u));
  }
  gp.Fit(x, y);
  double max_err = 0;
  for (double u = 0.05; u < 1.0; u += 0.05) {
    const auto pred = gp.Predict(std::vector<double>{u});
    max_err = std::max(max_err, std::abs(pred.mean - std::sin(6.0 * u)));
  }
  EXPECT_LT(max_err, 0.2);
}

TEST(Gp, PredictBeforeFitThrows) {
  GaussianProcess gp;
  EXPECT_THROW(gp.Predict(std::vector<double>{0.5}), CheckError);
  EXPECT_THROW(gp.Fit({}, {}), CheckError);
}

TEST(Gp, LengthscaleSelectionPrefersSmoothFit) {
  // Data from a very smooth function: the grid search should not pick the
  // smallest lengthscale.
  GaussianProcess gp;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) {
    const double u = i / 10.0;
    x.push_back({u});
    y.push_back(2.0 * u);
  }
  gp.Fit(x, y);
  EXPECT_GT(gp.FittedLengthscale(), 0.1);
  EXPECT_TRUE(std::isfinite(gp.LogMarginalLikelihood()));
}

TEST(Acquisition, NormalCdfPdfSanity) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
}

TEST(Acquisition, ExpectedImprovementProperties) {
  // Zero variance: max(best - mean, 0).
  EXPECT_DOUBLE_EQ(ExpectedImprovement(0.3, 0.0, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(0.7, 0.0, 0.5), 0.0);
  // Positive variance: EI > deterministic improvement, and EI > 0 even when
  // the mean is worse than best.
  EXPECT_GT(ExpectedImprovement(0.3, 0.04, 0.5), 0.2);
  EXPECT_GT(ExpectedImprovement(0.7, 0.04, 0.5), 0.0);
  // More variance -> more EI at equal mean.
  EXPECT_GT(ExpectedImprovement(0.5, 0.09, 0.5),
            ExpectedImprovement(0.5, 0.01, 0.5));
}

TEST(Acquisition, SuggestByEiFindsLowRegion) {
  // Fit a bowl with minimum near 0.25 and check suggestions concentrate
  // around it.
  GaussianProcess gp;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 20; ++i) {
    const double u = i / 20.0;
    x.push_back({u});
    y.push_back((u - 0.25) * (u - 0.25));
  }
  gp.Fit(x, y);
  Rng rng(3);
  const auto point = SuggestByEi(gp, 1, 0.0, 512, rng);
  EXPECT_NEAR(point[0], 0.25, 0.2);
}

}  // namespace
}  // namespace hypertune
