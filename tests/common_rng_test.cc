#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace hypertune {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.Uniform(1.0, 0.0), CheckError);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.LogUniform(1e-5, 1e2);
    EXPECT_GE(u, 1e-5);
    EXPECT_LE(u, 1e2);
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng(13);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.LogUniform(1e-4, 1e4);
  // log-uniform over 8 decades centered at 1 -> median ~ 1.
  EXPECT_NEAR(std::log10(Median(xs)), 0.0, 0.15);
}

TEST(Rng, LogUniformRejectsNonPositiveLo) {
  Rng rng(5);
  EXPECT_THROW(rng.LogUniform(0.0, 1.0), CheckError);
  EXPECT_THROW(rng.LogUniform(-1.0, 1.0), CheckError);
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng rng(17);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.UniformInt(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<std::size_t>(v - 10)];
  }
  for (int count : counts) EXPECT_GT(count, 800);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-8, -3);
    EXPECT_GE(v, -8);
    EXPECT_LE(v, -3);
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Index(7), 7u);
  EXPECT_THROW(rng.Index(0), CheckError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.Normal();
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(Stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(37);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Normal(5.0, 2.0);
  EXPECT_NEAR(Mean(xs), 5.0, 0.05);
  EXPECT_NEAR(Stddev(xs), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(37);
  EXPECT_THROW(rng.Normal(0.0, -1.0), CheckError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  EXPECT_THROW(rng.Bernoulli(1.5), CheckError);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(47);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Exponential(4.0);
  EXPECT_NEAR(Mean(xs), 0.25, 0.01);
  EXPECT_THROW(rng.Exponential(0.0), CheckError);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(53);
  Rng child1 = parent.Split(1);
  Rng child2 = parent.Split(1);  // parent advanced -> different child
  EXPECT_NE(child1(), child2());
}

TEST(Rng, SplitDeterministicFromSameState) {
  Rng a(59), b(59);
  Rng ca = a.Split(7), cb = b.Split(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca(), cb());
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

}  // namespace
}  // namespace hypertune
