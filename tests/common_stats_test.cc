#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <vector>

#include "common/check.h"
#include "common/table.h"

namespace hypertune {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{7.0}), 7.0);
}

TEST(Stats, VarianceSampleDenominator) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs{1, 3, 5};
  EXPECT_DOUBLE_EQ(Stddev(xs), std::sqrt(Variance(xs)));
}

TEST(Stats, QuantileMatchesNumpyLinear) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 3.25);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> xs{9, 1, 5};
  EXPECT_DOUBLE_EQ(Median(xs), 5.0);
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW(Quantile(std::vector<double>{}, 0.5), CheckError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(Quantile(xs, -0.1), CheckError);
  EXPECT_THROW(Quantile(xs, 1.1), CheckError);
}

TEST(RunningStats, MatchesBatchStatistics) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.Variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.Min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.Count(), 0u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  rs.Add(3.5);
  EXPECT_DOUBLE_EQ(rs.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.Max(), 3.5);
}

TEST(Stats, ArgsortAscendingStable) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 1.0};
  const auto idx = ArgsortAscending(xs);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 1u);  // first 1.0 (stable)
  EXPECT_EQ(idx[1], 3u);  // second 1.0
  EXPECT_EQ(idx[2], 2u);
  EXPECT_EQ(idx[3], 0u);
}

TEST(Table, MarkdownLayout) {
  TextTable table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"longer"});
  const std::string md = table.ToMarkdown();
  EXPECT_NE(md.find("| a      | bb |"), std::string::npos);
  EXPECT_NE(md.find("| longer |    |"), std::string::npos);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(Table, CsvEscaping) {
  TextTable table({"x", "y"});
  table.AddRow({"a,b", "he said \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsOversizedRow) {
  TextTable table({"only"});
  EXPECT_THROW(table.AddRow({"1", "2"}), CheckError);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(Table, WriteFileRoundTrip) {
  const std::string path = testing::TempDir() + "/ht_table_test/out.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
}

}  // namespace
}  // namespace hypertune
